"""Tests for the compression-scheme comparison experiment."""

from __future__ import annotations

import pytest

from repro.experiments import compression

NUM_BITS = 200_000


@pytest.fixture(scope="module")
def result():
    return compression.run(num_bits=NUM_BITS)


class TestSchemeSizes:
    def test_all_schemes_measured(self, result):
        for column in ("wah_mb", "plwah_mb", "roaring_mb"):
            values = result.column(column)
            assert all(value >= 0 for value in values)

    def test_plwah_never_larger_than_wah(self, result):
        for row in result.rows:
            # PLWAH absorbs nearly-identical literals; its word count
            # is bounded by WAH's (same header overhead).
            assert row["plwah_mb"] <= row["wah_mb"] + 1e-9

    def test_roaring_wins_when_sparse(self, result):
        sparse = [
            row for row in result.rows if row["density"] <= 0.002
        ]
        assert sparse
        for row in sparse:
            assert row["roaring_mb"] < row["wah_mb"]

    def test_all_converge_near_raw_when_dense(self, result):
        dense = next(
            row for row in result.rows if row["density"] == 0.5
        )
        assert dense["wah_mb"] <= 1.2 * dense["raw_mb"] * (32 / 31)
        assert dense["plwah_mb"] <= dense["wah_mb"] + 1e-9
        assert dense["roaring_mb"] <= 1.2 * dense["raw_mb"]

    def test_complement_applied_to_every_scheme(self):
        sizes = compression.measure_scheme_sizes(
            NUM_BITS, densities=(0.01, 0.99), seed=0
        )
        for scheme in ("wah", "plwah", "roaring"):
            assert sizes[scheme][0.99] == pytest.approx(
                sizes[scheme][0.01], rel=0.2
            )

    def test_fitted_models_reported(self, result):
        fitted_notes = [
            note for note in result.notes if "fitted" in note
        ]
        assert len(fitted_notes) == 3
