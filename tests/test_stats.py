"""Tests for per-node query coverage statistics."""

from __future__ import annotations

import pytest

from repro.core.stats import NodeClass, QueryNodeStats
from repro.workload.query import RangeQuery


@pytest.fixture
def stats(small_catalog):
    # 12-leaf hierarchy [[2,2],[3,2],[3]]; query over leaves 2..8.
    return QueryNodeStats(small_catalog, RangeQuery([(2, 8)]))


class TestCounts:
    def test_counts_match_brute_force(self, small_catalog):
        query = RangeQuery([(1, 4), (7, 9)])
        stats = QueryNodeStats(small_catalog, query)
        wanted = set(query.range_leaves())
        for node in small_catalog.hierarchy:
            leaves = set(
                range(node.leaf_lo, node.leaf_hi + 1)
            )
            assert stats.range_count[node.node_id] == len(
                leaves & wanted
            )
            assert stats.span_count[node.node_id] == len(leaves)

    def test_total_range_cost_is_leaf_only_cost(self, small_catalog):
        query = RangeQuery([(0, 11)])
        stats = QueryNodeStats(small_catalog, query)
        full = small_catalog.leaf_range_cost(0, 11)
        assert stats.total_range_cost == pytest.approx(full)


class TestCosts:
    def test_range_leaf_cost_matches_brute_force(self, small_catalog):
        query = RangeQuery([(2, 8)])
        stats = QueryNodeStats(small_catalog, query)
        hierarchy = small_catalog.hierarchy
        leaf_ids = hierarchy.leaf_ids()
        for node in hierarchy:
            expected = sum(
                small_catalog.read_cost_mb(leaf_ids[value])
                for value in range(node.leaf_lo, node.leaf_hi + 1)
                if 2 <= value <= 8
            )
            assert stats.range_leaf_cost[
                node.node_id
            ] == pytest.approx(expected)

    def test_non_range_cost_complements(self, stats, small_catalog):
        for node in small_catalog.hierarchy:
            node_id = node.node_id
            assert stats.non_range_leaf_cost(node_id) == pytest.approx(
                stats.total_leaf_cost[node_id]
                - stats.range_leaf_cost[node_id]
            )


class TestClassification:
    def test_classes(self, stats, small_catalog):
        hierarchy = small_catalog.hierarchy
        root = hierarchy.root_id
        assert stats.classify(root) is NodeClass.PARTIAL
        # First root child covers leaves 0..3 -> partial (2,3 in range)
        first, second, third = hierarchy.internal_children(root)
        assert stats.classify(first) is NodeClass.PARTIAL
        # Second child covers 4..8 -> complete
        assert stats.classify(second) is NodeClass.COMPLETE
        # Third child covers 9..11 -> empty
        assert stats.classify(third) is NodeClass.EMPTY
        assert stats.is_empty(third)
        assert stats.is_complete(second)
        assert not stats.is_complete(third)

    def test_leaf_value_lists(self, stats, small_catalog):
        hierarchy = small_catalog.hierarchy
        first = hierarchy.internal_children(hierarchy.root_id)[0]
        assert stats.range_leaf_values(first) == [2, 3]
        assert stats.non_range_leaf_values(first) == [0, 1]

    def test_multi_spec_leaf_values(self, small_catalog):
        query = RangeQuery([(0, 1), (3, 3)])
        stats = QueryNodeStats(small_catalog, query)
        root = small_catalog.hierarchy.root_id
        assert stats.range_leaf_values(root) == [0, 1, 3]
