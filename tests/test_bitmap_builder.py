"""Tests for bitmap-index construction from data columns."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitmap.builder import (
    bitmap_for_leaf_set,
    build_leaf_bitmaps,
    build_span_bitmap,
)
from repro.bitmap.wah import WahBitmap


@pytest.fixture
def column() -> np.ndarray:
    rng = np.random.default_rng(42)
    return rng.integers(0, 10, size=5000).astype(np.int64)


class TestLeafBitmaps:
    def test_partition_property(self, column):
        """Leaf bitmaps partition the rows: disjoint and covering."""
        bitmaps = build_leaf_bitmaps(column, 10)
        total = sum(bitmap.count() for bitmap in bitmaps)
        assert total == column.size
        union = WahBitmap.union_all(bitmaps)
        assert union.count() == column.size

    def test_each_leaf_marks_its_rows(self, column):
        bitmaps = build_leaf_bitmaps(column, 10)
        for leaf in range(10):
            expected = np.flatnonzero(column == leaf).tolist()
            assert bitmaps[leaf].to_positions().tolist() == expected

    def test_absent_leaf_gets_empty_bitmap(self):
        column = np.array([0, 0, 2], dtype=np.int64)
        bitmaps = build_leaf_bitmaps(column, 4)
        assert bitmaps[1].count() == 0
        assert bitmaps[3].count() == 0

    def test_empty_column(self):
        bitmaps = build_leaf_bitmaps(np.array([], dtype=np.int64), 3)
        assert len(bitmaps) == 3
        assert all(bitmap.num_bits == 0 for bitmap in bitmaps)

    def test_rejects_bad_shapes_and_values(self):
        with pytest.raises(ValueError):
            build_leaf_bitmaps(np.zeros((2, 2), dtype=np.int64), 4)
        with pytest.raises(ValueError):
            build_leaf_bitmaps(np.array([0.5]), 4)
        with pytest.raises(ValueError):
            build_leaf_bitmaps(np.array([4], dtype=np.int64), 4)
        with pytest.raises(ValueError):
            build_leaf_bitmaps(np.array([-1], dtype=np.int64), 4)


class TestSpanBitmap:
    def test_span_matches_mask(self, column):
        bitmap = build_span_bitmap(column, 2, 5)
        expected = np.flatnonzero(
            (column >= 2) & (column <= 5)
        ).tolist()
        assert bitmap.to_positions().tolist() == expected

    def test_span_equals_union_of_leaves(self, column):
        leaf_bitmaps = build_leaf_bitmaps(column, 10)
        span = build_span_bitmap(column, 3, 7)
        union = bitmap_for_leaf_set(leaf_bitmaps, range(3, 8))
        assert span == union

    def test_full_span_is_all_rows(self, column):
        bitmap = build_span_bitmap(column, 0, 9)
        assert bitmap.count() == column.size
        assert bitmap.density() == 1.0

    def test_empty_span(self, column):
        bitmap = build_span_bitmap(column, 7, 6)
        assert bitmap.count() == 0


class TestLeafSetUnion:
    def test_requires_bitmaps(self):
        with pytest.raises(ValueError):
            bitmap_for_leaf_set([], [0])

    def test_empty_leaf_selection(self, column):
        bitmaps = build_leaf_bitmaps(column, 10)
        union = bitmap_for_leaf_set(bitmaps, [])
        assert union.count() == 0
        assert union.num_bits == column.size
