"""Tests for tombstone deletes and vacuum on the appendable index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitmap.index import HierarchicalBitmapIndex
from repro.errors import WorkloadError
from repro.hierarchy.tree import Hierarchy


@pytest.fixture
def hierarchy() -> Hierarchy:
    return Hierarchy.from_nested([[3, 3], [2, 4]])


@pytest.fixture
def column(hierarchy, rng) -> np.ndarray:
    return rng.integers(0, hierarchy.num_leaves, size=2000)


@pytest.fixture
def index(hierarchy, column) -> HierarchicalBitmapIndex:
    return HierarchicalBitmapIndex(hierarchy, column)


class TestDelete:
    def test_deleted_rows_leave_query_answers(self, index, column):
        victims = np.array([0, 5, 100, 1999])
        index.delete_rows(victims)
        assert index.num_deleted == 4
        assert index.num_live_rows == column.size - 4
        answer = index.lookup_range(0, index.hierarchy.num_leaves - 1)
        assert answer.count() == column.size - 4
        for victim in victims:
            assert not answer.get(int(victim))

    def test_delete_is_idempotent(self, index):
        index.delete_rows(np.array([1, 2, 3]))
        index.delete_rows(np.array([2, 3, 4]))
        assert index.num_deleted == 4

    def test_range_lookup_respects_tombstones(self, index, column):
        in_range = np.flatnonzero((column >= 2) & (column <= 7))
        victims = in_range[:10]
        index.delete_rows(victims)
        answer = index.lookup_range(2, 7)
        expected = set(in_range.tolist()) - set(victims.tolist())
        assert set(answer.to_positions().tolist()) == expected

    def test_bad_row_ids_rejected(self, index):
        with pytest.raises(WorkloadError):
            index.delete_rows(np.array([index.num_rows]))
        with pytest.raises(WorkloadError):
            index.delete_rows(np.array([-1]))

    def test_empty_delete_is_noop(self, index):
        index.delete_rows(np.array([], dtype=np.int64))
        assert index.num_deleted == 0


class TestVacuum:
    def test_vacuum_reclaims_and_renumbers(self, index, column):
        victims = np.array([0, 7, 1500])
        index.delete_rows(victims)
        reclaimed = index.vacuum()
        assert reclaimed == 3
        assert index.num_rows == column.size - 3
        assert index.num_deleted == 0
        index.verify_consistency()
        # The surviving column, in order, drives the new bitmaps.
        survivors = np.delete(column, victims)
        fresh = HierarchicalBitmapIndex(index.hierarchy, survivors)
        for node in index.hierarchy:
            assert index.bitmap(node.node_id) == fresh.bitmap(
                node.node_id
            )

    def test_vacuum_without_deletes_is_noop(self, index, column):
        assert index.vacuum() == 0
        assert index.num_rows == column.size

    def test_queries_after_vacuum(self, index, column):
        victims = np.flatnonzero(column == 3)[:5]
        index.delete_rows(victims)
        before = index.lookup_range(3, 3).count()
        index.vacuum()
        after = index.lookup_range(3, 3).count()
        assert after == before
        assert after == (column == 3).sum() - victims.size

    def test_append_after_vacuum(self, index, hierarchy, column):
        index.delete_rows(np.arange(50))
        index.vacuum()
        extra = np.full(30, 1, dtype=np.int64)
        index.append_rows(extra)
        assert index.num_rows == column.size - 50 + 30
        index.verify_consistency()
        leaf1 = index.lookup_range(1, 1).count()
        expected = (column[50:] == 1).sum() + 30
        assert leaf1 == expected
