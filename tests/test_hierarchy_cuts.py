"""Tests for the cut abstraction (validity, completeness)."""

from __future__ import annotations

import pytest

from repro.errors import InvalidCutError
from repro.hierarchy.cuts import Cut


def _leaf_parents(hierarchy):
    return [
        node_id
        for node_id in hierarchy.internal_ids_postorder()
        if not hierarchy.internal_children(node_id)
    ]


class TestValidity:
    def test_root_alone_is_a_complete_cut(self, small_hierarchy):
        cut = Cut(small_hierarchy, [small_hierarchy.root_id])
        assert cut.is_complete
        assert not cut.is_empty

    def test_all_leaf_parents_form_a_complete_cut(
        self, small_hierarchy
    ):
        cut = Cut(small_hierarchy, _leaf_parents(small_hierarchy))
        assert cut.is_complete

    def test_ancestor_descendant_pair_rejected(self, small_hierarchy):
        root = small_hierarchy.root_id
        child = small_hierarchy.internal_children(root)[0]
        with pytest.raises(InvalidCutError):
            Cut(small_hierarchy, [root, child])

    def test_duplicate_members_collapse(self, small_hierarchy):
        root = small_hierarchy.root_id
        cut = Cut(small_hierarchy, [root, root])
        assert len(cut) == 1

    def test_leaf_member_rejected(self, small_hierarchy):
        leaf = small_hierarchy.leaf_ids()[0]
        with pytest.raises(InvalidCutError):
            Cut(small_hierarchy, [leaf])

    def test_out_of_range_member_rejected(self, small_hierarchy):
        with pytest.raises(InvalidCutError):
            Cut(small_hierarchy, [999])

    def test_require_complete(self, small_hierarchy):
        root = small_hierarchy.root_id
        one_child = small_hierarchy.internal_children(root)[0]
        with pytest.raises(InvalidCutError):
            Cut(small_hierarchy, [one_child], require_complete=True)
        Cut(small_hierarchy, [root], require_complete=True)


class TestIncompleteCuts:
    def test_empty_cut(self, small_hierarchy):
        cut = Cut(small_hierarchy, [])
        assert cut.is_empty
        assert not cut.is_complete
        assert cut.uncovered_leaf_values() == set(
            range(small_hierarchy.num_leaves)
        )

    def test_partial_coverage(self, small_hierarchy):
        root = small_hierarchy.root_id
        first_child = small_hierarchy.internal_children(root)[0]
        cut = Cut(small_hierarchy, [first_child])
        node = small_hierarchy.node(first_child)
        expected = set(range(node.leaf_lo, node.leaf_hi + 1))
        assert cut.covered_leaf_values() == expected
        assert cut.member_covering(node.leaf_lo) == first_child
        outside = node.leaf_hi + 1
        assert cut.member_covering(outside) is None


class TestCutApi:
    def test_total_size(self, small_hierarchy):
        root = small_hierarchy.root_id
        sizes = [1.5] * small_hierarchy.num_nodes
        cut = Cut(small_hierarchy, [root])
        assert cut.total_size(sizes) == pytest.approx(1.5)

    def test_contains_iter_len(self, small_hierarchy):
        members = _leaf_parents(small_hierarchy)
        cut = Cut(small_hierarchy, members)
        assert all(member in cut for member in members)
        assert sorted(cut) == sorted(members)
        assert len(cut) == len(members)

    def test_equality_and_hash(self, small_hierarchy):
        a = Cut(small_hierarchy, [small_hierarchy.root_id])
        b = Cut(small_hierarchy, [small_hierarchy.root_id])
        assert a == b
        assert hash(a) == hash(b)
        assert a != object()

    def test_repr_mentions_completeness(self, small_hierarchy):
        assert "complete" in repr(
            Cut(small_hierarchy, [small_hierarchy.root_id])
        )
        assert "incomplete" in repr(Cut(small_hierarchy, []))
