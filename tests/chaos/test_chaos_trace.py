"""Chaos-mode trace snapshots: the event stream itself is the oracle.

The trace layer promises *deterministic* event streams — same seeds,
same byte-identical sequence of events, faults included.  These tests
run workloads under seeded fault injection twice and require the two
traces to agree event-for-event, which is what makes a recorded trace a
usable regression snapshot.
"""

from __future__ import annotations

import pytest

from repro.core.executor import QueryExecutor
from repro.core.multi import select_cut_multi
from repro.hierarchy.tree import Hierarchy
from repro.obs import TraceCollector, recording
from repro.storage.cache import BufferPool
from repro.storage.catalog import (
    MaterializedNodeCatalog,
    node_file_name,
)
from repro.storage.faults import FaultPolicy, RetryPolicy
from repro.workload import (
    sample_column,
    tpch_acctbal_leaf_probabilities,
)
from repro.workload.query import RangeQuery, Workload

pytestmark = pytest.mark.chaos

MAX_CONSECUTIVE = 2
POOL_RETRY = RetryPolicy(max_attempts=4)


@pytest.fixture(scope="module")
def trace_setup():
    """A module-private materialized catalog (fault policies attach to
    its store; never share with the tier-1 suite)."""
    hierarchy = Hierarchy.from_nested([[3, 3], [2, 4], [4]])
    probabilities = tpch_acctbal_leaf_probabilities(
        hierarchy.num_leaves, seed=3
    )
    column = sample_column(probabilities, num_rows=20_000, seed=11)
    catalog = MaterializedNodeCatalog(hierarchy, column)
    return hierarchy, column, catalog


@pytest.fixture(scope="module")
def workload(trace_setup):
    hierarchy, _column, _catalog = trace_setup
    last = hierarchy.num_leaves - 1
    return Workload(
        [
            RangeQuery([(0, 5)]),
            RangeQuery([(3, 12)]),
            RangeQuery([(0, last)]),
            RangeQuery([(2, 4), (9, last)]),
        ]
    )


def _run_traced(catalog, workload, policy, members):
    """One full workload execution under ``policy``, traced."""
    executor = QueryExecutor(
        catalog,
        BufferPool(
            catalog.store, budget_bytes=0, retry_policy=POOL_RETRY
        ),
    )
    collector = TraceCollector()
    catalog.store.set_fault_policy(policy)
    try:
        with recording(collector):
            for query in workload:
                executor.execute_query(query, members)
    finally:
        catalog.store.set_fault_policy(None)
    return collector


def _policy(seed, sticky=()):
    # Transient-heavy so retries reliably appear in short runs; torn
    # and bit-flip faults keep the discard path exercised too.
    return FaultPolicy(
        seed=seed,
        transient_rate=0.25,
        torn_rate=0.05,
        bitflip_rate=0.05,
        max_consecutive_per_name=MAX_CONSECUTIVE,
        sticky_corrupt_names=set(sticky),
    )


class TestTraceSnapshots:
    def test_same_seed_same_stream(
        self, trace_setup, workload, chaos_seed
    ):
        hierarchy, _column, catalog = trace_setup
        cut = select_cut_multi(catalog, workload)
        victim = min(
            node_id
            for node_id in cut.cut.node_ids
            if not hierarchy.node(node_id).is_leaf
        )
        sticky = {node_file_name(victim)}
        runs = [
            _run_traced(
                catalog,
                workload,
                _policy(chaos_seed, sticky),
                cut.cut.node_ids,
            )
            for _ in range(2)
        ]
        assert runs[0].events, "chaos run produced no events"
        # Byte-identical streams: same events, same order, same attrs.
        assert runs[0].events == runs[1].events
        assert runs[0].to_jsonl() == runs[1].to_jsonl()

        kinds = runs[0].counts_by_kind()
        # Faults actually fired and were retried...
        assert kinds.get("fault.injected", 0) > 0
        assert kinds.get("storage.retry", 0) > 0
        # ...and the sticky victim forced discard + degraded recovery.
        assert kinds.get("executor.discard", 0) > 0
        assert kinds.get("executor.degraded", 0) > 0
        degraded = runs[0].filter("executor.degraded")
        assert {e.attrs["node_id"] for e in degraded} == {victim}

    def test_different_seed_different_stream(
        self, trace_setup, workload, chaos_seed
    ):
        _hierarchy, _column, catalog = trace_setup
        members = ()
        first = _run_traced(
            catalog, workload, _policy(chaos_seed), members
        )
        second = _run_traced(
            catalog, workload, _policy(chaos_seed + 1), members
        )
        # Different fault sequences; the streams must not be forced
        # equal by accident (the clean-path prefix may coincide).
        assert first.counts_by_kind().get("fault.injected", 0) > 0
        assert first.events != second.events

    def test_ordering_is_stable_and_dense(
        self, trace_setup, workload, chaos_seed
    ):
        _hierarchy, _column, catalog = trace_setup
        collector = _run_traced(
            catalog, workload, _policy(chaos_seed), ()
        )
        seqs = [event.seq for event in collector.events]
        assert seqs == list(range(len(seqs)))
        # Spans balance: every start has its end, depth returns to 0.
        starts = len(collector.filter("span.start"))
        ends = len(collector.filter("span.end"))
        assert starts == ends
        assert collector.events[-1].depth == 0
