"""Deterministic chaos harness: end-to-end Case 1/2/3 under injected
storage faults.

Each test sweeps fault rates over a real materialized catalog and
asserts the *paper-level* contract survives misbehaving storage:

* every query answer is bit-identical to the fault-free oracle
  (retry + checksum + degradation never silently corrupt results);
* degraded reads are surfaced as typed events, never swallowed;
* measured IO still matches the accountant's tally exactly — wasted
  reads are charged, transient failures are not.

All randomness flows from the ``chaos_seed`` fixture (derived from the
test's node id), so any failure reproduces from the test name alone.
"""

from __future__ import annotations

from contextlib import contextmanager

import pytest

from repro.core.constrained import k_cut_selection
from repro.core.executor import QueryExecutor, scan_answer
from repro.core.multi import select_cut_multi
from repro.core.single import hybrid_cut
from repro.hierarchy.tree import Hierarchy
from repro.storage.cache import BufferPool
from repro.storage.catalog import MaterializedNodeCatalog, node_file_name
from repro.storage.costmodel import MB
from repro.storage.faults import FaultPolicy, RetryPolicy
from repro.workload import (
    sample_column,
    tpch_acctbal_leaf_probabilities,
)
from repro.workload.query import RangeQuery, Workload

pytestmark = pytest.mark.chaos

FAULT_RATES = [0.0, 0.05, 0.2]

#: Faults clear within 2 consecutive reads of a name, so the pool's
#: 4 store attempts and the executor's 3 decode attempts provably
#: terminate at any rate (sticky corruption alone bypasses the cap).
MAX_CONSECUTIVE = 2
POOL_RETRY = RetryPolicy(max_attempts=4)


@pytest.fixture(scope="module")
def chaos_setup():
    """A module-private materialized catalog.

    Deliberately *not* the shared session fixture: chaos tests attach
    fault policies to the store, and an exception between attach and
    reset must never leak faults into the tier-1 suite.
    """
    hierarchy = Hierarchy.from_nested([[3, 3], [2, 4], [4]])
    probabilities = tpch_acctbal_leaf_probabilities(
        hierarchy.num_leaves, seed=3
    )
    column = sample_column(probabilities, num_rows=20_000, seed=11)
    catalog = MaterializedNodeCatalog(hierarchy, column)
    return hierarchy, column, catalog


@pytest.fixture(scope="module")
def case_queries(chaos_setup):
    hierarchy, _column, _catalog = chaos_setup
    last = hierarchy.num_leaves - 1
    return [
        RangeQuery([(0, 5)]),
        RangeQuery([(3, 12)]),
        RangeQuery([(0, last)]),
        RangeQuery([(2, 4), (9, last)]),
    ]


@pytest.fixture(scope="module")
def oracle(chaos_setup, case_queries):
    """Fault-free ground truth, computed once per module."""
    _hierarchy, column, _catalog = chaos_setup
    return {
        query: scan_answer(column, query) for query in case_queries
    }


@contextmanager
def injected(store, policy):
    """Attach a fault policy for the duration of one test body."""
    store.set_fault_policy(policy)
    try:
        yield policy
    finally:
        store.set_fault_policy(None)


def _fresh_executor(catalog, budget_bytes=None):
    pool = BufferPool(
        catalog.store,
        budget_bytes=budget_bytes,
        retry_policy=POOL_RETRY,
    )
    return QueryExecutor(catalog, pool)


class TestCase1Chaos:
    """Single-query H-CS plans under uniform transient/torn/bitflip."""

    @pytest.mark.parametrize("rate", FAULT_RATES)
    def test_answers_bit_identical_and_io_accounted(
        self, chaos_setup, case_queries, oracle, chaos_seed, rate
    ):
        _hierarchy, _column, catalog = chaos_setup
        policy = FaultPolicy.uniform(
            rate,
            seed=chaos_seed,
            max_consecutive_per_name=MAX_CONSECUTIVE,
        )
        with injected(catalog.store, policy):
            # Several cold rounds per query: H-CS plans touch few
            # nodes, and the stress assertion below needs enough read
            # volume for the 0.2 sweep to actually draw faults.
            for _round in range(4):
                for query in case_queries:
                    selection = hybrid_cut(catalog, query)
                    executor = _fresh_executor(catalog)
                    result = executor.execute_query(
                        query, selection.cut.node_ids
                    )
                    assert result.answer == oracle[query]
                    # Fresh pool per query: the per-query delta IS the
                    # accountant's full tally, wasted reads included.
                    accountant = executor.pool.accountant
                    assert result.io_bytes == accountant.bytes_read
                    if rate == 0.0:
                        assert not result.degraded
                        assert accountant.retry_count == 0
                        assert accountant.discard_count == 0
        if rate == 0.0:
            assert policy.total_injected == 0
        if rate == pytest.approx(0.2):
            # The sweep's stress level must actually exercise faults.
            assert policy.total_injected > 0


class TestCase2Chaos:
    """Workload execution over a pinned Alg.-3 cut."""

    @pytest.mark.parametrize("rate", FAULT_RATES)
    def test_pinned_workload_survives_faults(
        self, chaos_setup, case_queries, oracle, chaos_seed, rate
    ):
        _hierarchy, _column, catalog = chaos_setup
        workload = Workload(case_queries)
        cut = select_cut_multi(catalog, workload)
        policy = FaultPolicy.uniform(
            rate,
            seed=chaos_seed,
            max_consecutive_per_name=MAX_CONSECUTIVE,
        )
        executor = _fresh_executor(catalog)
        with injected(catalog.store, policy):
            # Pin first so the one-time cut read can be separated from
            # the per-query deltas (execute_workload's pin is then a
            # no-op: already-pinned names are skipped).
            executor.pin_cut(cut.cut.node_ids)
            pin_bytes = executor.pool.accountant.bytes_read
            results, snapshot = executor.execute_workload(
                workload, cut.cut.node_ids, pin=True
            )
        for result, query in zip(results, workload):
            assert result.answer == oracle[query]
        assert snapshot.bytes_read == pin_bytes + sum(
            result.io_bytes for result in results
        )
        if rate == 0.0:
            assert policy.total_injected == 0
            assert snapshot.retry_count == 0
            assert snapshot.discard_count == 0
            assert not any(result.degraded for result in results)


class TestCase3Chaos:
    """Budget-constrained k-cut execution with a budgeted pool."""

    @pytest.mark.parametrize("rate", FAULT_RATES)
    def test_budgeted_workload_survives_faults(
        self, chaos_setup, case_queries, oracle, chaos_seed, rate
    ):
        hierarchy, _column, catalog = chaos_setup
        workload = Workload(case_queries)
        budget_mb = 0.5 * sum(
            catalog.size_mb(node_id)
            for node_id in hierarchy.internal_children(
                hierarchy.root_id
            )
        )
        cut = k_cut_selection(catalog, workload, budget_mb, k=4)
        assert cut.used_mb <= budget_mb
        policy = FaultPolicy.uniform(
            rate,
            seed=chaos_seed,
            max_consecutive_per_name=MAX_CONSECUTIVE,
        )
        executor = _fresh_executor(
            catalog, budget_bytes=int(budget_mb * MB)
        )
        with injected(catalog.store, policy):
            results, snapshot = executor.execute_workload(
                workload, cut.cut.node_ids, pin=True
            )
        for result, query in zip(results, workload):
            assert result.answer == oracle[query]
        # The budgeted pool never exceeds S_total, faults or not.
        assert executor.pool.resident_bytes <= int(budget_mb * MB)
        if rate == 0.0:
            assert policy.total_injected == 0
            assert snapshot.retry_count == 0


class TestStickyDegradation:
    """At-rest corruption of a cut member: answers stay bit-identical,
    the degradation is *reported*, and IO stays honest."""

    def _internal_cut_members(self, hierarchy, node_ids):
        return [
            node_id
            for node_id in node_ids
            if not hierarchy.node(node_id).is_leaf
        ]

    @pytest.mark.parametrize("rate", [0.0, 0.2])
    def test_sticky_cut_member_degrades_but_answers_hold(
        self, chaos_setup, case_queries, oracle, chaos_seed, rate
    ):
        hierarchy, _column, catalog = chaos_setup
        workload = Workload(case_queries)
        cut = select_cut_multi(catalog, workload)
        internals = self._internal_cut_members(
            hierarchy, cut.cut.node_ids
        )
        assert internals, "Alg. 3 cut has no internal members to corrupt"
        # Sticky victims must be internal: leaves have no descendants
        # to recover from (that path is TestExecutorDegradation's).
        victim = min(internals)
        policy = FaultPolicy.uniform(
            rate,
            seed=chaos_seed,
            max_consecutive_per_name=MAX_CONSECUTIVE,
            sticky_corrupt_names={node_file_name(victim)},
        )
        executor = _fresh_executor(catalog)
        with injected(catalog.store, policy):
            executor.pin_cut(cut.cut.node_ids)
            pin_bytes = executor.pool.accountant.bytes_read
            results, snapshot = executor.execute_workload(
                workload, cut.cut.node_ids, pin=True
            )
        for result, query in zip(results, workload):
            assert result.answer == oracle[query]
        events = [
            event
            for result in results
            for event in result.degraded_reads
        ]
        assert events, "sticky corruption must surface DegradedRead"
        assert {event.node_id for event in events} == {victim}
        for event in events:
            assert event.recovered_from == tuple(
                hierarchy.node(victim).children
            )
        # Wasted reads (corrupt payload fetch + reloads) are charged
        # and itemized; the total still reconciles exactly.
        assert snapshot.discard_count > 0
        assert snapshot.bytes_read == pin_bytes + sum(
            result.io_bytes for result in results
        )


class TestDeterminism:
    """Same seed, same faults, same IO — byte for byte."""

    def _run_once(self, catalog, workload, cut_node_ids, seed):
        policy = FaultPolicy.uniform(
            0.2,
            seed=seed,
            max_consecutive_per_name=MAX_CONSECUTIVE,
        )
        executor = _fresh_executor(catalog)
        with injected(catalog.store, policy):
            results, snapshot = executor.execute_workload(
                workload, cut_node_ids, pin=True
            )
        return results, snapshot, policy

    def test_same_seed_reproduces_run_exactly(
        self, chaos_setup, case_queries, chaos_seed
    ):
        _hierarchy, _column, catalog = chaos_setup
        workload = Workload(case_queries)
        cut = select_cut_multi(catalog, workload)
        first = self._run_once(
            catalog, workload, cut.cut.node_ids, chaos_seed
        )
        second = self._run_once(
            catalog, workload, cut.cut.node_ids, chaos_seed
        )
        results_a, snapshot_a, policy_a = first
        results_b, snapshot_b, policy_b = second
        assert policy_a.injected == policy_b.injected
        assert snapshot_a.bytes_read == snapshot_b.bytes_read
        assert snapshot_a.retry_count == snapshot_b.retry_count
        assert snapshot_a.discarded_bytes == snapshot_b.discarded_bytes
        for result_a, result_b in zip(results_a, results_b):
            assert result_a.answer == result_b.answer
            assert result_a.io_bytes == result_b.io_bytes
            assert (
                result_a.degraded_reads == result_b.degraded_reads
            )

    def test_different_seed_changes_fault_sequence(
        self, chaos_setup, case_queries, chaos_seed
    ):
        _hierarchy, _column, catalog = chaos_setup
        workload = Workload(case_queries)
        cut = select_cut_multi(catalog, workload)
        _, _, policy_a = self._run_once(
            catalog, workload, cut.cut.node_ids, chaos_seed
        )
        _, _, policy_b = self._run_once(
            catalog, workload, cut.cut.node_ids, chaos_seed + 1
        )
        # Both runs draw from the same rate, but the realized fault
        # sequences should differ (astronomically unlikely to collide).
        assert (
            policy_a.injected != policy_b.injected
            or policy_a.total_injected == 0
        )
