"""Crash matrix: a simulated crash at every commit-protocol step.

The durability contract under test (ISSUE 5 acceptance): for *every*
injected write-path crash point during a rebuild of a live index,
reopening the store yields **exactly** the old generation or exactly
the new one — bit-identical, asserted via manifest checksums against
fault-free oracle builds — and Case 1/2/3 queries answer identically
to the corresponding fault-free oracle.

All randomness flows from ``chaos_seed`` (derived from the test node
id), so every cell of the matrix reproduces from its test name alone.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.executor import QueryExecutor, scan_answer
from repro.errors import SimulatedCrashError
from repro.hierarchy.tree import Hierarchy
from repro.storage.catalog import MaterializedNodeCatalog
from repro.storage.faults import FaultPolicy
from repro.storage.manifest import DurableBitmapStore
from repro.storage.scrub import Scrubber
from repro.workload.query import RangeQuery

pytestmark = [pytest.mark.chaos, pytest.mark.crash]

#: The rebuild writes one physical file per hierarchy node, so write
#: crash points can fire anywhere in [1, NUM_NODES]; the manifest swap
#: fires once; post-commit GC unlinks one old file per node.
_SPEC = [[2, 2], [3, 2], [3]]
_NUM_NODES = Hierarchy.from_nested(_SPEC).num_nodes

#: Every commit-protocol step × early/mid/late occurrences.
CRASH_MATRIX = [
    ("write.begin", 1),
    ("write.begin", _NUM_NODES // 2),
    ("write.begin", _NUM_NODES),
    ("write.torn", 1),
    ("write.torn", _NUM_NODES // 2),
    ("write.torn", _NUM_NODES),
    ("write.rename", 1),
    ("write.rename", _NUM_NODES // 2),
    ("write.rename", _NUM_NODES),
    ("commit.manifest.begin", 1),
    ("commit.manifest.torn", 1),
    ("commit.manifest.rename", 1),
    ("commit.gc", 1),
    ("commit.gc", _NUM_NODES // 2),
    ("commit.gc", _NUM_NODES),
]


def _columns(chaos_seed, hierarchy):
    rng = np.random.default_rng(chaos_seed)
    old = rng.integers(0, hierarchy.num_leaves, size=4000)
    new = rng.integers(0, hierarchy.num_leaves, size=4000)
    return old, new


def _oracle_payloads(tmp_path, hierarchy, column, label):
    """Fault-free build in a scratch dir; returns {name: payload}."""
    directory = tmp_path / f"oracle-{label}"
    store = DurableBitmapStore(directory)
    MaterializedNodeCatalog(hierarchy, column, store)
    return {name: store.read(name) for name in store.names()}


def _case_queries(hierarchy):
    last = hierarchy.num_leaves - 1
    return [
        RangeQuery([(0, 3)]),          # Case 1: small range
        RangeQuery([(2, last - 1)]),   # Case 2-ish: wide range
        RangeQuery([(0, last)]),       # full domain
        RangeQuery([(1, 3), (6, last)]),  # multi-spec
    ]


@pytest.mark.parametrize(("label", "occurrence"), CRASH_MATRIX)
def test_crash_leaves_exactly_old_or_new_generation(
    tmp_path, chaos_seed, label, occurrence
):
    hierarchy = Hierarchy.from_nested(_SPEC)
    column_old, column_new = _columns(chaos_seed, hierarchy)
    oracle_old = _oracle_payloads(
        tmp_path, hierarchy, column_old, "old"
    )
    oracle_new = _oracle_payloads(
        tmp_path, hierarchy, column_new, "new"
    )

    # Live store at generation 1, then a rebuild that crashes.
    directory = tmp_path / "store"
    store = DurableBitmapStore(directory)
    MaterializedNodeCatalog(hierarchy, column_old, store)
    assert store.generation == 1
    store.set_fault_policy(
        FaultPolicy(crash_plan={label: occurrence})
    )
    with pytest.raises(SimulatedCrashError):
        MaterializedNodeCatalog(hierarchy, column_new, store)

    # Recovery: reopen without faults.  The manifest must describe
    # exactly one of the two generations, every file bit-identical to
    # the corresponding fault-free oracle build.
    reopened = DurableBitmapStore(directory)
    assert reopened.generation in (1, 2), label
    oracle = oracle_old if reopened.generation == 1 else oracle_new
    column = (
        column_old if reopened.generation == 1 else column_new
    )
    assert sorted(reopened.names()) == sorted(oracle)
    for name, expected in oracle.items():
        assert reopened.read(name) == expected, (label, name)

    # The manifest's checksums agree with what is on disk.
    report = Scrubber(reopened, hierarchy).verify()
    assert report.is_clean, report.findings

    # No stray staging or tmp files survive recovery.
    leftovers = [
        path.name
        for path in directory.iterdir()
        if path.is_file()
        and path.name != "MANIFEST"
        and path.name
        not in {
            reopened.manifest.entry(name).physical
            for name in reopened.names()
        }
    ]
    assert leftovers == [], label

    # Queries over the surviving generation answer exactly like the
    # fault-free oracle (leaf plans and internal-node cut plans).
    catalog = MaterializedNodeCatalog.from_store(hierarchy, reopened)
    executor = QueryExecutor(catalog)
    internal_cut = hierarchy.node(hierarchy.root_id).children
    for query in _case_queries(hierarchy):
        expected = scan_answer(column, query)
        for cut in ((), internal_cut):
            result = executor.execute_query(query, cut_node_ids=cut)
            assert not result.degraded
            assert (
                result.answer.to_positions().tolist()
                == expected.to_positions().tolist()
            )


def test_crash_during_initial_build_leaves_empty_store(
    tmp_path, chaos_seed
):
    """A crash before the very first commit recovers to generation 0."""
    hierarchy = Hierarchy.from_nested(_SPEC)
    column, _ = _columns(chaos_seed, hierarchy)
    directory = tmp_path / "store"
    store = DurableBitmapStore(
        directory,
        fault_policy=FaultPolicy(
            crash_plan={"commit.manifest.rename": 1}
        ),
    )
    with pytest.raises(SimulatedCrashError):
        MaterializedNodeCatalog(hierarchy, column, store)
    reopened = DurableBitmapStore(directory)
    assert reopened.generation == 0
    assert list(reopened.names()) == []


def test_simulated_crash_is_not_absorbed_by_write_wrappers(tmp_path):
    """`SimulatedCrashError` must escape every typed-error wrapper."""
    store = DurableBitmapStore(
        tmp_path, fault_policy=FaultPolicy(crash_plan={"write.begin": 1})
    )
    with pytest.raises(SimulatedCrashError):
        store.write("a.wah", b"payload")


# ----------------------------------------------------------------------
# Delta-commit crash matrix (ISSUE 7): a crash at every step of a
# delta generation's commit leaves the store serving exactly the
# pre-append state or exactly the appended one.
# ----------------------------------------------------------------------

#: A delta commit writes one delta file per node, then swaps the
#: manifest.  It unreferences nothing, so ``commit.gc`` never fires —
#: asserted separately below, not a matrix row.
DELTA_CRASH_MATRIX = [
    ("write.begin", 1),
    ("write.begin", _NUM_NODES // 2),
    ("write.begin", _NUM_NODES),
    ("write.torn", 1),
    ("write.torn", _NUM_NODES // 2),
    ("write.torn", _NUM_NODES),
    ("write.rename", 1),
    ("write.rename", _NUM_NODES // 2),
    ("write.rename", _NUM_NODES),
    ("commit.manifest.begin", 1),
    ("commit.manifest.torn", 1),
    ("commit.manifest.rename", 1),
]


def _store_state(store):
    """Everything observable: payloads by name plus delta seqs."""
    return (
        {name: store.read(name) for name in store.names()},
        tuple(delta.seq for delta in store.delta_manifests),
        store.manifest.total_rows,
    )


def _assert_no_leftovers(directory, store, label):
    live = {
        store.manifest.entry(name).physical
        for name in store.names()
    } | {"MANIFEST"}
    leftovers = [
        path.name
        for path in directory.iterdir()
        if path.is_file() and path.name not in live
    ]
    assert leftovers == [], label


def _assert_answers_match(hierarchy, store, column, label):
    catalog = MaterializedNodeCatalog.from_store(hierarchy, store)
    executor = QueryExecutor(catalog)
    for query in _case_queries(hierarchy):
        expected = scan_answer(column, query)
        result = executor.execute_query(query)
        assert not result.degraded, label
        assert (
            result.answer.to_positions().tolist()
            == expected.to_positions().tolist()
        ), (label, query)


@pytest.mark.ingest
@pytest.mark.parametrize(("label", "occurrence"), DELTA_CRASH_MATRIX)
def test_delta_commit_crash_leaves_exactly_old_or_new(
    tmp_path, chaos_seed, label, occurrence
):
    from repro.storage.delta import DeltaAppender

    hierarchy = Hierarchy.from_nested(_SPEC)
    column, _ = _columns(chaos_seed, hierarchy)
    rng = np.random.default_rng(chaos_seed + 1)
    batch = rng.integers(
        0, hierarchy.num_leaves, size=200, dtype=np.int64
    )
    directory = tmp_path / "store"
    store = DurableBitmapStore(directory)
    MaterializedNodeCatalog(hierarchy, column, store)
    old_state = _store_state(store)

    # Fault-free append on a twin store = the exactly-new oracle.
    twin_dir = tmp_path / "twin"
    twin = DurableBitmapStore(twin_dir)
    MaterializedNodeCatalog(hierarchy, column, twin)
    DeltaAppender(twin, hierarchy).append(batch)
    new_state = _store_state(twin)

    store.set_fault_policy(
        FaultPolicy(crash_plan={label: occurrence})
    )
    with pytest.raises(SimulatedCrashError):
        DeltaAppender(store, hierarchy).append(batch)

    reopened = DurableBitmapStore(directory)
    state = _store_state(reopened)
    assert state in (old_state, new_state), label
    appended = state == new_state
    _assert_no_leftovers(directory, reopened, label)
    assert Scrubber(reopened, hierarchy).verify().is_clean, label
    effective = (
        np.concatenate([column, batch]) if appended else column
    )
    _assert_answers_match(hierarchy, reopened, effective, label)


@pytest.mark.ingest
def test_delta_commit_never_garbage_collects(tmp_path, chaos_seed):
    """A delta commit unreferences nothing: a crash armed on the
    post-commit GC step must never fire during an append."""
    from repro.storage.delta import DeltaAppender

    hierarchy = Hierarchy.from_nested(_SPEC)
    column, _ = _columns(chaos_seed, hierarchy)
    store = DurableBitmapStore(tmp_path / "store")
    MaterializedNodeCatalog(hierarchy, column, store)
    store.set_fault_policy(FaultPolicy(crash_plan={"commit.gc": 1}))
    result = DeltaAppender(store, hierarchy).append(
        np.array([0, 1, 2], dtype=np.int64)
    )
    assert result.committed  # no crash: gc never ran


# ----------------------------------------------------------------------
# Compaction-commit crash matrix: compaction rewrites every node base
# and GCs the superseded bases plus the folded delta files, so every
# protocol step (gc included) gets early/mid/late cells.  Both
# surviving states answer identically — folding is purely physical.
# ----------------------------------------------------------------------

#: GC during a compaction commit unlinks the old base physicals (one
#: per node) and the folded delta physicals (two generations here).
_GC_UNLINKS = 3 * _NUM_NODES

COMPACTION_CRASH_MATRIX = [
    ("write.begin", 1),
    ("write.begin", _NUM_NODES // 2),
    ("write.begin", _NUM_NODES),
    ("write.torn", 1),
    ("write.torn", _NUM_NODES // 2),
    ("write.torn", _NUM_NODES),
    ("write.rename", 1),
    ("write.rename", _NUM_NODES // 2),
    ("write.rename", _NUM_NODES),
    ("commit.manifest.begin", 1),
    ("commit.manifest.torn", 1),
    ("commit.manifest.rename", 1),
    ("commit.gc", 1),
    ("commit.gc", _GC_UNLINKS // 2),
    ("commit.gc", _GC_UNLINKS),
]


@pytest.mark.ingest
@pytest.mark.parametrize(
    ("label", "occurrence"), COMPACTION_CRASH_MATRIX
)
def test_compaction_crash_leaves_exactly_old_or_new(
    tmp_path, chaos_seed, label, occurrence
):
    import shutil

    from repro.storage.compactor import Compactor
    from repro.storage.delta import DeltaAppender

    hierarchy = Hierarchy.from_nested(_SPEC)
    column, _ = _columns(chaos_seed, hierarchy)
    rng = np.random.default_rng(chaos_seed + 2)
    batches = [
        rng.integers(0, hierarchy.num_leaves, size=size, dtype=np.int64)
        for size in (150, 90)
    ]
    directory = tmp_path / "store"
    store = DurableBitmapStore(directory)
    MaterializedNodeCatalog(hierarchy, column, store)
    appender = DeltaAppender(store, hierarchy)
    for batch in batches:
        appender.append(batch)
    full = np.concatenate([column, *batches])
    old_state = _store_state(store)

    # Fault-free compaction of a byte-copy = the exactly-new oracle.
    twin_dir = tmp_path / "twin"
    shutil.copytree(directory, twin_dir)
    twin = DurableBitmapStore(twin_dir)
    Compactor(twin).run()
    new_state = _store_state(twin)

    store.set_fault_policy(
        FaultPolicy(crash_plan={label: occurrence})
    )
    with pytest.raises(SimulatedCrashError):
        Compactor(store).run()

    reopened = DurableBitmapStore(directory)
    state = _store_state(reopened)
    assert state in (old_state, new_state), label
    _assert_no_leftovers(directory, reopened, label)
    assert Scrubber(reopened, hierarchy).verify().is_clean, label
    # Folding never changes answers: both states serve the full column.
    _assert_answers_match(hierarchy, reopened, full, label)


def test_torn_write_persists_a_prefix(tmp_path, chaos_seed):
    """The torn-write crash leaves a real partial tmp file behind —
    and recovery still serves the old generation untouched."""
    directory = tmp_path / "store"
    store = DurableBitmapStore(directory)
    store.write("a.wah", b"x" * 64)
    store.set_fault_policy(
        FaultPolicy(
            crash_plan={"write.torn": 1}, torn_write_fraction=0.5
        )
    )
    with pytest.raises(SimulatedCrashError, match="torn write"):
        store.write("a.wah", b"y" * 64)
    torn = [
        path for path in directory.iterdir()
        if path.name.startswith(".") and path.name.endswith(".tmp")
    ]
    assert len(torn) == 1
    assert torn[0].read_bytes() == b"y" * 32  # the persisted prefix
    reopened = DurableBitmapStore(directory)
    assert reopened.read("a.wah") == b"x" * 64
    assert not any(  # recovery GC'd the torn staging file
        path.name.endswith(".tmp") for path in directory.iterdir()
    )
