"""Self-healing chaos: sequential fleet kills with full re-admission.

The acceptance contract for the self-healing edge: kill each replica
fleet's worker processes in turn and every client still gets answers
bit-identical to the serial column-scan oracle, every failed replica
is rebuilt from its on-disk shard stores and re-admitted to ACTIVE
rotation after a canary check, and the fleet never drains — both
replicas finish the run healthy.  IO accounting stays byte-exact
throughout, including the work a hedge race discards.

Fleet spawning and supervised restarts make these the slowest gateway
tests; they carry the ``chaos``, ``gateway``, ``shard``, and
``resilience`` markers and run in the dedicated CI serving job.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.executor import scan_answer
from repro.serve import (
    Gateway,
    GatewayConfig,
    ShardedExecutor,
    ShardedReplica,
)
from repro.workload import (
    sample_column,
    tpch_acctbal_leaf_probabilities,
)
from repro.workload.query import RangeQuery, Workload

pytestmark = [
    pytest.mark.chaos,
    pytest.mark.gateway,
    pytest.mark.shard,
    pytest.mark.resilience,
]

NUM_SHARDS = 2

#: Injected per-read latency for the hedging test: large enough that
#: the slow fleet's scatter reliably outlasts the hedge delay.
SLOW_DELAY_S = 0.02

QUERIES = [
    RangeQuery([(0, 5)]),
    RangeQuery([(3, 12)]),
    RangeQuery([(0, 15)]),
    RangeQuery([(2, 4), (9, 15)]),
] * 3

#: Supervisor timings for tests that must observe a full restart
#: cycle without waiting on production backoffs (zero jitter keeps
#: the probe schedule deterministic).
HEAL_CONFIG = dict(
    max_probe_attempts=10,
    probe_backoff_base_s=0.05,
    probe_backoff_max_s=0.5,
    probe_jitter=0.0,
    supervisor_interval_s=0.05,
)


@pytest.fixture(scope="module")
def selfheal_shard_base(tmp_path_factory):
    """Per-shard stores built once; every test spawns fresh fleets
    over the same specs (builds are the slow part)."""
    from repro.hierarchy.tree import Hierarchy

    hierarchy = Hierarchy.from_nested([[3, 3], [2, 4], [4]])
    probabilities = tpch_acctbal_leaf_probabilities(
        hierarchy.num_leaves, seed=3
    )
    column = sample_column(probabilities, num_rows=20_000, seed=11)
    base = tmp_path_factory.mktemp("selfheal_shards")
    built = ShardedExecutor.build(
        hierarchy, column, NUM_SHARDS, base
    )
    return hierarchy, column, built.shard_specs


@pytest.fixture(scope="module")
def oracle(selfheal_shard_base):
    _hierarchy, column, _specs = selfheal_shard_base
    return {
        query: scan_answer(column, query) for query in QUERIES
    }


def _replica_fleet(
    selfheal_shard_base, replica_id: int, slow: bool = False
) -> ShardedReplica:
    """Spawn, start, and prepare one replica fleet over the shared
    shard stores (read-only serving, so fleets can share them)."""
    hierarchy, _column, specs = selfheal_shard_base
    fault_kwargs = (
        dict(seed=replica_id, slow_rate=1.0, slow_delay_s=SLOW_DELAY_S)
        if slow
        else None
    )
    executor = ShardedExecutor(
        hierarchy,
        specs,
        threads_per_shard=1,
        fault_policy_kwargs=fault_kwargs,
        recv_timeout_s=60.0,
    )
    executor.start()
    executor.prepare(Workload(QUERIES))
    return ShardedReplica(replica_id, executor)


async def _poll(predicate, timeout_s: float = 60.0):
    """Await ``predicate()`` turning truthy; fleet restarts respawn
    processes and re-prepare, so the budget is generous."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout_s
    while not predicate():
        if loop.time() > deadline:
            raise AssertionError("condition never became true")
        await asyncio.sleep(0.05)


class TestSequentialKillReAdmission:
    def test_both_replicas_killed_and_both_readmitted(
        self, selfheal_shard_base, oracle
    ):
        """Kill replica 0's fleet, wait for its supervised rebuild
        and re-admission, then kill replica 1's fleet and wait again:
        every wave of answers matches the oracle, both replicas end
        the run ACTIVE (zero fleet drain), and every served batch's
        IO reconciles byte-exactly."""
        replica_a = _replica_fleet(selfheal_shard_base, 0)
        replica_b = _replica_fleet(selfheal_shard_base, 1)
        config = GatewayConfig(
            max_batch_size=len(QUERIES),
            max_batch_delay_s=0.05,
            **HEAL_CONFIG,
        )

        async def wave(gateway):
            return await asyncio.gather(
                *(gateway.submit(query) for query in QUERIES)
            )

        async def scenario():
            async with Gateway(
                [replica_a, replica_b], config
            ) as gateway:
                waves = [await wave(gateway)]
                for victim in (replica_a, replica_b):
                    worker = victim.executor.worker_processes[0]
                    worker.kill()
                    worker.join(timeout=10.0)
                    # Traffic keeps flowing while the victim is down
                    # (failover) and while it is being rebuilt.
                    waves.append(await wave(gateway))
                    await _poll(
                        lambda: gateway.replica_states()
                        == {0: "active", 1: "active"}
                    )
                    waves.append(await wave(gateway))
                states = gateway.replica_states()
                # Checked before aclose tears the fleets down: both
                # are genuinely serving processes again.
                assert replica_a.executor.healthy
                assert replica_b.executor.healthy
                return (
                    waves,
                    gateway.stats(),
                    gateway.batch_records,
                    gateway.hedge_records,
                    gateway.events,
                    states,
                )

        waves, stats, records, hedges, events, states = asyncio.run(
            scenario()
        )
        # Every wave, before/during/after each kill, is
        # oracle-identical — failover and re-admission never change
        # an answer.
        for results in waves:
            for query, result in zip(QUERIES, results):
                assert result.answer == oracle[query]
        # Both killed replicas came back: zero fleet drain.
        assert states == {0: "active", 1: "active"}
        assert stats.replicas_healthy == 2
        assert stats.replicas_dead == 0
        assert stats.readmissions >= 2
        # Each kill was detected (by batch failover or by the
        # supervisor's health scan — whichever saw it first) and the
        # victim left rotation before coming back.
        suspected_ids = {
            event.name
            for event in events
            if event.kind == "gateway.replica_state"
            and event.attrs["to"] == "suspected"
        }
        assert suspected_ids == {"replica-0", "replica-1"}
        assert stats.ok == len(waves) * len(QUERIES)
        readmits = [
            event for event in events if event.kind == "gateway.readmit"
        ]
        assert len(readmits) >= 2
        readmitted_ids = {event.name for event in readmits}
        assert readmitted_ids == {"replica-0", "replica-1"}
        # Exact IO reconciliation on every batch that served clients.
        assert records
        for record in records:
            assert record.report.reconciles()
        # No hedging configured: no side work to account.
        assert hedges == ()
        # Determinism: the trace carries no wall-clock attributes.
        for event in events:
            for key in event.attrs:
                assert not any(
                    fragment in key.lower()
                    for fragment in ("seconds", "wall", "time")
                )

    def test_restart_refuses_to_drop_worker_resident_rows(
        self, tmp_path
    ):
        """A fleet holding appended (worker-resident) delta rows
        refuses to restart — a rebuild from the shard stores would
        silently lose them — and the refusal is typed."""
        from repro.errors import ShardError
        from repro.hierarchy.tree import Hierarchy

        hierarchy = Hierarchy.from_nested([[3, 3], [2, 4], [4]])
        probabilities = tpch_acctbal_leaf_probabilities(
            hierarchy.num_leaves, seed=3
        )
        column = sample_column(
            probabilities, num_rows=4_000, seed=11
        )
        executor = ShardedExecutor.build(
            hierarchy, column, 1, tmp_path, durable=True
        )
        try:
            executor.start()
            executor.prepare(Workload(QUERIES))
            executor.ingest([0, 1, 2, 3])
            with pytest.raises(ShardError):
                executor.restart()
        finally:
            executor.close()


class TestHedgeReconciliation:
    def test_hedged_batch_reconciles_including_cancelled_work(
        self, selfheal_shard_base, oracle
    ):
        """With replica 0's reads slowed past the hedge delay, the
        first batch hedges to replica 1 and the fast answer wins.
        The slow side still finishes its scatter; that discarded work
        is recorded on the hedge ledger with byte-exact accounting —
        and never billed to the batch the clients saw."""
        slow = _replica_fleet(selfheal_shard_base, 0, slow=True)
        fast = _replica_fleet(selfheal_shard_base, 1)
        config = GatewayConfig(
            max_batch_size=len(QUERIES),
            max_batch_delay_s=0.05,
            hedge_delay_s=0.1,
            max_probe_attempts=0,
        )

        async def scenario():
            async with Gateway([slow, fast], config) as gateway:
                results = await asyncio.gather(
                    *(gateway.submit(query) for query in QUERIES)
                )
                # The discarded loser finishes its slow scatter in
                # the background; wait for the reaper to record it.
                await _poll(
                    lambda: len(gateway.hedge_records) == 2
                )
                return (
                    results,
                    gateway.stats(),
                    gateway.batch_records,
                    gateway.hedge_records,
                )

        results, stats, records, hedges = asyncio.run(scenario())
        for query, result in zip(QUERIES, results):
            assert result.answer == oracle[query]
        assert stats.hedges == 1
        assert stats.hedges_won == 1
        hedged = [record for record in records if record.hedged]
        assert len(hedged) == 1
        assert hedged[0].replica_id == 1
        assert hedged[0].report.reconciles()
        winner = next(record for record in hedges if record.used)
        loser = next(record for record in hedges if not record.used)
        assert winner.role == "hedge"
        assert winner.replica_id == 1
        assert loser.role == "primary"
        assert loser.replica_id == 0
        # The cancelled side's real IO is accounted byte-exactly on
        # the hedge ledger, separate from the batch's billed report.
        assert loser.error is None
        assert loser.report is not None
        assert loser.report is not hedged[0].report
        assert loser.report.reconciles()
        # Honest counting: exactly one hedge fired, one won.
        assert winner.batch_id == loser.batch_id == hedged[0].batch_id
