"""Gateway chaos: replica failover under shard-process kills.

The acceptance contract for the serving gateway: killing one shard
worker of a replica fleet mid-batch must yield answers bit-identical
to the serial column-scan oracle, re-derived on a sibling replica via
failover — no :class:`~repro.errors.ShardFailedError` escapes to any
client, and the surviving replica's accounting still reconciles to
the byte.  This mirrors the paper's hierarchical redundancy: an
unreadable internal node is re-derived from its children; an
unserviceable fleet is re-derived from its replica.

Two kill points are covered: a worker killed *before* the batch is
dispatched (the deterministic case — the failing fleet is detected on
its first scatter) and a worker killed *mid-batch* while slow reads
hold the scatter in flight (the race the gateway exists to survive).

Fleet spawning makes these the slowest gateway tests, so they carry
the ``chaos``, ``gateway``, and ``shard`` markers and run in the
dedicated CI serving job.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.executor import scan_answer
from repro.serve import (
    Gateway,
    GatewayConfig,
    ShardedExecutor,
    ShardedReplica,
)
from repro.workload import (
    sample_column,
    tpch_acctbal_leaf_probabilities,
)
from repro.workload.query import RangeQuery, Workload

pytestmark = [
    pytest.mark.chaos,
    pytest.mark.gateway,
    pytest.mark.shard,
]

NUM_SHARDS = 2

#: Injected per-read latency while a batch is in flight: large enough
#: that a 12-query scatter stays running well past the kill point.
SLOW_DELAY_S = 0.02

QUERIES = [
    RangeQuery([(0, 5)]),
    RangeQuery([(3, 12)]),
    RangeQuery([(0, 15)]),
    RangeQuery([(2, 4), (9, 15)]),
] * 3


@pytest.fixture(scope="module")
def gateway_shard_base(tmp_path_factory):
    """Per-shard stores built once; every test spawns fresh fleets
    over the same specs (builds are the slow part)."""
    from repro.hierarchy.tree import Hierarchy

    hierarchy = Hierarchy.from_nested([[3, 3], [2, 4], [4]])
    probabilities = tpch_acctbal_leaf_probabilities(
        hierarchy.num_leaves, seed=3
    )
    column = sample_column(probabilities, num_rows=20_000, seed=11)
    base = tmp_path_factory.mktemp("gateway_shards")
    built = ShardedExecutor.build(
        hierarchy, column, NUM_SHARDS, base
    )
    return hierarchy, column, built.shard_specs


@pytest.fixture(scope="module")
def oracle(gateway_shard_base):
    _hierarchy, column, _specs = gateway_shard_base
    return {
        query: scan_answer(column, query) for query in QUERIES
    }


def _replica_fleet(
    gateway_shard_base, replica_id: int, slow: bool
) -> ShardedReplica:
    """Spawn, start, and prepare one replica fleet over the shared
    shard stores (read-only serving, so fleets can share them)."""
    hierarchy, _column, specs = gateway_shard_base
    fault_kwargs = (
        dict(seed=replica_id, slow_rate=1.0, slow_delay_s=SLOW_DELAY_S)
        if slow
        else None
    )
    executor = ShardedExecutor(
        hierarchy,
        specs,
        threads_per_shard=1,
        fault_policy_kwargs=fault_kwargs,
        recv_timeout_s=60.0,
    )
    executor.start()
    executor.prepare(Workload(QUERIES))
    return ShardedReplica(replica_id, executor)


class TestGatewayShardKillFailover:
    def test_kill_before_dispatch_fails_over_bit_identically(
        self, gateway_shard_base, oracle
    ):
        """Deterministic kill point: replica 0 loses a worker before
        the batch is scattered; the gateway detects the dead fleet on
        first contact and re-runs the whole batch on replica 1."""
        primary = _replica_fleet(gateway_shard_base, 0, slow=False)
        backup = _replica_fleet(gateway_shard_base, 1, slow=False)
        victim = primary.executor.worker_processes[0]
        victim.kill()
        victim.join(timeout=10.0)
        # Re-admission is exercised by test_chaos_selfheal; this test
        # pins the retire-forever contract.
        config = GatewayConfig(
            max_batch_size=len(QUERIES),
            max_batch_delay_s=0.05,
            max_probe_attempts=0,
        )

        async def scenario():
            async with Gateway(
                [primary, backup], config
            ) as gateway:
                results = await asyncio.gather(
                    *(gateway.submit(query) for query in QUERIES)
                )
                return (
                    results,
                    gateway.stats(),
                    gateway.batch_records,
                    gateway.events,
                )

        results, stats, records, events = asyncio.run(scenario())
        for query, result in zip(QUERIES, results):
            assert result.answer == oracle[query]
        assert stats.failovers >= 1
        assert stats.ok == len(QUERIES)
        assert stats.replicas_healthy == 1
        assert any(
            event.kind == "gateway.failover" for event in events
        )
        for record in records:
            assert record.replica_id == 1
            assert record.report.reconciles()
        assert 0 in records[0].failed_replica_ids
        # Both fleets are reaped: the failed one at failover, the
        # survivor by the gateway's aclose.
        assert not primary.executor.started
        assert not backup.executor.started

    def test_kill_mid_batch_fails_over_bit_identically(
        self, gateway_shard_base, oracle
    ):
        """The acceptance case: a worker dies while the scatter is in
        flight (slow reads hold it there), and every client still
        gets the oracle answer via failover — no ``ShardFailedError``
        escapes."""
        primary = _replica_fleet(gateway_shard_base, 0, slow=True)
        backup = _replica_fleet(gateway_shard_base, 1, slow=False)
        config = GatewayConfig(
            max_batch_size=len(QUERIES),
            max_batch_delay_s=0.05,
            max_probe_attempts=0,
        )

        async def scenario():
            async with Gateway(
                [primary, backup], config
            ) as gateway:
                pending = [
                    asyncio.create_task(gateway.submit(query))
                    for query in QUERIES
                ]
                # Let the micro-batch flush and the scatter reach
                # replica 0's workers (slow reads keep it in flight
                # far longer than this)...
                await asyncio.sleep(0.3)
                assert primary.executor.started
                victim = primary.executor.worker_processes[0]
                victim.kill()
                # ...then collect: nothing here may raise.
                results = await asyncio.gather(*pending)
                return (
                    results,
                    gateway.stats(),
                    gateway.batch_records,
                )

        results, stats, records = asyncio.run(scenario())
        for query, result in zip(QUERIES, results):
            assert result.answer == oracle[query]
        assert stats.failovers >= 1
        assert stats.ok == len(QUERIES)
        assert stats.replicas_healthy == 1
        answered = [record for record in records if record.size]
        assert answered
        for record in answered:
            assert record.replica_id == 1
            assert record.report.reconciles()
        assert not primary.executor.started
        assert not primary.executor.healthy
