"""Concurrent chaos: batch serving under injected storage faults.

The serial chaos suite proves the paper-level contract one query at a
time; this module proves it survives thread fan-out at 2 and 8 workers:

* every answer stays bit-identical to the fault-free column-scan
  oracle, no matter how retries, discards, and single-flight waits
  interleave;
* per-query IO attribution reconciles with the shared accountant to
  the byte at every fault rate (wasted reads are charged to the query
  that performed them);
* on healthy storage, concurrent IO never exceeds serial IO —
  single-flight deduplication can only remove reads, not add them.

All randomness flows from the ``chaos_seed`` fixture, so any failure
reproduces from the test name alone (fault *draw order* under threads
is scheduling-dependent, but every assertion here is
interleaving-invariant).
"""

from __future__ import annotations

from contextlib import contextmanager

import pytest

from repro.core.constrained import k_cut_selection
from repro.core.executor import QueryExecutor, scan_answer
from repro.core.multi import select_cut_multi
from repro.errors import QueryFailedError
from repro.hierarchy.tree import Hierarchy
from repro.serve import BatchExecutor
from repro.storage.cache import BufferPool
from repro.storage.catalog import (
    MaterializedNodeCatalog,
    node_file_name,
)
from repro.storage.costmodel import MB
from repro.storage.faults import FaultPolicy, RetryPolicy
from repro.workload import (
    sample_column,
    tpch_acctbal_leaf_probabilities,
)
from repro.workload.query import RangeQuery, Workload

pytestmark = pytest.mark.chaos

WORKER_COUNTS = [2, 8]
FAULT_RATES = [0.0, 0.1]

#: Same per-name consecutive-fault cap as the serial suite.
MAX_CONSECUTIVE = 2
#: More store attempts than the serial suite's 4: concurrent reloads
#: of one name share the per-name fault counter, so a thread can
#: absorb another thread's draws before its own clean read.
POOL_RETRY = RetryPolicy(max_attempts=6)


@pytest.fixture(scope="module")
def chaos_setup():
    """Module-private materialized catalog (same shape as the serial
    suite; private so leaked fault policies can't cross modules)."""
    hierarchy = Hierarchy.from_nested([[3, 3], [2, 4], [4]])
    probabilities = tpch_acctbal_leaf_probabilities(
        hierarchy.num_leaves, seed=3
    )
    column = sample_column(probabilities, num_rows=20_000, seed=11)
    catalog = MaterializedNodeCatalog(hierarchy, column)
    return hierarchy, column, catalog


@pytest.fixture(scope="module")
def batch_queries(chaos_setup):
    """A 12-query batch (three rounds of four shapes) so 8 workers
    actually overlap."""
    hierarchy, _column, _catalog = chaos_setup
    last = hierarchy.num_leaves - 1
    shapes = [
        RangeQuery([(0, 5)]),
        RangeQuery([(3, 12)]),
        RangeQuery([(0, last)]),
        RangeQuery([(2, 4), (9, last)]),
    ]
    return shapes * 3


@pytest.fixture(scope="module")
def oracle(chaos_setup, batch_queries):
    _hierarchy, column, _catalog = chaos_setup
    return {
        query: scan_answer(column, query) for query in batch_queries
    }


@contextmanager
def injected(store, policy):
    store.set_fault_policy(policy)
    try:
        yield policy
    finally:
        store.set_fault_policy(None)


def _fresh_executor(catalog, budget_bytes=None):
    pool = BufferPool(
        catalog.store,
        budget_bytes=budget_bytes,
        retry_policy=POOL_RETRY,
    )
    return QueryExecutor(catalog, pool)


class TestConcurrentBatchChaos:
    """Pinned Alg.-3 cut, many workers, faults injected."""

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("rate", FAULT_RATES)
    def test_answers_bit_identical_and_io_reconciles(
        self,
        chaos_setup,
        batch_queries,
        oracle,
        chaos_seed,
        workers,
        rate,
    ):
        _hierarchy, _column, catalog = chaos_setup
        cut = select_cut_multi(
            catalog, Workload(batch_queries)
        ).cut.node_ids
        policy = FaultPolicy.uniform(
            rate,
            seed=chaos_seed,
            max_consecutive_per_name=MAX_CONSECUTIVE,
        )
        executor = _fresh_executor(catalog)
        with injected(catalog.store, policy):
            report = BatchExecutor(
                executor, max_workers=workers
            ).run(batch_queries, cut)
        for query, result in zip(batch_queries, report.results):
            assert result.answer == oracle[query]
        # Exact attribution under interleaving: pin-phase IO plus the
        # per-query accountants explain the shared delta to the byte,
        # retries and discarded (wasted) reads included.
        assert report.reconciles()
        # Spell the identity out per counter so a future accountant
        # that balances useful bytes but leaks fault-path work (a
        # retry or discard charged to nobody) fails loudly here.
        for counter in (
            "bytes_read",
            "read_count",
            "retry_count",
            "discarded_bytes",
            "discard_count",
        ):
            attributed = sum(
                getattr(outcome.io, counter)
                for outcome in report.outcomes
            )
            assert getattr(report.pin_io, counter) + attributed == (
                getattr(report.io, counter)
            ), counter
        if rate == 0.0:
            assert policy.total_injected == 0
            assert report.io.retry_count == 0
            assert report.io.discard_count == 0
            assert not any(
                result.degraded for result in report.results
            )

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_concurrent_io_never_exceeds_serial(
        self, chaos_setup, batch_queries, oracle, workers
    ):
        """On healthy storage, single-flight means concurrency can
        only dedupe reads relative to the serial loop, never add."""
        _hierarchy, _column, catalog = chaos_setup
        cut = select_cut_multi(
            catalog, Workload(batch_queries)
        ).cut.node_ids
        serial = BatchExecutor(
            _fresh_executor(catalog), max_workers=1
        ).run(batch_queries, cut)
        concurrent = BatchExecutor(
            _fresh_executor(catalog), max_workers=workers
        ).run(batch_queries, cut)
        assert concurrent.io.bytes_read <= serial.io.bytes_read
        assert concurrent.io.read_count <= serial.io.read_count
        for query, result in zip(
            batch_queries, concurrent.results
        ):
            assert result.answer == oracle[query]


class TestChaosFailedQuery:
    """A query that runs out of recovery options becomes a typed
    per-query outcome — and the batch accounting still balances with
    the failed query's wasted IO in the ledger."""

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_reconciliation_holds_with_a_failed_query(
        self, chaos_setup, chaos_seed, workers
    ):
        hierarchy, column, catalog = chaos_setup
        last = hierarchy.num_leaves - 1
        poisoned_leaf = hierarchy.leaf_node_id(0)
        # Pin nothing; plan over the leaf level so exactly one query
        # touches the sticky-corrupt leaf file.
        leaf_cut = tuple(
            hierarchy.leaf_node_id(value)
            for value in range(hierarchy.num_leaves)
        )
        batch = [RangeQuery([(0, 0)])] + [
            RangeQuery([(3, 12)]),
            RangeQuery([(5, last)]),
            RangeQuery([(2, 4), (9, last)]),
        ] * 2
        policy = FaultPolicy(
            seed=chaos_seed,
            sticky_corrupt_names=[node_file_name(poisoned_leaf)],
        )
        executor = _fresh_executor(catalog)
        with injected(catalog.store, policy):
            report = BatchExecutor(
                executor, max_workers=workers
            ).run(batch, leaf_cut, pin=False)
        assert not report.ok
        assert len(report.errors) == 1
        failed = report.outcomes[0]
        assert failed.result is None
        assert isinstance(failed.error, QueryFailedError)
        assert failed.error.query_index == 0
        assert failed.error.error_type == "UnrecoverableReadError"
        for query, outcome in zip(
            batch[1:], report.outcomes[1:]
        ):
            assert outcome.ok
            assert outcome.result.answer == scan_answer(
                column, query
            )
        # Every corrupt payload the failed query read and threw away
        # is still attributed to it — so the batch reconciles.
        assert failed.io.discard_count > 0
        assert failed.io.discarded_bytes > 0
        assert report.io.discard_count >= failed.io.discard_count
        assert report.reconciles()


class TestConcurrentBudgetedChaos:
    """Case-3 budgeted pool: S_total holds under threads and faults."""

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("rate", FAULT_RATES)
    def test_budget_and_answers_hold(
        self,
        chaos_setup,
        batch_queries,
        oracle,
        chaos_seed,
        workers,
        rate,
    ):
        hierarchy, _column, catalog = chaos_setup
        workload = Workload(batch_queries)
        budget_mb = 0.5 * sum(
            catalog.size_mb(node_id)
            for node_id in hierarchy.internal_children(
                hierarchy.root_id
            )
        )
        cut = k_cut_selection(catalog, workload, budget_mb, k=4)
        assert cut.used_mb <= budget_mb
        policy = FaultPolicy.uniform(
            rate,
            seed=chaos_seed,
            max_consecutive_per_name=MAX_CONSECUTIVE,
        )
        budget_bytes = int(budget_mb * MB)
        executor = _fresh_executor(
            catalog, budget_bytes=budget_bytes
        )
        with injected(catalog.store, policy):
            report = BatchExecutor(
                executor, max_workers=workers
            ).run(batch_queries, cut.cut.node_ids)
        for query, result in zip(batch_queries, report.results):
            assert result.answer == oracle[query]
        assert report.reconciles()
        assert executor.pool.resident_bytes <= budget_bytes
