"""Chaos: the delta-ingest lifecycle under injected storage faults.

The LSM write path promises that a store is *always* queryable with
bit-identical answers while it mutates: appends commit as delta
generations, readers merge them on read, a compactor folds them back
into the base — all while the fault injector corrupts, truncates, and
drops reads.  This module interleaves all four actors (ingest,
compaction, scrub, queries) and holds the line at every step:

* every answer is position-identical to a fresh column scan over
  exactly the rows committed so far, at fault rates 0.0 and 0.1;
* batch serving over a delta-bearing store reconciles its IO ledger
  to the byte, counter by counter, delta reads included;
* queries racing a live background compactor stay correct through
  the fold (stale cached bases, GC'd delta files mid-merge);
* the scrubber finds nothing to repair after any amount of ingest.

All randomness flows from ``chaos_seed``, so failures reproduce from
the test name alone.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

import numpy as np
import pytest

from repro.core.executor import QueryExecutor, scan_answer
from repro.core.multi import select_cut_multi
from repro.hierarchy.tree import Hierarchy
from repro.obs import collecting_metrics
from repro.serve import BatchExecutor, ShardedExecutor
from repro.storage.cache import BufferPool
from repro.storage.catalog import MaterializedNodeCatalog
from repro.storage.compactor import BackgroundCompactor, Compactor
from repro.storage.delta import DeltaAppender
from repro.storage.faults import FaultPolicy, RetryPolicy
from repro.storage.manifest import DurableBitmapStore
from repro.storage.scrub import Scrubber
from repro.workload import (
    sample_column,
    tpch_acctbal_leaf_probabilities,
)
from repro.workload.query import RangeQuery, Workload

pytestmark = [pytest.mark.chaos, pytest.mark.ingest]

FAULT_RATES = [0.0, 0.1]

#: Same per-name consecutive-fault cap as the other chaos suites.
MAX_CONSECUTIVE = 2
#: Merge-on-read touches more files per query (base + one file per
#: delta generation), so give the pool the concurrent suite's retry
#: headroom.
POOL_RETRY = RetryPolicy(max_attempts=6)

_SPEC = [[3, 3], [2, 4], [4]]
_BASE_ROWS = 6_000


def _column_and_hierarchy():
    hierarchy = Hierarchy.from_nested(_SPEC)
    probabilities = tpch_acctbal_leaf_probabilities(
        hierarchy.num_leaves, seed=3
    )
    column = sample_column(
        probabilities, num_rows=_BASE_ROWS, seed=11
    )
    return hierarchy, column


def _queries(hierarchy):
    last = hierarchy.num_leaves - 1
    return [
        RangeQuery([(0, 5)]),
        RangeQuery([(3, 12)]),
        RangeQuery([(0, last)]),
        RangeQuery([(2, 4), (9, last)]),
    ]


def _build_store(tmp_path, hierarchy, column):
    store = DurableBitmapStore(tmp_path / "store")
    MaterializedNodeCatalog(hierarchy, column, store)
    return store


def _fresh_executor(store, hierarchy, budget_bytes=None):
    catalog = MaterializedNodeCatalog.from_store(hierarchy, store)
    pool = BufferPool(
        store, budget_bytes=budget_bytes, retry_policy=POOL_RETRY
    )
    return QueryExecutor(catalog, pool)


def _batches(hierarchy, chaos_seed, sizes):
    rng = np.random.default_rng(chaos_seed)
    return [
        rng.integers(
            0, hierarchy.num_leaves, size=size, dtype=np.int64
        )
        for size in sizes
    ]


def _assert_answers(executor, hierarchy, column, cut=()):
    for query in _queries(hierarchy):
        answer = executor.execute_query(
            query, cut_node_ids=cut
        ).answer
        expected = scan_answer(column, query)
        assert (
            answer.to_positions().tolist()
            == expected.to_positions().tolist()
        ), query


@contextmanager
def injected(store, policy):
    store.set_fault_policy(policy)
    try:
        yield policy
    finally:
        store.set_fault_policy(None)


class TestInterleavedLifecycle:
    """Serial rounds of append -> query -> (fold) -> scrub."""

    @pytest.mark.parametrize("rate", FAULT_RATES)
    def test_every_round_answers_the_rows_committed_so_far(
        self, tmp_path, chaos_seed, rate
    ):
        hierarchy, column = _column_and_hierarchy()
        store = _build_store(tmp_path, hierarchy, column)
        appender = DeltaAppender(store, hierarchy)
        executor = _fresh_executor(store, hierarchy)
        batches = _batches(hierarchy, chaos_seed, (37, 203, 5, 64))
        policy = FaultPolicy.uniform(
            rate,
            seed=chaos_seed,
            max_consecutive_per_name=MAX_CONSECUTIVE,
        )
        parts = [column]
        with injected(store, policy), collecting_metrics() as metrics:
            for round_no, batch in enumerate(batches):
                assert appender.append(batch).committed
                parts.append(batch)
                _assert_answers(
                    executor, hierarchy, np.concatenate(parts)
                )
                if round_no == 1:
                    # A bounded mid-lifecycle fold: the next round's
                    # queries merge the survivors onto the new base.
                    assert Compactor(
                        store, max_deltas_per_run=1
                    ).run().did_work
            # The scrubber reads what is physically on disk, so it is
            # immune to the injector — and finds nothing wrong.
            assert Scrubber(store, hierarchy).verify().is_clean
            Compactor(store).run()
            _assert_answers(
                executor, hierarchy, np.concatenate(parts)
            )
            assert metrics.counter("delta_merges_total") > 0
        assert store.delta_manifests == ()
        assert Scrubber(store, hierarchy).verify().is_clean
        if rate == 0.0:
            assert policy.total_injected == 0

    @pytest.mark.parametrize("rate", FAULT_RATES)
    def test_internal_cut_merges_deltas_identically(
        self, tmp_path, chaos_seed, rate
    ):
        """Cut members answer from internal-node files; their delta
        files must merge exactly like the leaves' do."""
        hierarchy, column = _column_and_hierarchy()
        store = _build_store(tmp_path, hierarchy, column)
        appender = DeltaAppender(store, hierarchy)
        for batch in _batches(hierarchy, chaos_seed, (50, 11)):
            appender.append(batch)
            column = np.concatenate([column, batch])
        executor = _fresh_executor(store, hierarchy)
        cut = tuple(hierarchy.node(hierarchy.root_id).children)
        policy = FaultPolicy.uniform(
            rate,
            seed=chaos_seed,
            max_consecutive_per_name=MAX_CONSECUTIVE,
        )
        with injected(store, policy):
            _assert_answers(executor, hierarchy, column, cut=cut)


class TestBatchServingWithDeltas:
    """Thread fan-out over a delta-bearing store: answers and the
    byte-exact IO ledger, delta reads included."""

    @pytest.mark.parametrize("rate", FAULT_RATES)
    def test_answers_and_reconciliation(
        self, tmp_path, chaos_seed, rate
    ):
        hierarchy, column = _column_and_hierarchy()
        store = _build_store(tmp_path, hierarchy, column)
        appender = DeltaAppender(store, hierarchy)
        for batch in _batches(hierarchy, chaos_seed, (90, 17, 140)):
            appender.append(batch)
            column = np.concatenate([column, batch])
        executor = _fresh_executor(store, hierarchy)
        batch_queries = _queries(hierarchy) * 3
        cut = select_cut_multi(
            executor.catalog, Workload(batch_queries)
        ).cut.node_ids
        policy = FaultPolicy.uniform(
            rate,
            seed=chaos_seed,
            max_consecutive_per_name=MAX_CONSECUTIVE,
        )
        with injected(store, policy):
            report = BatchExecutor(executor, max_workers=4).run(
                batch_queries, cut
            )
        for query, result in zip(batch_queries, report.results):
            expected = scan_answer(column, query)
            assert (
                result.answer.to_positions().tolist()
                == expected.to_positions().tolist()
            )
        assert report.reconciles()
        # Spell the identity out per counter: delta reads, their
        # retries, and their checksum discards must all land in some
        # query's ledger.
        for counter in (
            "bytes_read",
            "read_count",
            "retry_count",
            "discarded_bytes",
            "discard_count",
        ):
            attributed = sum(
                getattr(outcome.io, counter)
                for outcome in report.outcomes
            )
            assert getattr(report.pin_io, counter) + attributed == (
                getattr(report.io, counter)
            ), counter
        if rate == 0.0:
            assert policy.total_injected == 0
            assert report.io.retry_count == 0
            assert report.io.discard_count == 0


class TestQueriesRacingTheCompactor:
    """Merge-on-read vs a live background fold.  A query can cache a
    manifest snapshot, lose the delta files underneath it to the
    fold's GC, and must recover via the folded-delta retry — never a
    wrong answer.  (Spurious degraded *events* from abandoned attempts
    are fine; answers are not allowed to degrade.)"""

    @pytest.mark.parametrize("rate", FAULT_RATES)
    def test_answers_stay_correct_through_the_fold(
        self, tmp_path, chaos_seed, rate
    ):
        hierarchy, column = _column_and_hierarchy()
        store = _build_store(tmp_path, hierarchy, column)
        appender = DeltaAppender(store, hierarchy)
        for batch in _batches(hierarchy, chaos_seed, (60, 80, 25, 110)):
            appender.append(batch)
            column = np.concatenate([column, batch])
        executor = _fresh_executor(store, hierarchy)
        policy = FaultPolicy.uniform(
            rate,
            seed=chaos_seed,
            max_consecutive_per_name=MAX_CONSECUTIVE,
        )
        # One generation per fold widens the race window to four
        # separate commit+GC points.
        with injected(store, policy), BackgroundCompactor(
            store,
            min_deltas=1,
            interval_seconds=0.01,
            max_deltas_per_run=1,
        ) as compactor:
            compactor.trigger()
            deadline = time.monotonic() + 30.0
            while True:
                _assert_answers(executor, hierarchy, column)
                if not store.delta_manifests:
                    break
                assert time.monotonic() < deadline, (
                    "background compactor never drained the deltas"
                )
        assert compactor.errors == []
        assert store.delta_manifests == ()
        # Post-fold: same executor, now over the folded base only.
        _assert_answers(executor, hierarchy, column)
        assert Scrubber(store, hierarchy).verify().is_clean


@pytest.mark.shard
class TestShardedIngestLifecycle:
    """The full lifecycle across process boundaries: every shard
    worker ingests/folds its own store under its own injector."""

    @pytest.mark.parametrize("rate", FAULT_RATES)
    def test_ingest_run_compact_run(
        self, tmp_path, chaos_seed, rate
    ):
        hierarchy, column = _column_and_hierarchy()
        batches = _batches(hierarchy, chaos_seed, (75, 33))
        full = np.concatenate([column, *batches])
        fault_kwargs = None
        if rate:
            fault_kwargs = {
                "seed": chaos_seed,
                "transient_rate": rate / 3,
                "torn_rate": rate / 3,
                "bitflip_rate": rate / 3,
                "max_consecutive_per_name": MAX_CONSECUTIVE,
            }
        executor = ShardedExecutor.build(
            hierarchy,
            column,
            2,
            tmp_path,
            durable=True,
            threads_per_shard=2,
            fault_policy_kwargs=fault_kwargs,
            retry_max_attempts=POOL_RETRY.max_attempts,
        )
        queries = _queries(hierarchy)
        with executor:
            executor.prepare(Workload(queries))
            for batch in batches:
                assert executor.ingest(batch).committed
            assert executor.num_rows == full.size

            report = executor.run(queries)
            assert report.num_rows == full.size
            for query, result in zip(queries, report.results):
                expected = scan_answer(full, query)
                assert (
                    result.answer.to_positions().tolist()
                    == expected.to_positions().tolist()
                )
            assert report.reconciles()

            reports = executor.compact()
            assert sum(r.folded_rows for r in reports) == sum(
                batch.size for batch in batches
            )
            # Appends route to the tail shard; only it has deltas.
            assert reports[-1].did_work
            assert not reports[0].did_work

            report = executor.run(queries)
            for query, result in zip(queries, report.results):
                expected = scan_answer(full, query)
                assert (
                    result.answer.to_positions().tolist()
                    == expected.to_positions().tolist()
                )
            assert report.reconciles()
