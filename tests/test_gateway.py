"""Tests for the asyncio serving gateway.

Admission control, micro-batching, deadlines, and replica failover are
exercised through the in-process async API — no sockets needed except
for the TCP round-trip tests, which bind an ephemeral loopback port.
Stub replicas make the edge cases (shedding, zero-length flushes,
failover ordering) deterministic; the failover-reconciliation test
runs a real :class:`~repro.serve.BatchExecutor` replica so the
byte-exact IO contract is checked against genuine accounting.

``pytest-asyncio`` is not a dependency: every test is a sync function
driving its scenario with ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

from repro.bitmap.wah import WahBitmap
from repro.core.executor import (
    ExecutionResult,
    QueryExecutor,
    scan_answer,
)
from repro.core.multi import select_cut_multi
from repro.errors import (
    AllReplicasFailedError,
    DeadlineExceededError,
    GatewayClosedError,
    GatewayError,
    OverloadedError,
    ShardFailedError,
)
from repro.obs import collecting_metrics
from repro.serve import (
    BatchExecutor,
    BatchReplica,
    Gateway,
    GatewayConfig,
    QueryOutcome,
    Replica,
)
from repro.storage.accounting import IOSnapshot
from repro.storage.cache import BufferPool
from repro.workload.query import RangeQuery, Workload

pytestmark = pytest.mark.gateway

NUM_BITS = 64

QUERIES = [
    RangeQuery([(0, 2)], label="q0"),
    RangeQuery([(3, 11)], label="q1"),
    RangeQuery([(0, 15)], label="q2"),
    RangeQuery([(2, 9), (12, 14)], label="q3"),
    RangeQuery([(7, 7)], label="q4"),
    RangeQuery([(1, 13)], label="q5"),
]


def _zero_io() -> IOSnapshot:
    return IOSnapshot(bytes_read=0, read_count=0, reads_by_name={})


class _StubReport:
    """Minimal backend report: outcomes + trivially-true reconcile."""

    def __init__(self, outcomes):
        self.outcomes = tuple(outcomes)

    def reconciles(self) -> bool:
        return True


class StubReplica(Replica):
    """Answers every query with a bitmap of its first range's low
    bound — distinguishable per query, cheap, deterministic."""

    def __init__(self, replica_id: int, delay_s: float = 0.0):
        super().__init__(replica_id)
        self.delay_s = delay_s
        self.batches_run = 0

    def run_batch(self, queries):
        self.batches_run += 1
        if self.delay_s:
            time.sleep(self.delay_s)
        outcomes = []
        for index, query in enumerate(queries):
            answer = WahBitmap.from_positions(
                [query.specs[0].start], NUM_BITS
            )
            outcomes.append(
                QueryOutcome(
                    index=index,
                    result=ExecutionResult(
                        query=query,
                        answer=answer,
                        io_bytes=0,
                        degraded_reads=(),
                    ),
                    io=_zero_io(),
                    events=(),
                    wall_seconds=0.0,
                )
            )
        return _StubReport(outcomes)


class FailingReplica(StubReplica):
    """Raises a fleet-level failure on every batch."""

    def run_batch(self, queries):
        self.batches_run += 1
        raise ShardFailedError(
            self.replica_id, "injected fleet failure"
        )


class BlockingReplica(StubReplica):
    """Holds every batch until the test releases it."""

    def __init__(self, replica_id: int, release: threading.Event):
        super().__init__(replica_id)
        self.release = release

    def run_batch(self, queries):
        assert self.release.wait(timeout=30.0), "test never released"
        return super().run_batch(queries)


def _expected_answer(query: RangeQuery) -> WahBitmap:
    return WahBitmap.from_positions([query.specs[0].start], NUM_BITS)


class TestSubmit:
    def test_answers_come_back_per_request(self):
        async def scenario():
            async with Gateway([StubReplica(0)]) as gateway:
                results = await asyncio.gather(
                    *(gateway.submit(query) for query in QUERIES)
                )
                return results, gateway.stats()

        results, stats = asyncio.run(scenario())
        for query, result in zip(QUERIES, results):
            assert result.answer.words == _expected_answer(
                query
            ).words
        assert stats.ok == len(QUERIES)
        assert stats.requests_total == len(QUERIES)
        assert stats.shed == 0
        assert stats.batches >= 1

    def test_micro_batches_respect_the_size_bound(self):
        config = GatewayConfig(
            max_batch_size=4, max_batch_delay_s=0.05
        )

        async def scenario():
            async with Gateway(
                [StubReplica(0)], config
            ) as gateway:
                await asyncio.gather(
                    *(gateway.submit(query) for query in QUERIES)
                )
                return gateway.batch_records

        records = asyncio.run(scenario())
        assert sum(record.size for record in records) == len(QUERIES)
        assert max(record.size for record in records) <= 4
        # Concurrent submission against a 50ms flush delay coalesces:
        # fewer batches than requests.
        assert len(records) < len(QUERIES)

    def test_submit_to_unstarted_gateway_raises_typed(self):
        gateway = Gateway([StubReplica(0)])
        with pytest.raises(GatewayClosedError):
            asyncio.run(gateway.submit(QUERIES[0]))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GatewayConfig(max_batch_size=0)
        with pytest.raises(ValueError):
            GatewayConfig(max_batch_delay_s=-0.1)
        with pytest.raises(ValueError):
            GatewayConfig(max_queue_depth=0)
        with pytest.raises(ValueError):
            GatewayConfig(max_inflight_batches=0)
        with pytest.raises(ValueError):
            GatewayConfig(default_deadline_s=0.0)
        with pytest.raises(ValueError):
            Gateway([])


class TestDeadlines:
    def test_deadline_expiring_while_queued(self):
        """A request whose deadline passes before its micro-batch is
        assembled fails with phase ``queued`` — and the backend never
        sees it."""
        replica = StubReplica(0)
        config = GatewayConfig(
            max_batch_size=8, max_batch_delay_s=0.1
        )

        async def scenario():
            async with Gateway([replica], config) as gateway:
                with pytest.raises(DeadlineExceededError) as info:
                    await gateway.submit(
                        QUERIES[0], deadline_s=0.001
                    )
                return info.value, gateway.stats()

        error, stats = asyncio.run(scenario())
        assert error.phase == "queued"
        assert stats.deadline_queued == 1
        assert stats.deadline_inflight == 0
        # The whole batch expired, so the flush was empty and no
        # backend batch ran at all.
        assert replica.batches_run == 0
        assert stats.empty_flushes == 1
        assert stats.batches == 0

    def test_deadline_expiring_in_flight(self):
        """A request overtaken by a slow backend fails with phase
        ``inflight``; a deadline-free sibling in the same batch still
        gets its answer (the batch is not poisoned)."""
        replica = StubReplica(0, delay_s=0.15)
        config = GatewayConfig(
            max_batch_size=2, max_batch_delay_s=0.05
        )

        async def scenario():
            async with Gateway([replica], config) as gateway:
                doomed = asyncio.create_task(
                    gateway.submit(QUERIES[0], deadline_s=0.08)
                )
                healthy = asyncio.create_task(
                    gateway.submit(QUERIES[1])
                )
                results = await asyncio.gather(
                    doomed, healthy, return_exceptions=True
                )
                return results, gateway.stats()

        (doomed_result, healthy_result), stats = asyncio.run(
            scenario()
        )
        assert isinstance(doomed_result, DeadlineExceededError)
        assert doomed_result.phase == "inflight"
        assert healthy_result.answer.words == _expected_answer(
            QUERIES[1]
        ).words
        assert stats.deadline_inflight == 1
        assert stats.ok == 1
        # Both rode one dispatched batch; the backend did run it.
        assert replica.batches_run == 1

    def test_zero_length_flush_skips_the_backend(self):
        """When every member of a coalesced batch expires while
        queued, the flush is empty: counted, traced, and never sent
        to a replica."""
        replica = StubReplica(0)
        config = GatewayConfig(
            max_batch_size=4, max_batch_delay_s=0.08
        )

        async def scenario():
            async with Gateway([replica], config) as gateway:
                results = await asyncio.gather(
                    *(
                        gateway.submit(query, deadline_s=0.001)
                        for query in QUERIES[:3]
                    ),
                    return_exceptions=True,
                )
                return results, gateway.stats(), gateway.events

        results, stats, events = asyncio.run(scenario())
        assert all(
            isinstance(result, DeadlineExceededError)
            and result.phase == "queued"
            for result in results
        )
        assert replica.batches_run == 0
        assert stats.empty_flushes >= 1
        assert stats.batches == 0
        kinds = {event.kind for event in events}
        assert "gateway.empty_flush" in kinds
        assert "gateway.batch" not in kinds


class TestAdmissionControl:
    def test_shed_under_overload_is_typed_and_isolated(self):
        """With the pipeline saturated and the queue full, the next
        submit sheds with ``OverloadedError`` — and every admitted
        request still gets its exact answer once the backend drains
        (shedding cannot poison a batch)."""
        release = threading.Event()
        replica = BlockingReplica(0, release)
        config = GatewayConfig(
            max_batch_size=1,
            max_batch_delay_s=0.0,
            max_queue_depth=2,
            max_inflight_batches=1,
        )

        async def scenario():
            async with Gateway([replica], config) as gateway:
                admitted = [
                    asyncio.create_task(gateway.submit(query))
                    for query in QUERIES[:2]
                ]
                # Let the batcher drain both into the dispatch
                # pipeline (one in flight, one waiting on the
                # in-flight semaphore)...
                await asyncio.sleep(0.1)
                admitted += [
                    asyncio.create_task(gateway.submit(query))
                    for query in QUERIES[2:4]
                ]
                # ...and let those two land in the intake queue,
                # filling it to max_queue_depth.
                await asyncio.sleep(0.05)
                assert gateway.queue_depth == 2
                with pytest.raises(OverloadedError) as info:
                    await gateway.submit(QUERIES[4])
                release.set()
                results = await asyncio.gather(*admitted)
                return info.value, results, gateway.stats()

        try:
            error, results, stats = asyncio.run(scenario())
        finally:
            release.set()
        assert error.queue_depth == 2
        assert error.max_queue_depth == 2
        for query, result in zip(QUERIES[:4], results):
            assert result.answer.words == _expected_answer(
                query
            ).words
        assert stats.shed == 1
        assert stats.ok == 4
        assert stats.requests_total == 5
        assert stats.queue_depth_peak <= config.max_queue_depth


class TestFailover:
    def test_failed_replica_fails_over_and_is_retired(self):
        """A fleet-level failure reroutes the batch to the next
        healthy replica; with re-admission disabled
        (``max_probe_attempts=0``) the failed one is closed and never
        tried again — the pre-self-healing contract."""
        bad = FailingReplica(0)
        good = StubReplica(1)
        config = GatewayConfig(max_probe_attempts=0)

        async def scenario():
            async with Gateway([bad, good], config) as gateway:
                first = await gateway.submit(QUERIES[0])
                second = await gateway.submit(QUERIES[1])
                return (
                    first,
                    second,
                    gateway.stats(),
                    gateway.batch_records,
                    gateway.events,
                    tuple(
                        replica.replica_id
                        for replica in gateway.healthy_replicas
                    ),
                )

        first, second, stats, records, events, healthy = asyncio.run(
            scenario()
        )
        assert first.answer.words == _expected_answer(
            QUERIES[0]
        ).words
        assert second.answer.words == _expected_answer(
            QUERIES[1]
        ).words
        assert stats.failovers == 1
        assert stats.replicas_healthy == 1
        assert healthy == (1,)
        assert bad.closed
        assert bad.batches_run == 1  # never retried after retirement
        first_record = records[0]
        assert first_record.failed_over
        assert first_record.failed_replica_ids == (0,)
        assert first_record.attempts == 2
        assert first_record.replica_id == 1
        assert all(
            record.replica_id == 1 for record in records[1:]
        )
        failover_events = [
            event
            for event in events
            if event.kind == "gateway.failover"
        ]
        assert len(failover_events) == 1
        assert failover_events[0].attrs["error"] == (
            "ShardFailedError"
        )

    def test_all_replicas_failing_surfaces_every_attempt(self):
        config = GatewayConfig(max_probe_attempts=0)

        async def scenario():
            async with Gateway(
                [FailingReplica(0), FailingReplica(1)], config
            ) as gateway:
                with pytest.raises(AllReplicasFailedError) as info:
                    await gateway.submit(QUERIES[0])
                # With every replica retired, later submits fail
                # fast with the same typed error.
                with pytest.raises(AllReplicasFailedError):
                    await gateway.submit(QUERIES[1])
                return info.value, gateway.stats()

        error, stats = asyncio.run(scenario())
        assert [
            (replica_id, error_type)
            for replica_id, error_type, _ in error.attempts
        ] == [(0, "ShardFailedError"), (1, "ShardFailedError")]
        assert stats.replicas_healthy == 0
        assert stats.failed == 2

    def test_failover_to_real_replica_reconciles_byte_exactly(
        self, materialized_setup
    ):
        """After failover, the surviving replica's report must hold
        the serving tier's exact-accounting contract (``io == pin_io +
        Σ per-query io``) and its answers must match the scan oracle
        — failover never changes an answer or loses a byte."""
        hierarchy, column, catalog = materialized_setup
        workload = Workload(QUERIES)
        cut = select_cut_multi(catalog, workload).cut.node_ids
        executor = QueryExecutor(
            catalog, BufferPool(catalog.store)
        )
        real = BatchReplica(
            1, BatchExecutor(executor, max_workers=2), cut
        )
        bad = FailingReplica(0)
        config = GatewayConfig(
            max_batch_size=len(QUERIES),
            max_batch_delay_s=0.05,
            max_probe_attempts=0,
        )

        async def scenario():
            async with Gateway(
                [bad, real], config, close_replicas_on_exit=False
            ) as gateway:
                results = await asyncio.gather(
                    *(gateway.submit(query) for query in QUERIES)
                )
                return results, gateway.stats(), (
                    gateway.batch_records
                )

        results, stats, records = asyncio.run(scenario())
        for query, result in zip(QUERIES, results):
            assert result.answer == scan_answer(column, query)
        assert stats.failovers == 1
        assert stats.ok == len(QUERIES)
        for record in records:
            assert record.replica_id == 1
            assert record.report.reconciles()
        assert sum(record.size for record in records) == len(
            QUERIES
        )


class TestLifecycle:
    def test_aclose_strands_queued_requests_typed(self):
        release = threading.Event()
        replica = BlockingReplica(0, release)
        config = GatewayConfig(
            max_batch_size=1,
            max_batch_delay_s=0.0,
            max_inflight_batches=1,
        )

        async def scenario():
            gateway = Gateway([replica], config)
            await gateway.start()
            tasks = [
                asyncio.create_task(gateway.submit(query))
                for query in QUERIES[:3]
            ]
            await asyncio.sleep(0.1)
            release.set()
            await gateway.aclose()
            return await asyncio.gather(
                *tasks, return_exceptions=True
            )

        try:
            results = asyncio.run(scenario())
        finally:
            release.set()
        # In-flight work completes; anything still queued when the
        # gateway closed fails typed rather than hanging forever.
        assert all(
            isinstance(result, (ExecutionResult, GatewayClosedError))
            for result in results
        )
        answered = [
            result
            for result in results
            if isinstance(result, ExecutionResult)
        ]
        assert answered  # the dispatched batch was not discarded

    def test_close_replicas_on_exit(self):
        replica = StubReplica(0)

        async def scenario():
            async with Gateway([replica]):
                pass

        asyncio.run(scenario())
        assert replica.closed

    def test_double_close_is_idempotent(self):
        async def scenario():
            gateway = Gateway([StubReplica(0)])
            await gateway.start()
            await gateway.aclose()
            await gateway.aclose()

        asyncio.run(scenario())


class TestSloMetrics:
    def test_latency_and_queue_metrics_land_in_the_registry(self):
        async def scenario(gateway):
            async with gateway:
                await asyncio.gather(
                    *(gateway.submit(query) for query in QUERIES)
                )

        with collecting_metrics() as metrics:
            asyncio.run(scenario(Gateway([StubReplica(0)])))
        assert (
            metrics.counter("gateway_requests_total", status="ok")
            == len(QUERIES)
        )
        latency = metrics.histogram("gateway_request_seconds")
        assert latency.count == len(QUERIES)
        summary = latency.to_dict()
        assert 0 < summary["p50"] <= summary["p95"] <= summary["p99"]
        assert metrics.counter("gateway_batches_total") >= 1
        depth = metrics.histogram("gateway_queue_depth")
        assert depth.count == len(QUERIES)

    def test_stats_quantiles_are_ordered_without_a_registry(self):
        async def scenario():
            async with Gateway([StubReplica(0)]) as gateway:
                await asyncio.gather(
                    *(gateway.submit(query) for query in QUERIES)
                )
                return gateway.stats()

        stats = asyncio.run(scenario())
        assert (
            0
            < stats.latency_p50_s
            <= stats.latency_p95_s
            <= stats.latency_p99_s
        )
        payload = stats.to_dict()
        assert payload["ok"] == len(QUERIES)

    def test_trace_events_carry_no_wall_clock_data(self):
        async def scenario():
            async with Gateway(
                [FailingReplica(0), StubReplica(1)]
            ) as gateway:
                await gateway.submit(QUERIES[0])
                with pytest.raises(DeadlineExceededError):
                    await gateway.submit(
                        QUERIES[1], deadline_s=0.0001
                    )
                return gateway.events

        events = asyncio.run(scenario())
        assert events
        forbidden = {"seconds", "wall", "time", "latency"}
        for event in events:
            for key in event.attrs:
                assert not any(
                    word in key.lower() for word in forbidden
                ), f"wall-clock attr {key!r} in {event.kind}"


class TestTcp:
    def test_json_lines_roundtrip(self):
        async def scenario():
            async with Gateway([StubReplica(0)]) as gateway:
                server = await gateway.serve_tcp()
                host, port = server.sockets[0].getsockname()[:2]
                reader, writer = await asyncio.open_connection(
                    host, port
                )
                requests = [
                    {
                        "id": index,
                        "ranges": [
                            [spec.start, spec.end]
                            for spec in query.specs
                        ],
                        "positions": True,
                    }
                    for index, query in enumerate(QUERIES)
                ]
                for request in requests:
                    writer.write(
                        (json.dumps(request) + "\n").encode()
                    )
                await writer.drain()
                responses = {}
                for _ in requests:
                    line = await asyncio.wait_for(
                        reader.readline(), timeout=10.0
                    )
                    response = json.loads(line)
                    responses[response["id"]] = response
                writer.close()
                await writer.wait_closed()
                server.close()
                await server.wait_closed()
                return responses

        responses = asyncio.run(scenario())
        assert set(responses) == set(range(len(QUERIES)))
        for index, query in enumerate(QUERIES):
            response = responses[index]
            assert response["status"] == "ok"
            assert response["count"] == 1
            assert response["positions"] == [query.specs[0].start]

    def test_lines_beyond_asyncio_default_limit(self):
        """Request and response lines larger than asyncio's 64 KiB
        stream default must round-trip: the server listens with
        ``Gateway.TCP_LINE_LIMIT`` and clients expecting wide
        ``positions`` answers open their connection with the same
        limit (regression: the default limit made ``readline`` raise
        ``LimitOverrunError`` on either side)."""
        num_bits = 30_000

        class WideReplica(StubReplica):
            def run_batch(self, queries):
                report = super().run_batch(queries)
                outcomes = []
                for outcome in report.outcomes:
                    result = outcome.result
                    wide = WahBitmap.from_positions(
                        range(num_bits), num_bits
                    )
                    outcomes.append(
                        QueryOutcome(
                            index=outcome.index,
                            result=ExecutionResult(
                                query=result.query,
                                answer=wide,
                                io_bytes=0,
                                degraded_reads=(),
                            ),
                            io=_zero_io(),
                            events=(),
                            wall_seconds=0.0,
                        )
                    )
                return _StubReport(outcomes)

        async def scenario():
            async with Gateway([WideReplica(0)]) as gateway:
                server = await gateway.serve_tcp()
                host, port = server.sockets[0].getsockname()[:2]
                reader, writer = await asyncio.open_connection(
                    host, port, limit=Gateway.TCP_LINE_LIMIT
                )
                request = {
                    "id": 1,
                    "ranges": [[0, 5]],
                    "positions": True,
                    # Pad the request line itself past 64 KiB.
                    "label": "x" * (80 * 1024),
                }
                line = (json.dumps(request) + "\n").encode()
                assert len(line) > 64 * 1024
                writer.write(line)
                await writer.drain()
                response = json.loads(
                    await asyncio.wait_for(
                        reader.readline(), timeout=10.0
                    )
                )
                writer.close()
                await writer.wait_closed()
                server.close()
                await server.wait_closed()
                return response

        response = asyncio.run(scenario())
        assert response["status"] == "ok"
        assert response["count"] == num_bits
        assert response["positions"] == list(range(num_bits))

    def test_malformed_and_failing_requests_answer_typed(self):
        async def scenario():
            async with Gateway([StubReplica(0)]) as gateway:
                server = await gateway.serve_tcp()
                host, port = server.sockets[0].getsockname()[:2]
                reader, writer = await asyncio.open_connection(
                    host, port
                )
                lines = [
                    b"this is not json\n",
                    b'{"id": 7}\n',  # no ranges
                    b'{"id": 8, "ranges": [[0, 1]], '
                    b'"deadline_s": 0.0001}\n',
                ]
                for line in lines:
                    writer.write(line)
                await writer.drain()
                responses = []
                for _ in lines:
                    raw = await asyncio.wait_for(
                        reader.readline(), timeout=10.0
                    )
                    responses.append(json.loads(raw))
                writer.close()
                await writer.wait_closed()
                server.close()
                await server.wait_closed()
                return responses

        responses = asyncio.run(scenario())
        by_id = {
            response["id"]: response for response in responses
        }
        assert all(
            response["status"] == "error"
            for response in responses
        )
        assert by_id[None]["error"] == "JSONDecodeError"
        assert by_id[7]["error"] == "KeyError"
        assert by_id[8]["error"] == "DeadlineExceededError"
