"""Full-pipeline integration tests.

These walk the complete story of the paper on real bitmaps: build an
index over a column, select cuts with each algorithm, pin them under a
memory budget, execute the workload through the buffer pool, verify
answers against scans, and compare the recorded IO of good vs bad cuts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.executor import QueryExecutor, scan_answer
from repro.core.planner import CutSelector
from repro.core.workload_cost import WorkloadNodeStats
from repro.errors import BudgetExceededError
from repro.hierarchy.tree import Hierarchy
from repro.storage.cache import BufferPool
from repro.storage.catalog import (
    MaterializedNodeCatalog,
    node_file_name,
)
from repro.storage.costmodel import MB
from repro.workload.datagen import sample_column
from repro.workload.query import RangeQuery, Workload


@pytest.fixture(scope="module")
def pipeline():
    """Hierarchy + column + materialized catalog + workload."""
    hierarchy = Hierarchy.from_nested([[4, 4], [4, 4], [4, 4]])
    rng = np.random.default_rng(0)
    probabilities = rng.dirichlet(
        np.ones(hierarchy.num_leaves) * 3
    )
    column = sample_column(probabilities, 30_000, seed=1)
    catalog = MaterializedNodeCatalog(hierarchy, column)
    workload = Workload(
        [
            RangeQuery([(0, 11)]),
            RangeQuery([(6, 17)]),
            RangeQuery([(3, 20)]),
        ]
    )
    return hierarchy, column, catalog, workload


class TestUnconstrainedPipeline:
    def test_case2_cut_executes_correctly_with_caching(
        self, pipeline
    ):
        hierarchy, column, catalog, workload = pipeline
        selector = CutSelector(catalog)
        selection = selector.select(workload)
        pool = BufferPool(catalog.store)
        executor = QueryExecutor(catalog, pool)
        results, snapshot = executor.execute_workload(
            workload, selection.cut.node_ids
        )
        for result, query in zip(results, workload):
            assert result.answer == scan_answer(column, query)
        # Unbounded pool: nothing is fetched twice (Eq. 3 semantics).
        assert all(
            count == 1
            for count in snapshot.reads_by_name.values()
        )

    def test_predicted_case2_cost_matches_recorded_io(
        self, pipeline
    ):
        hierarchy, _column, catalog, workload = pipeline
        selector = CutSelector(catalog)
        selection = selector.select(workload)
        pool = BufferPool(catalog.store)
        executor = QueryExecutor(catalog, pool)
        _results, snapshot = executor.execute_workload(
            workload, selection.cut.node_ids
        )
        # Pinned members that no plan touches were still fetched by
        # pinning; the predictor charges only used members, so the
        # recorded IO can exceed the prediction by at most the unused
        # members' sizes.
        stats = selection.stats
        unused = sum(
            catalog.size_mb(member)
            for member in selection.cut.node_ids
            if not stats.node_read[member]
        )
        assert snapshot.mb_read == pytest.approx(
            selection.cost + unused, rel=1e-6
        )


class TestConstrainedPipeline:
    def test_selected_cut_fits_and_executes(self, pipeline):
        hierarchy, column, catalog, workload = pipeline
        selector = CutSelector(catalog)
        budget_mb = 0.6 * sum(
            catalog.size_mb(node_id)
            for node_id in hierarchy.internal_children(
                hierarchy.root_id
            )
        )
        selection = selector.select(
            workload, budget_mb=budget_mb, k=10
        )
        budget_bytes = int(budget_mb * MB) + 1
        pool = BufferPool(catalog.store, budget_bytes=budget_bytes)
        executor = QueryExecutor(catalog, pool)
        results, _snapshot = executor.execute_workload(
            workload, selection.cut.node_ids
        )
        for result, query in zip(results, workload):
            assert result.answer == scan_answer(column, query)
        assert pool.pinned_bytes <= budget_bytes

    def test_over_budget_pin_is_rejected(self, pipeline):
        hierarchy, _column, catalog, _workload = pipeline
        members = hierarchy.internal_children(hierarchy.root_id)
        total = sum(
            catalog.store.size_bytes(node_file_name(member))
            for member in members
        )
        pool = BufferPool(
            catalog.store, budget_bytes=total - 1
        )
        executor = QueryExecutor(catalog, pool)
        with pytest.raises(BudgetExceededError):
            executor.pin_cut(members)

    def test_good_cut_beats_bad_cut_in_recorded_io(self, pipeline):
        """The whole point of the paper, measured end to end."""
        hierarchy, _column, catalog, workload = pipeline
        stats = WorkloadNodeStats(catalog, workload)
        selector = CutSelector(catalog)
        selection = selector.select(workload)

        def run(members) -> float:
            pool = BufferPool(catalog.store)
            executor = QueryExecutor(catalog, pool)
            _results, snapshot = executor.execute_workload(
                workload, members, pin=bool(members)
            )
            return snapshot.mb_read

        good_io = run(selection.cut.node_ids)
        leaf_only_io = run(())
        assert good_io <= leaf_only_io + 1e-9


class TestSingleQueryPipeline:
    @pytest.mark.parametrize(
        "spec", [(0, 3), (2, 19), (0, 23), (10, 10)]
    )
    def test_hybrid_plan_round_trip(self, pipeline, spec):
        _hierarchy, column, catalog, _workload = pipeline
        query = RangeQuery([spec])
        selector = CutSelector(catalog)
        selection = selector.select(query)
        plan = selector.plan(query, selection)
        executor = QueryExecutor(
            catalog, BufferPool(catalog.store, budget_bytes=0)
        )
        result = executor.execute_plan(plan)
        assert result.answer == scan_answer(column, query)
        assert result.io_mb == pytest.approx(
            plan.predicted_cost_mb
        )
        assert plan.predicted_cost_mb == pytest.approx(
            selection.cost
        )
