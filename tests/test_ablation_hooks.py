"""Tests for the ablation hooks: forced pure strategies for resident
cut members, and the k-Cut replacement-rule toggle."""

from __future__ import annotations

import pytest

from repro.core.constrained import k_cut_selection
from repro.core.costs import StrategyLabel, cached_node_usage
from repro.core.multi import select_cut_multi
from repro.core.stats import QueryNodeStats
from repro.core.workload_cost import WorkloadNodeStats
from repro.hierarchy.enumeration import max_weight_complete_cut
from repro.workload.generator import fraction_workload
from repro.workload.query import RangeQuery


class TestForcedCachedUsage:
    def test_forced_labels(self, tpch_catalog100):
        query = RangeQuery([(2, 60)])
        stats = QueryNodeStats(tpch_catalog100, query)
        hierarchy = tpch_catalog100.hierarchy
        partial = next(
            node_id
            for node_id in hierarchy.internal_ids_postorder()
            if stats.classify(node_id).value == "partial"
        )
        _cost, label = cached_node_usage(stats, partial, "inclusive")
        assert label is StrategyLabel.INCLUSIVE
        _cost, label = cached_node_usage(stats, partial, "exclusive")
        assert label is StrategyLabel.EXCLUSIVE

    def test_unknown_strategy_rejected(self, tpch_catalog100):
        query = RangeQuery([(2, 60)])
        stats = QueryNodeStats(tpch_catalog100, query)
        hierarchy = tpch_catalog100.hierarchy
        partial = next(
            node_id
            for node_id in hierarchy.internal_ids_postorder()
            if stats.classify(node_id).value == "partial"
        )
        with pytest.raises(ValueError):
            cached_node_usage(stats, partial, "bogus")

    def test_hybrid_never_worse_than_pure_in_case2(
        self, tpch_catalog100
    ):
        workload = fraction_workload(100, 0.5, 15, seed=4)
        costs = {}
        for strategy in ("hybrid", "inclusive", "exclusive"):
            stats = WorkloadNodeStats(
                tpch_catalog100, workload, strategy=strategy
            )
            costs[strategy] = select_cut_multi(
                tpch_catalog100, workload, stats
            ).cost
        assert costs["hybrid"] <= costs["inclusive"] + 1e-9
        assert costs["hybrid"] <= costs["exclusive"] + 1e-9

    def test_workload_stats_strategy_validated(
        self, tpch_catalog100
    ):
        workload = fraction_workload(100, 0.5, 5, seed=0)
        with pytest.raises(ValueError):
            WorkloadNodeStats(
                tpch_catalog100, workload, strategy="bogus"
            )


class TestReplacementAblation:
    def test_replacement_never_hurts(self, tpch_catalog100):
        workload = fraction_workload(100, 0.5, 15, seed=5)
        stats = WorkloadNodeStats(tpch_catalog100, workload)
        max_size, _ = max_weight_complete_cut(
            tpch_catalog100.hierarchy,
            tpch_catalog100.size_array(),
        )
        for fraction in (0.1, 0.5, 0.9):
            budget = fraction * max_size
            with_replacement = k_cut_selection(
                tpch_catalog100, workload, budget, 10, stats
            ).cost
            without = k_cut_selection(
                tpch_catalog100,
                workload,
                budget,
                10,
                stats,
                enable_replacement=False,
            ).cost
            assert with_replacement <= without + 1e-9

    def test_disabled_replacement_still_respects_budget(
        self, tpch_catalog100
    ):
        workload = fraction_workload(100, 0.5, 15, seed=5)
        stats = WorkloadNodeStats(tpch_catalog100, workload)
        result = k_cut_selection(
            tpch_catalog100,
            workload,
            100.0,
            10,
            stats,
            enable_replacement=False,
        )
        used = sum(
            tpch_catalog100.size_mb(member)
            for member in result.cut.node_ids
        )
        assert used <= 100.0 + 1e-9
