"""Tests for exhaustive cut enumeration and counting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hierarchy.cuts import Cut
from repro.hierarchy.enumeration import (
    count_antichains,
    count_complete_cuts,
    iter_antichains,
    iter_complete_cuts,
    max_weight_complete_cut,
)
from repro.hierarchy.tree import Hierarchy, paper_hierarchy


@st.composite
def random_nested_spec(draw, max_depth=3):
    """A random small nested hierarchy spec."""
    if max_depth == 0 or draw(st.booleans()):
        return draw(st.integers(min_value=1, max_value=4))
    width = draw(st.integers(min_value=1, max_value=3))
    return [
        draw(random_nested_spec(max_depth=max_depth - 1))
        for _ in range(width)
    ]


class TestCompleteCuts:
    def test_counts_match_enumeration_small(self, small_hierarchy):
        cuts = list(iter_complete_cuts(small_hierarchy))
        assert len(cuts) == count_complete_cuts(small_hierarchy)
        assert len(set(cuts)) == len(cuts)

    def test_all_enumerated_cuts_are_valid_and_complete(
        self, small_hierarchy
    ):
        for members in iter_complete_cuts(small_hierarchy):
            cut = Cut(small_hierarchy, members, require_complete=True)
            assert cut.is_complete

    def test_root_cut_always_enumerated(self, small_hierarchy):
        cuts = set(iter_complete_cuts(small_hierarchy))
        assert frozenset((small_hierarchy.root_id,)) in cuts

    @given(random_nested_spec())
    @settings(max_examples=60, deadline=None)
    def test_count_matches_enumeration_random(self, spec):
        hierarchy = Hierarchy.from_nested(spec)
        enumerated = list(iter_complete_cuts(hierarchy))
        assert len(enumerated) == count_complete_cuts(hierarchy)
        assert len(set(enumerated)) == len(enumerated)


class TestAntichains:
    def test_counts_match_enumeration_small(self, small_hierarchy):
        antichains = list(iter_antichains(small_hierarchy))
        assert len(antichains) == count_antichains(small_hierarchy)
        assert frozenset() in antichains

    def test_every_antichain_is_a_valid_cut(self, small_hierarchy):
        for members in iter_antichains(small_hierarchy):
            Cut(small_hierarchy, members)  # raises if invalid

    def test_prune_removes_node_but_not_descendants(
        self, small_hierarchy
    ):
        root = small_hierarchy.root_id
        pruned = set(
            iter_antichains(
                small_hierarchy,
                prune=lambda node_id: node_id == root,
            )
        )
        assert frozenset((root,)) not in pruned
        assert any(pruned)  # still enumerates the rest

    @given(random_nested_spec())
    @settings(max_examples=60, deadline=None)
    def test_count_matches_enumeration_random(self, spec):
        hierarchy = Hierarchy.from_nested(spec)
        enumerated = list(iter_antichains(hierarchy))
        assert len(enumerated) == count_antichains(hierarchy)
        assert len(set(enumerated)) == len(enumerated)


class TestPaperCounts:
    @pytest.mark.parametrize(
        "num_leaves,expected",
        [(20, 154), (50, 296_381), (100, 1_185_922)],
    )
    def test_paper_incomplete_cut_counts(self, num_leaves, expected):
        """The §4.3 table reproduces exactly on the paper shapes."""
        assert (
            count_antichains(paper_hierarchy(num_leaves)) == expected
        )

    def test_20_leaf_count_by_enumeration(self):
        hierarchy = paper_hierarchy(20)
        assert sum(1 for _ in iter_antichains(hierarchy)) == 154


class TestMaxWeightCut:
    def test_matches_brute_force(self, small_hierarchy):
        weights = {
            node_id: float((node_id * 7) % 5 + 1)
            for node_id in range(small_hierarchy.num_nodes)
        }
        best_weight, best_members = max_weight_complete_cut(
            small_hierarchy, weights
        )
        brute = max(
            iter_complete_cuts(small_hierarchy),
            key=lambda members: sum(weights[m] for m in members),
        )
        assert best_weight == pytest.approx(
            sum(weights[m] for m in brute)
        )
        assert sum(weights[m] for m in best_members) == pytest.approx(
            best_weight
        )
        Cut(small_hierarchy, best_members, require_complete=True)

    @given(random_nested_spec(), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force_random(self, spec, seed):
        import numpy as np

        hierarchy = Hierarchy.from_nested(spec)
        rng = np.random.default_rng(seed)
        weights = {
            node_id: float(rng.uniform(0, 10))
            for node_id in range(hierarchy.num_nodes)
        }
        best_weight, _members = max_weight_complete_cut(
            hierarchy, weights
        )
        brute_best = max(
            sum(weights[m] for m in members)
            for members in iter_complete_cuts(hierarchy)
        )
        assert best_weight == pytest.approx(brute_best)
