"""Tests for the baseline cut searches and random samplers."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.core.baselines import (
    average_constrained_cut_cost,
    average_multi_cut_cost,
    average_single_cut_cost,
    exhaustive_constrained_optimum,
    exhaustive_multi_optimum,
    exhaustive_single_optimum,
    leaf_only_single_cost,
    sample_antichain,
    sample_complete_cut,
    worst_constrained_cut,
    worst_multi_cut,
    worst_single_cut,
)
from repro.core.workload_cost import WorkloadNodeStats, case3_cut_cost
from repro.hierarchy.cuts import Cut
from repro.hierarchy.enumeration import (
    count_antichains,
    count_complete_cuts,
    iter_antichains,
    max_weight_complete_cut,
)
from repro.workload.generator import fraction_workload
from repro.workload.query import RangeQuery


class TestSamplers:
    def test_complete_cut_sampler_produces_valid_cuts(
        self, small_hierarchy, rng
    ):
        for _ in range(100):
            members = sample_complete_cut(small_hierarchy, rng)
            cut = Cut(
                small_hierarchy, members, require_complete=True
            )
            assert cut.is_complete

    def test_complete_cut_sampler_is_roughly_uniform(
        self, small_hierarchy, rng
    ):
        total = count_complete_cuts(small_hierarchy)
        draws = 3000
        counts = Counter(
            sample_complete_cut(small_hierarchy, rng)
            for _ in range(draws)
        )
        assert len(counts) == total
        expected = draws / total
        for observed in counts.values():
            assert observed == pytest.approx(expected, rel=0.5)

    def test_antichain_sampler_produces_valid_antichains(
        self, small_hierarchy, rng
    ):
        for _ in range(100):
            members = sample_antichain(small_hierarchy, rng)
            Cut(small_hierarchy, members)  # validity check

    def test_antichain_sampler_covers_space(
        self, small_hierarchy, rng
    ):
        total = count_antichains(small_hierarchy)
        draws = 4000
        seen = {
            sample_antichain(small_hierarchy, rng)
            for _ in range(draws)
        }
        assert len(seen) > 0.8 * total

    def test_antichain_sampler_respects_prune(
        self, small_hierarchy, rng
    ):
        root = small_hierarchy.root_id
        for _ in range(100):
            members = sample_antichain(
                small_hierarchy,
                rng,
                prune=lambda node_id: node_id == root,
            )
            assert root not in members


class TestCase1Baselines:
    def test_ordering_of_lines(self, tpch_catalog100):
        """optimal <= average <= worst, and optimal <= leaf-only."""
        for spec in [(0, 9), (10, 59), (5, 94)]:
            query = RangeQuery([spec])
            optimum = exhaustive_single_optimum(
                tpch_catalog100, query
            ).cost
            average = average_single_cut_cost(
                tpch_catalog100, query, num_samples=30, seed=1
            )
            worst = worst_single_cut(tpch_catalog100, query).cost
            leaf_only = leaf_only_single_cost(
                tpch_catalog100, query
            )
            assert optimum <= average + 1e-9
            assert average <= worst + 1e-9
            assert optimum <= leaf_only + 1e-9

    def test_exhaustive_returns_complete_cut(self, tpch_catalog100):
        query = RangeQuery([(10, 59)])
        result = exhaustive_single_optimum(tpch_catalog100, query)
        Cut(
            tpch_catalog100.hierarchy,
            result.node_ids,
            require_complete=True,
        )


class TestCase2Baselines:
    def test_ordering_of_lines(self, tpch_catalog100):
        workload = fraction_workload(100, 0.5, 15, seed=2)
        stats = WorkloadNodeStats(tpch_catalog100, workload)
        optimum = exhaustive_multi_optimum(
            tpch_catalog100, workload, stats
        ).cost
        average = average_multi_cut_cost(
            tpch_catalog100,
            workload,
            num_samples=30,
            seed=1,
            stats=stats,
        )
        worst = worst_multi_cut(
            tpch_catalog100, workload, stats
        ).cost
        assert optimum <= average + 1e-9
        assert average <= worst + 1e-9


class TestCase3Baselines:
    @pytest.fixture
    def setup(self, tpch_catalog100):
        workload = fraction_workload(100, 0.5, 15, seed=3)
        stats = WorkloadNodeStats(tpch_catalog100, workload)
        max_size, _ = max_weight_complete_cut(
            tpch_catalog100.hierarchy,
            tpch_catalog100.size_array(),
        )
        return workload, stats, max_size

    @pytest.fixture
    def small_setup(self, paper_cost_model):
        """A 20-leaf instance whose 154 antichains enumerate fast."""
        from repro.hierarchy.tree import paper_hierarchy
        from repro.storage.catalog import ModeledNodeCatalog
        from repro.workload.datagen import (
            tpch_acctbal_leaf_probabilities,
        )

        hierarchy = paper_hierarchy(20)
        catalog = ModeledNodeCatalog(
            hierarchy,
            tpch_acctbal_leaf_probabilities(20),
            paper_cost_model,
            150_000_000,
        )
        workload = fraction_workload(20, 0.5, 15, seed=3)
        stats = WorkloadNodeStats(catalog, workload)
        max_size, _ = max_weight_complete_cut(
            hierarchy, catalog.size_array()
        )
        return catalog, workload, stats, max_size

    def test_exhaustive_matches_brute_force_enumeration(
        self, small_setup
    ):
        """The pruned DFS equals a full antichain enumeration."""
        catalog, workload, stats, max_size = small_setup
        sizes = catalog.size_array()
        for fraction in (0.1, 0.5, 0.9):
            budget = fraction * max_size
            brute = min(
                case3_cut_cost(stats, members)
                for members in iter_antichains(catalog.hierarchy)
                if sum(sizes[m] for m in members) <= budget
            )
            optimum = exhaustive_constrained_optimum(
                catalog, workload, budget, stats
            ).cost
            assert optimum == pytest.approx(brute)

    def test_worst_matches_brute_force_enumeration(
        self, small_setup
    ):
        catalog, workload, stats, max_size = small_setup
        sizes = catalog.size_array()
        for fraction in (0.1, 0.5, 0.9):
            budget = fraction * max_size
            brute = max(
                case3_cut_cost(stats, members, literal=True)
                for members in iter_antichains(catalog.hierarchy)
                if sum(sizes[m] for m in members) <= budget
            )
            worst = worst_constrained_cut(
                catalog, workload, budget, stats
            ).cost
            assert worst == pytest.approx(brute)

    def test_budget_respected_by_extremal_cuts(
        self, tpch_catalog100, setup
    ):
        workload, stats, max_size = setup
        sizes = tpch_catalog100.size_array()
        for fraction in (0.1, 0.5, 0.9):
            budget = fraction * max_size
            for result in (
                exhaustive_constrained_optimum(
                    tpch_catalog100, workload, budget, stats
                ),
                worst_constrained_cut(
                    tpch_catalog100, workload, budget, stats
                ),
            ):
                used = sum(sizes[m] for m in result.node_ids)
                assert used <= budget + 1e-9

    def test_ordering_of_lines(self, tpch_catalog100, setup):
        workload, stats, max_size = setup
        budget = 0.5 * max_size
        optimum = exhaustive_constrained_optimum(
            tpch_catalog100, workload, budget, stats
        ).cost
        average = average_constrained_cut_cost(
            tpch_catalog100,
            workload,
            budget,
            num_samples=30,
            seed=1,
            stats=stats,
        )
        worst = worst_constrained_cut(
            tpch_catalog100, workload, budget, stats
        ).cost
        assert optimum <= average + 1e-9
        assert average <= worst + 1e-9

    def test_more_memory_never_hurts_the_optimum(
        self, tpch_catalog100, setup
    ):
        workload, stats, max_size = setup
        costs = [
            exhaustive_constrained_optimum(
                tpch_catalog100,
                workload,
                fraction * max_size,
                stats,
            ).cost
            for fraction in (0.1, 0.3, 0.5, 0.7, 0.9)
        ]
        assert costs == sorted(costs, reverse=True)
