"""Tests for the optional disk-latency model."""

from __future__ import annotations

import pytest

from repro.storage.accounting import IOAccountant
from repro.storage.costmodel import MB
from repro.storage.diskmodel import DiskProfile, estimate_seconds


class TestDiskProfile:
    def test_transfer_time_scales_with_bytes(self):
        profile = DiskProfile("test", seek_ms=0.0,
                              bandwidth_mb_per_s=100.0)
        assert profile.read_seconds(int(100 * MB)) == pytest.approx(
            1.0
        )
        assert profile.read_seconds(int(50 * MB)) == pytest.approx(
            0.5
        )

    def test_seek_time_scales_with_read_count(self):
        profile = DiskProfile("test", seek_ms=10.0,
                              bandwidth_mb_per_s=1e9)
        assert profile.read_seconds(0, num_reads=5) == pytest.approx(
            0.05
        )

    def test_presets_are_ordered_sensibly(self):
        nbytes = int(64 * MB)
        sata = DiskProfile.sata_7200().read_seconds(nbytes, 10)
        nvme = DiskProfile.nvme().read_seconds(nbytes, 10)
        assert nvme < sata

    def test_validation(self):
        with pytest.raises(ValueError):
            DiskProfile("bad", seek_ms=-1, bandwidth_mb_per_s=1)
        with pytest.raises(ValueError):
            DiskProfile("bad", seek_ms=1, bandwidth_mb_per_s=0)
        profile = DiskProfile.nvme()
        with pytest.raises(ValueError):
            profile.read_seconds(-1)
        with pytest.raises(ValueError):
            profile.read_seconds(1, num_reads=-1)

    def test_estimate_from_snapshot(self):
        accountant = IOAccountant()
        accountant.record_read("a", int(10 * MB))
        accountant.record_read("b", int(20 * MB))
        snapshot = accountant.snapshot()
        profile = DiskProfile("test", seek_ms=100.0,
                              bandwidth_mb_per_s=30.0)
        expected = 30.0 / 30.0 + 2 * 0.1
        assert estimate_seconds(snapshot, profile) == pytest.approx(
            expected
        )
