"""Durable index lifecycle: manifest format, atomic builds, recovery.

The invariants under test:

* a serialized :class:`Manifest` survives a byte-exact round trip and
  any corruption of it is detected by the self-checksum;
* a :class:`DurableBitmapStore` commits builds atomically (logical
  names resolve only through the manifest), garbage-collects orphans,
  refuses unmanifested directories, and heals the quarantine crash
  window on reopen;
* the plain :class:`BitmapFileStore` write path is atomic (tmp sibling
  + rename) and raises typed errors, never raw ``OSError``.
"""

from __future__ import annotations

import os
import zlib

import numpy as np
import pytest

from repro.errors import (
    FileMissingError,
    ManifestError,
    StorageError,
    StorageWriteError,
)
from repro.hierarchy.tree import Hierarchy
from repro.storage.catalog import MaterializedNodeCatalog, node_file_name
from repro.storage.filestore import BitmapFileStore
from repro.storage.manifest import (
    MANIFEST_FORMAT_VERSION,
    MANIFEST_NAME,
    DurableBitmapStore,
    Manifest,
    ManifestEntry,
    hierarchy_fingerprint,
    physical_file_name,
)


# ----------------------------------------------------------------------
# Manifest serialization
# ----------------------------------------------------------------------
def _sample_manifest() -> Manifest:
    entries = {
        "node_0.wah": ManifestEntry.for_payload(
            "node_0.wah", physical_file_name(3, "node_0.wah"), b"abc"
        ),
        "node_1.wah": ManifestEntry.for_payload(
            "node_1.wah", physical_file_name(3, "node_1.wah"), b"defg"
        ),
    }
    return Manifest(
        generation=3,
        entries=entries,
        hierarchy_fingerprint="f" * 64,
        num_rows=123,
    )


def test_manifest_round_trip():
    manifest = _sample_manifest()
    parsed = Manifest.from_bytes(manifest.to_bytes())
    assert parsed == manifest
    assert parsed.entries["node_1.wah"].size == 4
    assert parsed.entries["node_1.wah"].crc32 == zlib.crc32(b"defg")


def test_manifest_every_corrupted_byte_is_detected():
    data = bytearray(_sample_manifest().to_bytes())
    for offset in range(len(data)):
        corrupted = bytearray(data)
        corrupted[offset] ^= 0x01
        with pytest.raises(ManifestError):
            Manifest.from_bytes(bytes(corrupted))


def test_manifest_truncation_detected():
    data = _sample_manifest().to_bytes()
    for cut in (0, 1, len(data) // 2, len(data) - 1):
        with pytest.raises(ManifestError):
            Manifest.from_bytes(data[:cut])


def test_manifest_rejects_unknown_format_version():
    manifest = _sample_manifest()
    bumped = Manifest(
        generation=manifest.generation,
        entries=manifest.entries,
        format_version=MANIFEST_FORMAT_VERSION + 1,
    )
    with pytest.raises(ManifestError, match="format version"):
        Manifest.from_bytes(bumped.to_bytes())


def test_manifest_entry_matches_is_exact():
    entry = ManifestEntry.for_payload("a", "g00000001-a", b"payload")
    assert entry.matches(b"payload")
    assert not entry.matches(b"payloae")
    assert not entry.matches(b"payload!")
    assert not entry.matches(b"")


def test_manifest_entry_from_dict_validates():
    with pytest.raises(ManifestError):
        ManifestEntry.from_dict("a", {"physical": "x"})
    with pytest.raises(ManifestError):
        ManifestEntry.from_dict(
            "a",
            {"physical": "x", "size": -1, "crc32": 0, "codec": "wah"},
        )


def test_entry_records_wah_codec():
    from repro.bitmap.serialization import serialize_wah
    from repro.bitmap.wah import WahBitmap

    payload = serialize_wah(WahBitmap.from_positions([1, 5], 100))
    entry = ManifestEntry.for_payload("n", "g-n", payload)
    assert entry.codec == "wah"
    raw = ManifestEntry.for_payload("n", "g-n", b"not a frame")
    assert raw.codec == "raw"


# ----------------------------------------------------------------------
# DurableBitmapStore lifecycle
# ----------------------------------------------------------------------
def test_empty_directory_initializes_generation_zero(tmp_path):
    store = DurableBitmapStore(tmp_path)
    assert store.generation == 0
    assert list(store.names()) == []
    assert (tmp_path / MANIFEST_NAME).exists()


def test_reopen_empty_store(tmp_path):
    DurableBitmapStore(tmp_path)
    store = DurableBitmapStore(tmp_path)
    assert store.generation == 0


def test_requires_directory():
    with pytest.raises(ValueError):
        DurableBitmapStore(None)  # type: ignore[arg-type]


def test_refuses_unmanifested_directory(tmp_path):
    (tmp_path / "stray.wah").write_bytes(b"who wrote this?")
    with pytest.raises(ManifestError, match="unmanifested"):
        DurableBitmapStore(tmp_path)


def test_build_commit_reopen_round_trip(tmp_path):
    store = DurableBitmapStore(tmp_path)
    with store.begin_build(num_rows=10) as build:
        build.add("node_0.wah", b"alpha")
        build.add("node_1.wah", b"beta")
    assert store.generation == 1
    reopened = DurableBitmapStore(tmp_path)
    assert reopened.generation == 1
    assert list(reopened.names()) == ["node_0.wah", "node_1.wah"]
    assert reopened.read("node_0.wah") == b"alpha"
    assert reopened.size_bytes("node_1.wah") == 4
    assert reopened.manifest.num_rows == 10


def test_rebuild_replaces_and_gcs_old_generation(tmp_path):
    store = DurableBitmapStore(tmp_path)
    with store.begin_build() as build:
        build.add("node_0.wah", b"old")
    old_physical = store.manifest.entry("node_0.wah").physical
    with store.begin_build() as build:
        build.add("node_0.wah", b"new")
    assert store.read("node_0.wah") == b"new"
    assert not (tmp_path / old_physical).exists()


def test_aborted_build_is_invisible(tmp_path):
    store = DurableBitmapStore(tmp_path)
    with pytest.raises(RuntimeError):
        with store.begin_build() as build:
            build.add("node_0.wah", b"doomed")
            raise RuntimeError("boom")
    assert store.generation == 0
    assert not store.exists("node_0.wah")
    reopened = DurableBitmapStore(tmp_path)
    assert list(reopened.names()) == []


def test_single_write_is_a_one_file_generation(tmp_path):
    store = DurableBitmapStore(tmp_path)
    store.write("a.wah", b"one")
    store.write("b.wah", b"two")
    assert store.generation == 2
    assert store.read("a.wah") == b"one"  # carried forward
    assert store.read("b.wah") == b"two"


def test_delete_commits_generation_without_entry(tmp_path):
    store = DurableBitmapStore(tmp_path)
    store.write("a.wah", b"one")
    store.delete("a.wah")
    assert not store.exists("a.wah")
    with pytest.raises(FileMissingError):
        store.read("a.wah")
    reopened = DurableBitmapStore(tmp_path)
    assert not reopened.exists("a.wah")


def test_stray_file_is_not_served_and_is_gcd(tmp_path):
    store = DurableBitmapStore(tmp_path)
    store.write("a.wah", b"real")
    (tmp_path / "ghost.wah").write_bytes(b"ghost")
    assert not store.exists("ghost.wah")
    with pytest.raises(FileMissingError):
        store.read("ghost.wah")
    DurableBitmapStore(tmp_path)  # reopen GCs the orphan
    assert not (tmp_path / "ghost.wah").exists()


def test_open_detects_missing_physical_file(tmp_path):
    store = DurableBitmapStore(tmp_path)
    store.write("a.wah", b"data")
    physical = store.manifest.entry("a.wah").physical
    (tmp_path / physical).unlink()
    with pytest.raises(ManifestError, match="missing"):
        DurableBitmapStore(tmp_path)
    # verify_files=False opens for scrub/repair
    damaged = DurableBitmapStore(tmp_path, verify_files=False)
    assert damaged.exists("a.wah")


def test_open_detects_size_mismatch(tmp_path):
    store = DurableBitmapStore(tmp_path)
    store.write("a.wah", b"data")
    physical = store.manifest.entry("a.wah").physical
    (tmp_path / physical).write_bytes(b"data plus junk")
    with pytest.raises(ManifestError, match="bytes on disk"):
        DurableBitmapStore(tmp_path)


def test_quarantine_drops_entry_and_parks_file(tmp_path):
    store = DurableBitmapStore(tmp_path)
    store.write("a.wah", b"bad bytes")
    physical = store.quarantine("a.wah")
    assert not store.exists("a.wah")
    assert store.quarantined_names() == [physical]
    assert (tmp_path / ".quarantine" / physical).exists()
    reopened = DurableBitmapStore(tmp_path)
    assert not reopened.exists("a.wah")
    assert reopened.quarantined_names() == [physical]


def test_quarantine_crash_window_heals_on_reopen(tmp_path):
    # Simulate a crash after the file moved to .quarantine/ but
    # before the manifest commit: entry present, physical parked.
    store = DurableBitmapStore(tmp_path)
    store.write("a.wah", b"bad")
    entry = store.manifest.entry("a.wah")
    qdir = tmp_path / ".quarantine"
    qdir.mkdir()
    os.replace(tmp_path / entry.physical, qdir / entry.physical)
    healed = DurableBitmapStore(tmp_path)
    assert not healed.exists("a.wah")
    assert healed.quarantined_names() == [entry.physical]


def test_hierarchy_fingerprint_stable_and_sensitive():
    h1 = Hierarchy.from_nested([[2, 2], [2]])
    h2 = Hierarchy.from_nested([[2, 2], [2]])
    h3 = Hierarchy.from_nested([[3, 2], [2]])
    assert hierarchy_fingerprint(h1) == hierarchy_fingerprint(h2)
    assert hierarchy_fingerprint(h1) != hierarchy_fingerprint(h3)


def test_verify_hierarchy_mismatch(tmp_path):
    h = Hierarchy.from_nested([[2, 2], [2]])
    other = Hierarchy.from_nested([[3, 2], [2]])
    store = DurableBitmapStore(tmp_path)
    with store.begin_build(
        hierarchy_fingerprint=hierarchy_fingerprint(h)
    ) as build:
        build.add("node_0.wah", b"x")
    store.verify_hierarchy(h)  # matching: fine
    with pytest.raises(ManifestError, match="different hierarchy"):
        store.verify_hierarchy(other)


def test_catalog_build_commits_one_generation_with_fingerprint(
    tmp_path,
):
    rng = np.random.default_rng(11)
    h = Hierarchy.from_nested([[2, 2], [3, 2], [3]])
    column = rng.integers(0, h.num_leaves, size=2000)
    store = DurableBitmapStore(tmp_path)
    MaterializedNodeCatalog(h, column, store)
    assert store.generation == 1  # one commit for the whole build
    assert store.manifest.hierarchy_fingerprint == (
        hierarchy_fingerprint(h)
    )
    assert store.manifest.num_rows == 2000
    assert len(store.manifest.entries) == h.num_nodes


def test_catalog_from_store_reopens_without_rebuilding(tmp_path):
    rng = np.random.default_rng(12)
    h = Hierarchy.from_nested([[2, 2], [3, 2], [3]])
    column = rng.integers(0, h.num_leaves, size=2000)
    store = DurableBitmapStore(tmp_path)
    built = MaterializedNodeCatalog(h, column, store)
    generation = store.generation

    reopened_store = DurableBitmapStore(tmp_path)
    reopened = MaterializedNodeCatalog.from_store(h, reopened_store)
    assert reopened_store.generation == generation  # no writes
    assert reopened.num_rows == built.num_rows
    for node in h:
        assert reopened.density(node.node_id) == pytest.approx(
            built.density(node.node_id)
        )
        assert reopened.size_mb(node.node_id) == pytest.approx(
            built.size_mb(node.node_id)
        )


def test_catalog_from_store_rejects_wrong_hierarchy(tmp_path):
    rng = np.random.default_rng(13)
    h = Hierarchy.from_nested([[2, 2], [2]])
    other = Hierarchy.from_nested([[3, 3], [2]])
    store = DurableBitmapStore(tmp_path)
    MaterializedNodeCatalog(
        h, rng.integers(0, h.num_leaves, size=500), store
    )
    with pytest.raises(ManifestError):
        MaterializedNodeCatalog.from_store(other, store)


def test_catalog_from_store_requires_every_node(tmp_path):
    rng = np.random.default_rng(14)
    h = Hierarchy.from_nested([[2, 2], [2]])
    store = DurableBitmapStore(tmp_path)
    MaterializedNodeCatalog(
        h, rng.integers(0, h.num_leaves, size=500), store
    )
    store.delete(node_file_name(h.root_id))
    with pytest.raises(StorageError, match="no bitmap"):
        MaterializedNodeCatalog.from_store(h, store)


# ----------------------------------------------------------------------
# Plain-filestore atomic write path (satellite bugfix)
# ----------------------------------------------------------------------
def test_filestore_write_leaves_no_tmp_sibling(tmp_path):
    store = BitmapFileStore(tmp_path)
    store.write("a.wah", b"payload")
    assert sorted(p.name for p in tmp_path.iterdir()) == ["a.wah"]


def test_filestore_names_hides_staging_files(tmp_path):
    store = BitmapFileStore(tmp_path)
    store.write("a.wah", b"payload")
    (tmp_path / ".b.wah.tmp").write_bytes(b"torn leftovers")
    assert list(store.names()) == ["a.wah"]


def test_filestore_write_error_is_typed(tmp_path):
    # A directory squatting on the target name makes the commit
    # rename fail with an OSError (works even when running as root,
    # unlike a read-only directory).
    store = BitmapFileStore(tmp_path)
    (tmp_path / "a.wah").mkdir()
    with pytest.raises(StorageWriteError):
        store.write("a.wah", b"payload")


def test_filestore_delete_error_is_typed(tmp_path):
    store = BitmapFileStore(tmp_path)
    (tmp_path / "a.wah").mkdir()
    with pytest.raises(StorageWriteError):
        store.delete("a.wah")


def test_filestore_delete_missing_still_filemissing(tmp_path):
    store = BitmapFileStore(tmp_path)
    with pytest.raises(FileMissingError):
        store.delete("ghost.wah")
