"""Tests for the gateway's self-healing edge.

Replica lifecycle (suspect → probation → re-admission or death),
hedged requests, circuit breaking, and priority-aware admission are
exercised with deterministic stub replicas and tight supervisor
timings.  The real-backend paths (:class:`~repro.serve.BatchReplica`
health probes, sharded fleet re-admission) live in
``tests/chaos/test_chaos_selfheal.py``.

``pytest-asyncio`` is not a dependency: every test is a sync function
driving its scenario with ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import json
import random
import threading
import time

import pytest

from repro.core.executor import QueryExecutor
from repro.core.multi import select_cut_multi
from repro.errors import (
    AllReplicasFailedError,
    DeadlineExceededError,
    GatewayClosedError,
    OverloadedError,
    QueryFailedError,
    ShardFailedError,
)
from repro.obs import collecting_metrics
from repro.serve import (
    BatchExecutor,
    BatchReplica,
    Gateway,
    GatewayConfig,
    ReplicaState,
    RollingBreaker,
)
from repro.serve.lifecycle import probe_backoff
from repro.storage.cache import BufferPool
from repro.workload.query import Workload

from .test_gateway import (
    QUERIES,
    BlockingReplica,
    StubReplica,
    _expected_answer,
    _StubReport,
)

pytestmark = [pytest.mark.gateway, pytest.mark.resilience]

#: Supervisor timings tight enough that re-admission completes within
#: a test's polling budget, deterministic (zero jitter).
FAST_HEAL = dict(
    supervisor_interval_s=0.01,
    probe_backoff_base_s=0.01,
    probe_backoff_max_s=0.05,
    probe_jitter=0.0,
)

#: Attribute-name fragments forbidden in trace events (determinism:
#: no wall-clock data may leak into the trace stream).
WALL_CLOCK_FRAGMENTS = ("seconds", "wall", "time", "latency")


class FlakyReplica(StubReplica):
    """Fails its first ``fail_batches`` batches, then serves cleanly.

    The base :meth:`~repro.serve.Replica.revive` succeeds, so the
    supervisor's canary probe passes once the failure budget is spent
    — the shape of a replica recovering from a transient fault.
    """

    def __init__(self, replica_id: int, fail_batches: int = 1):
        super().__init__(replica_id)
        self.fail_batches = fail_batches
        self.failures_injected = 0

    def run_batch(self, queries):
        if self.failures_injected < self.fail_batches:
            self.failures_injected += 1
            raise ShardFailedError(
                self.replica_id, "injected transient failure"
            )
        return super().run_batch(queries)


class UnrevivableReplica(StubReplica):
    """Fails every batch and every revival attempt."""

    def run_batch(self, queries):
        raise ShardFailedError(self.replica_id, "permanently broken")

    def revive(self) -> bool:
        return False


class ErrorOutcomeReplica(StubReplica):
    """Serves at fleet level but fails every individual query —
    the per-query failure mode the circuit breaker watches."""

    def run_batch(self, queries):
        self.batches_run += 1
        report = super(ErrorOutcomeReplica, self).run_batch(queries)
        outcomes = []
        for outcome in report.outcomes:
            outcomes.append(
                type(outcome)(
                    index=outcome.index,
                    result=None,
                    io=outcome.io,
                    events=outcome.events,
                    wall_seconds=outcome.wall_seconds,
                    error=QueryFailedError(
                        outcome.index,
                        "ValueError",
                        "injected query failure",
                        shard_id=None,
                    ),
                )
            )
        return _StubReport(outcomes)


async def _poll(predicate, timeout_s: float = 10.0):
    """Await ``predicate()`` turning truthy (supervisor runs in the
    same loop, so polling must yield)."""
    deadline = asyncio.get_running_loop().time() + timeout_s
    while True:
        if predicate():
            return
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition never became true")
        await asyncio.sleep(0.01)


def _assert_no_wall_clock_attrs(events) -> None:
    for event in events:
        for key in event.attrs:
            assert not any(
                fragment in key.lower()
                for fragment in WALL_CLOCK_FRAGMENTS
            ), f"wall-clock attr {key!r} in {event.kind}"


class TestLifecycleUnits:
    def test_rolling_breaker_opens_and_resets(self):
        breaker = RollingBreaker(window=4, failures=2)
        assert not breaker.open
        breaker.record(True)
        breaker.record(False)
        assert not breaker.open
        assert breaker.record(False) is True
        assert breaker.open
        assert breaker.failure_count == 2
        # Old outcomes age out of the window.
        for _ in range(4):
            breaker.record(True)
        assert not breaker.open
        breaker.record(False)
        breaker.record(False)
        breaker.reset()
        assert not breaker.open
        assert breaker.failure_count == 0

    def test_breaker_validation(self):
        with pytest.raises(ValueError):
            RollingBreaker(window=0, failures=1)
        with pytest.raises(ValueError):
            RollingBreaker(window=4, failures=0)
        with pytest.raises(ValueError):
            RollingBreaker(window=2, failures=3)

    def test_probe_backoff_doubles_and_caps(self):
        rng = random.Random(0)
        delays = [
            probe_backoff(attempt, 0.05, 0.4, 0.0, rng)
            for attempt in range(6)
        ]
        assert delays == [0.05, 0.1, 0.2, 0.4, 0.4, 0.4]

    def test_probe_backoff_jitter_is_seeded(self):
        a = [
            probe_backoff(i, 0.05, 2.0, 0.5, random.Random(7))
            for i in range(4)
        ]
        b = [
            probe_backoff(i, 0.05, 2.0, 0.5, random.Random(7))
            for i in range(4)
        ]
        assert a == b
        base = [
            probe_backoff(i, 0.05, 2.0, 0.0, random.Random(7))
            for i in range(4)
        ]
        for jittered, plain in zip(a, base):
            assert plain <= jittered <= plain * 1.5

    def test_replica_close_is_idempotent_and_race_safe(self):
        closes = []

        class CountingReplica(StubReplica):
            def _do_close(self):
                closes.append(threading.get_ident())
                time.sleep(0.01)

        replica = CountingReplica(0)
        threads = [
            threading.Thread(target=replica.close) for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(closes) == 1
        assert replica.closed
        replica.close()
        assert len(closes) == 1


class TestReAdmission:
    def test_flaky_replica_is_probed_and_readmitted(self):
        """A replica that fails once is suspected, probed with a
        canary checked bit-identical against a healthy peer, and
        returned to ACTIVE rotation."""
        flaky = FlakyReplica(0, fail_batches=1)
        healthy = StubReplica(1)
        config = GatewayConfig(
            max_batch_size=len(QUERIES),
            max_batch_delay_s=0.01,
            max_probe_attempts=6,
            **FAST_HEAL,
        )

        async def scenario():
            with collecting_metrics() as metrics:
                async with Gateway(
                    [flaky, healthy], config
                ) as gateway:
                    results = await asyncio.gather(
                        *(gateway.submit(q) for q in QUERIES)
                    )
                    await _poll(
                        lambda: gateway.replica_states()
                        == {0: "active", 1: "active"}
                        and gateway.stats().readmissions >= 1
                    )
                    # The re-admitted replica serves real traffic.
                    await asyncio.gather(
                        *(gateway.submit(q) for q in QUERIES)
                    )
                    await _poll(lambda: flaky.batches_run >= 1)
                    return (
                        results,
                        gateway.stats(),
                        gateway.events,
                        metrics,
                    )

        results, stats, events, counters = asyncio.run(scenario())
        for query, result in zip(QUERIES, results):
            assert result.answer.words == _expected_answer(query).words
        assert stats.failovers >= 1
        assert stats.readmissions >= 1
        assert stats.replicas_healthy == 2
        assert stats.replicas_dead == 0
        kinds = [event.kind for event in events]
        assert "gateway.readmit" in kinds
        transitions = [
            event.attrs["to"]
            for event in events
            if event.kind == "gateway.replica_state"
        ]
        # The full lifecycle walk, in order.
        assert transitions[:3] == [
            "suspected",
            "probation",
            "active",
        ]
        _assert_no_wall_clock_attrs(events)
        assert counters.counter("gateway_readmissions_total") >= 1
        assert (
            counters.counter(
                "gateway_probes_total", outcome="readmitted"
            )
            >= 1
        )

    def test_unrevivable_replica_exhausts_probes_and_dies(self):
        broken = UnrevivableReplica(0)
        healthy = StubReplica(1)
        config = GatewayConfig(
            max_batch_size=len(QUERIES),
            max_batch_delay_s=0.01,
            max_probe_attempts=2,
            **FAST_HEAL,
        )

        async def scenario():
            with collecting_metrics() as metrics:
                async with Gateway(
                    [broken, healthy], config
                ) as gateway:
                    results = await asyncio.gather(
                        *(gateway.submit(q) for q in QUERIES)
                    )
                    await _poll(
                        lambda: gateway.replica_states()[0] == "dead"
                    )
                    return (
                        results,
                        gateway.stats(),
                        gateway.events,
                        metrics,
                    )

        results, stats, events, counters = asyncio.run(scenario())
        for query, result in zip(QUERIES, results):
            assert result.answer.words == _expected_answer(query).words
        assert stats.replicas_dead == 1
        assert stats.replicas_healthy == 1
        assert stats.readmissions == 0
        reasons = [
            event.attrs["reason"]
            for event in events
            if event.kind == "gateway.replica_state"
            and event.attrs["to"] == "dead"
        ]
        assert reasons == ["probe budget exhausted"]
        assert (
            counters.counter("gateway_probes_total", outcome="retry")
            + counters.counter("gateway_probes_total", outcome="dead")
            >= 2
        )
        assert (
            counters.counter("gateway_probes_total", outcome="dead")
            == 1
        )

    def test_probe_attempts_zero_retires_forever(self):
        """``max_probe_attempts=0`` preserves the retire-forever
        contract: no supervisor runs, a failed replica goes straight
        to DEAD."""
        flaky = FlakyReplica(0, fail_batches=1)
        healthy = StubReplica(1)
        config = GatewayConfig(
            max_batch_size=len(QUERIES),
            max_batch_delay_s=0.01,
            max_probe_attempts=0,
        )

        async def scenario():
            async with Gateway([flaky, healthy], config) as gateway:
                await asyncio.gather(
                    *(gateway.submit(q) for q in QUERIES)
                )
                await asyncio.sleep(0.2)
                return gateway.replica_states(), gateway.stats()

        states, stats = asyncio.run(scenario())
        assert states == {0: "dead", 1: "active"}
        assert stats.readmissions == 0


class TestCircuitBreaker:
    def test_query_error_streak_opens_breaker_and_suspects(self):
        """A replica that keeps answering batches but fails every
        query trips its rolling breaker and leaves rotation — fleet
        failover alone would never catch it."""
        sick = ErrorOutcomeReplica(0)
        config = GatewayConfig(
            max_batch_size=len(QUERIES),
            max_batch_delay_s=0.01,
            breaker_window=8,
            breaker_failures=4,
            max_probe_attempts=0,
        )

        async def scenario():
            with collecting_metrics() as metrics:
                async with Gateway([sick], config) as gateway:
                    results = await asyncio.gather(
                        *(gateway.submit(q) for q in QUERIES),
                        return_exceptions=True,
                    )
                    await _poll(
                        lambda: gateway.replica_states()[0] == "dead"
                    )
                    return (
                        results,
                        gateway.stats(),
                        gateway.events,
                        metrics,
                    )

        results, stats, events, counters = asyncio.run(scenario())
        assert all(
            isinstance(result, QueryFailedError)
            for result in results
        )
        assert stats.breaker_opens == 1
        assert stats.replicas_dead == 1
        opens = [
            event
            for event in events
            if event.kind == "gateway.breaker_open"
        ]
        assert len(opens) == 1
        assert opens[0].attrs["failures"] >= 4
        assert opens[0].attrs["window"] == 8
        assert counters.counter("gateway_breaker_opens_total") == 1
        _assert_no_wall_clock_attrs(events)


class TestHedging:
    def test_hedge_fires_and_first_answer_wins(self):
        """A slow primary past the hedge delay triggers a second
        dispatch; the fast hedge's bit-identical answer is delivered
        and the slow side's work is recorded discarded — never billed
        to the batch."""
        slow = StubReplica(0, delay_s=0.5)
        fast = StubReplica(1)
        config = GatewayConfig(
            max_batch_size=len(QUERIES),
            max_batch_delay_s=0.01,
            hedge_delay_s=0.05,
            max_probe_attempts=0,
        )

        async def scenario():
            with collecting_metrics() as metrics:
                async with Gateway([slow, fast], config) as gateway:
                    results = await asyncio.gather(
                        *(gateway.submit(q) for q in QUERIES)
                    )
                    await _poll(
                        lambda: len(gateway.hedge_records) == 2
                    )
                    return (
                        results,
                        gateway.stats(),
                        gateway.batch_records,
                        gateway.hedge_records,
                        gateway.events,
                        metrics,
                    )

        results, stats, records, hedges, events, counters = (
            asyncio.run(scenario())
        )
        for query, result in zip(QUERIES, results):
            assert result.answer.words == _expected_answer(query).words
        assert stats.hedges == 1
        assert stats.hedges_won == 1
        # No replica failed: hedging is latency-driven, not failover.
        assert stats.failovers == 0
        assert stats.replicas_healthy == 2
        hedged = [record for record in records if record.hedged]
        assert len(hedged) == 1
        assert hedged[0].replica_id == 1
        assert hedged[0].hedge_replica_id == 1
        assert hedged[0].report.reconciles()
        winner = next(record for record in hedges if record.used)
        loser = next(record for record in hedges if not record.used)
        assert winner.role == "hedge"
        assert winner.replica_id == 1
        assert winner.batch_id == hedged[0].batch_id
        assert loser.role == "primary"
        assert loser.replica_id == 0
        assert loser.discarded
        assert loser.error is None
        # The discarded side completed: its work is accounted here,
        # not on the batch record.
        assert loser.report is not None
        assert loser.report is not hedged[0].report
        assert (
            counters.counter("gateway_hedges_total", outcome="fired")
            == 1
        )
        assert (
            counters.counter("gateway_hedges_total", outcome="won")
            == 1
        )
        # The *hedge* won here, so no hedge was "lost" — the
        # discarded side was the primary.
        assert (
            counters.counter("gateway_hedges_total", outcome="lost")
            == 0
        )
        hedge_events = [
            event for event in events if event.kind == "gateway.hedge"
        ]
        assert len(hedge_events) == 1
        assert hedge_events[0].attrs["primary"] == 0
        _assert_no_wall_clock_attrs(events)

    def test_primary_wins_when_it_finishes_first(self):
        """The primary finishing during the race beats the hedge —
        ties break toward the primary, and the hedge side is reaped
        as the discarded loser."""
        primary = StubReplica(0, delay_s=0.1)
        hedge = StubReplica(1, delay_s=0.6)
        config = GatewayConfig(
            max_batch_size=len(QUERIES),
            max_batch_delay_s=0.01,
            hedge_delay_s=0.02,
            max_probe_attempts=0,
        )

        async def scenario():
            with collecting_metrics() as metrics:
                async with Gateway(
                    [primary, hedge], config
                ) as gateway:
                    results = await asyncio.gather(
                        *(gateway.submit(q) for q in QUERIES)
                    )
                    await _poll(
                        lambda: len(gateway.hedge_records) == 2
                    )
                    return (
                        results,
                        gateway.stats(),
                        gateway.hedge_records,
                        metrics,
                    )

        results, stats, hedges, counters = asyncio.run(scenario())
        for query, result in zip(QUERIES, results):
            assert result.answer.words == _expected_answer(query).words
        assert stats.hedges == 1
        assert stats.hedges_won == 0
        winner = next(record for record in hedges if record.used)
        assert winner.role == "primary"
        assert winner.replica_id == 0
        loser = next(record for record in hedges if not record.used)
        assert loser.role == "hedge"
        assert (
            counters.counter("gateway_hedges_total", outcome="lost")
            == 1
        )

    def test_hedge_delay_derives_from_latency_quantile(self):
        """Without a fixed override the hedge delay comes from the
        gateway's own latency reservoir — disabled until the
        reservoir has seen ``hedge_min_samples`` requests."""
        config = GatewayConfig(
            hedge_quantile=0.75, hedge_min_samples=4
        )
        gateway = Gateway([StubReplica(0)], config)
        assert gateway._hedge_delay() is None
        for value in (0.010, 0.020, 0.030):
            gateway._latencies.observe(value)
        assert gateway._hedge_delay() is None
        gateway._latencies.observe(0.040)
        assert gateway._hedge_delay() == pytest.approx(0.030)

    def test_fixed_delay_overrides_quantile(self):
        config = GatewayConfig(
            hedge_quantile=0.75,
            hedge_delay_s=0.123,
            hedge_min_samples=1,
        )
        gateway = Gateway([StubReplica(0)], config)
        assert gateway._hedge_delay() == 0.123

    def test_hedging_disabled_by_default(self):
        gateway = Gateway([StubReplica(0)])
        gateway._latencies.observe(0.01)
        assert gateway._hedge_delay() is None


class TestPriorityAdmission:
    def test_high_priority_evicts_newest_low_under_overload(self):
        """With the queue full of low-priority work, an incoming high
        request evicts the newest queued low request (typed
        ``kind="evicted"``) instead of being refused — high-priority
        traffic sheds strictly less than low."""
        release = threading.Event()
        replica = BlockingReplica(0, release)
        config = GatewayConfig(
            max_batch_size=1,
            max_batch_delay_s=0.001,
            max_queue_depth=3,
            max_inflight_batches=1,
        )

        async def scenario():
            async with Gateway([replica], config) as gateway:
                # The first two lows are absorbed by the blocked
                # batch and the batcher's held slot...
                head = []
                for query in QUERIES[:2]:
                    head.append(
                        asyncio.create_task(
                            gateway.submit(query, priority="low")
                        )
                    )
                    await asyncio.sleep(0.05)
                # ...then the queue itself fills with lows.
                fillers = [
                    asyncio.create_task(
                        gateway.submit(query, priority="low")
                    )
                    for query in QUERIES[2:5]
                ]
                await asyncio.sleep(0.1)
                assert gateway.queue_depth == 3
                # Equal priority never evicts: a further low is
                # refused at the door.
                with pytest.raises(OverloadedError) as refused:
                    await gateway.submit(QUERIES[5], priority="low")
                # A high evicts the newest queued low.
                high = asyncio.create_task(
                    gateway.submit(QUERIES[5], priority="high")
                )
                await asyncio.sleep(0.1)
                evicted = [
                    task
                    for task in fillers
                    if task.done() and task.exception() is not None
                ]
                release.set()
                survivors = [
                    task for task in fillers if task not in evicted
                ]
                results = await asyncio.gather(
                    high, *head, *survivors
                )
                return (
                    refused.value,
                    [task.exception() for task in evicted],
                    results,
                    gateway.stats(),
                    gateway.events,
                )

        try:
            refused, evictions, results, stats, events = asyncio.run(
                scenario()
            )
        finally:
            release.set()
        assert refused.kind == "refused"
        assert refused.priority == "low"
        assert len(evictions) == 1
        assert isinstance(evictions[0], OverloadedError)
        assert evictions[0].kind == "evicted"
        assert evictions[0].priority == "low"
        # Everything still queued (including the high) completes:
        # two head requests, two surviving fillers, and the high.
        assert len(results) == 5
        assert stats.shed == 2
        assert stats.shed_by_priority == {"low": 2}
        assert stats.shed_by_priority.get("high", 0) == 0
        sheds = [
            event for event in events if event.kind == "gateway.shed"
        ]
        assert sorted(
            event.attrs["shed"] for event in sheds
        ) == ["evicted", "refused"]
        assert all(
            event.attrs["priority"] == "low" for event in sheds
        )

    def test_priority_metrics_are_labelled_per_class(self):
        config = GatewayConfig(
            max_batch_size=len(QUERIES), max_batch_delay_s=0.01
        )

        async def scenario():
            with collecting_metrics() as metrics:
                async with Gateway(
                    [StubReplica(0)], config
                ) as gateway:
                    await asyncio.gather(
                        gateway.submit(QUERIES[0], priority="high"),
                        gateway.submit(QUERIES[1], priority="low"),
                        gateway.submit(QUERIES[2]),
                    )
                return metrics

        counters = asyncio.run(scenario())
        assert (
            counters.counter(
                "gateway_priority_requests_total",
                priority="high",
                status="ok",
            )
            == 1
        )
        assert (
            counters.counter(
                "gateway_priority_requests_total",
                priority="low",
                status="ok",
            )
            == 1
        )
        # The default class picks up unlabelled submissions.
        assert (
            counters.counter(
                "gateway_priority_requests_total",
                priority="normal",
                status="ok",
            )
            == 1
        )

    def test_unknown_priority_is_rejected(self):
        async def scenario():
            async with Gateway([StubReplica(0)]) as gateway:
                with pytest.raises(ValueError):
                    await gateway.submit(
                        QUERIES[0], priority="platinum"
                    )

        asyncio.run(scenario())

    def test_priority_config_validation(self):
        with pytest.raises(ValueError):
            GatewayConfig(priority_classes=())
        with pytest.raises(ValueError):
            GatewayConfig(
                priority_classes=("high", "high", "low")
            )
        with pytest.raises(ValueError):
            GatewayConfig(default_priority="platinum")
        with pytest.raises(ValueError):
            GatewayConfig(hedge_quantile=1.5)
        with pytest.raises(ValueError):
            GatewayConfig(hedge_delay_s=-0.1)
        with pytest.raises(ValueError):
            GatewayConfig(breaker_failures=0)
        with pytest.raises(ValueError):
            GatewayConfig(breaker_window=2, breaker_failures=3)
        with pytest.raises(ValueError):
            GatewayConfig(max_probe_attempts=-1)
        with pytest.raises(ValueError):
            GatewayConfig(supervisor_interval_s=0.0)


class TestBatchReplicaHealth:
    def test_healthy_probe_checks_the_root_bitmap(self):
        """``BatchExecutor.healthy`` is a real probe: it verifies the
        hierarchy's root bitmap file is readable in the store, so a
        replica whose files vanished reports unhealthy instead of
        failing mid-batch."""
        from repro.hierarchy.tree import Hierarchy
        from repro.storage.catalog import MaterializedNodeCatalog
        from repro.workload import (
            sample_column,
            tpch_acctbal_leaf_probabilities,
        )

        # A private catalog: this test deletes a bitmap file, so it
        # must never share the session-scoped fixture's store.
        hierarchy = Hierarchy.from_nested([[3, 3], [2, 4], [4]])
        probabilities = tpch_acctbal_leaf_probabilities(
            hierarchy.num_leaves, seed=3
        )
        column = sample_column(
            probabilities, num_rows=4_000, seed=11
        )
        catalog = MaterializedNodeCatalog(hierarchy, column)
        executor = QueryExecutor(catalog, BufferPool(catalog.store))
        cut = select_cut_multi(
            catalog, Workload(QUERIES)
        ).cut.node_ids
        replica = BatchReplica(
            0, BatchExecutor(executor, max_workers=2), cut
        )
        assert replica.is_healthy()
        catalog.store.delete(
            catalog.file_name(hierarchy.root_id)
        )
        assert not replica.is_healthy()
        replica.close()
        assert replica.closed
        assert not replica.is_healthy()


class TestTcpErrorPayloads:
    def test_all_replicas_failed_detail_round_trips(self):
        """A fleet-wide failure reaches the TCP client as a typed
        payload carrying every attempt — not a bare message string."""
        from tests.test_gateway import FailingReplica

        config = GatewayConfig(
            max_batch_size=1,
            max_batch_delay_s=0.001,
            max_probe_attempts=0,
        )

        async def scenario():
            async with Gateway(
                [FailingReplica(0), FailingReplica(1)], config
            ) as gateway:
                server = await gateway.serve_tcp()
                host, port = server.sockets[0].getsockname()[:2]
                reader, writer = await asyncio.open_connection(
                    host, port
                )
                writer.write(
                    (
                        json.dumps(
                            {"id": 1, "ranges": [[0, 2]]}
                        )
                        + "\n"
                    ).encode()
                )
                await writer.drain()
                line = await asyncio.wait_for(
                    reader.readline(), timeout=10.0
                )
                writer.close()
                await writer.wait_closed()
                server.close()
                await server.wait_closed()
                return json.loads(line)

        response = asyncio.run(scenario())
        assert response["status"] == "error"
        assert response["error"] == "AllReplicasFailedError"
        detail = response["detail"]
        assert detail["retryable"] is False
        assert len(detail["attempts"]) == 2
        replica_ids = sorted(
            attempt[0] for attempt in detail["attempts"]
        )
        assert replica_ids == [0, 1]
        assert all(
            attempt[1] == "ShardFailedError"
            for attempt in detail["attempts"]
        )

    def test_deadline_detail_round_trips_with_phase(self):
        release = threading.Event()
        replica = BlockingReplica(0, release)
        config = GatewayConfig(
            max_batch_size=1,
            max_batch_delay_s=0.001,
            max_inflight_batches=1,
        )

        async def scenario():
            async with Gateway([replica], config) as gateway:
                server = await gateway.serve_tcp()
                host, port = server.sockets[0].getsockname()[:2]
                reader, writer = await asyncio.open_connection(
                    host, port
                )
                # The first request occupies the blocked batch (its
                # answer arrives past the deadline: ``inflight``);
                # the second expires behind it (``queued``).  Nothing
                # answers until the batch is released, so hold it
                # well past both deadlines first.
                for request_id in (1, 2):
                    writer.write(
                        (
                            json.dumps(
                                {
                                    "id": request_id,
                                    "ranges": [[0, 2]],
                                    "deadline_s": 0.05,
                                }
                            )
                            + "\n"
                        ).encode()
                    )
                await writer.drain()
                await asyncio.sleep(0.2)
                release.set()
                lines = [
                    await asyncio.wait_for(
                        reader.readline(), timeout=10.0
                    )
                    for _ in range(2)
                ]
                writer.close()
                await writer.wait_closed()
                server.close()
                await server.wait_closed()
                return [json.loads(line) for line in lines]

        try:
            responses = asyncio.run(scenario())
        finally:
            release.set()
        assert len(responses) == 2
        for response in responses:
            assert response["status"] == "error"
            assert response["error"] == "DeadlineExceededError"
            detail = response["detail"]
            assert detail["deadline_s"] == pytest.approx(0.05)
            assert detail["retryable"] is True
        phases = {
            response["detail"]["phase"] for response in responses
        }
        assert phases == {"queued", "inflight"}

    def test_error_payloads_serialize_each_type(self):
        """Every typed gateway error maps to a distinct, fully
        JSON-serializable detail payload."""
        build = Gateway._error_response
        overloaded = build(
            7,
            OverloadedError(3, 3, priority="low", kind="evicted"),
        )
        payload = json.loads(json.dumps(overloaded))
        assert payload["error"] == "OverloadedError"
        assert payload["detail"] == {
            "kind": "evicted",
            "priority": "low",
            "queue_depth": 3,
            "max_queue_depth": 3,
            "retryable": True,
        }
        deadline = build(
            8, DeadlineExceededError(0.25, "inflight")
        )
        assert deadline["detail"]["phase"] == "inflight"
        failed = build(
            9,
            AllReplicasFailedError(
                [(0, "ShardFailedError", "boom")]
            ),
        )
        assert failed["detail"]["attempts"] == [
            [0, "ShardFailedError", "boom"]
        ]
        query_failed = build(
            10, QueryFailedError(2, "ValueError", "bad", shard_id=1)
        )
        assert query_failed["detail"] == {
            "query_index": 2,
            "error_type": "ValueError",
            "shard_id": 1,
            "retryable": False,
        }
        closed = build(11, GatewayClosedError())
        assert closed["detail"] == {"retryable": False}
        # Unknown errors still answer, just without a detail block.
        plain = build(12, RuntimeError("misc"))
        assert plain["status"] == "error"
        assert "detail" not in plain


class TestReplicaStateEnum:
    def test_states_are_strings(self):
        assert ReplicaState.ACTIVE.value == "active"
        assert ReplicaState.SUSPECTED.value == "suspected"
        assert ReplicaState.PROBATION.value == "probation"
        assert ReplicaState.DEAD.value == "dead"
        assert ReplicaState.ACTIVE == "active"
