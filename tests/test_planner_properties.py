"""Hypothesis properties tying the three Case-1 planners to execution.

Two invariants from the paper, checked over *random* hierarchies and
queries rather than the fixed fixtures:

* H-CS is optimal (§3.1.3): its predicted cost never exceeds the best
  of I-CS and E-CS on the same instance.
* The planner's predicted cost is the truth: executing the plan on an
  uncached in-memory store incurs exactly the predicted bytes.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.executor import QueryExecutor, scan_answer
from repro.core.opnodes import build_query_plan
from repro.core.single import (
    exclusive_cut,
    hybrid_cut,
    inclusive_cut,
)
from repro.hierarchy.tree import Hierarchy
from repro.storage.catalog import (
    MaterializedNodeCatalog,
    ModeledNodeCatalog,
)
from repro.storage.cache import BufferPool
from repro.storage.costmodel import MB, CostModel
from repro.workload.query import RangeQuery

# Nested specs: an int is a leaf-parent with that many leaf children, a
# list is an internal node.  Depth <= 3, fanout <= 3 keeps hierarchies
# small enough for many examples while still varying shape.
_LEAF_GROUP = st.integers(min_value=1, max_value=3)
_LEVEL2 = st.lists(_LEAF_GROUP, min_size=1, max_size=3)
_SPEC = st.lists(
    st.one_of(_LEAF_GROUP, _LEVEL2), min_size=2, max_size=3
)


@st.composite
def hierarchy_query_seed(draw):
    spec = draw(_SPEC)
    hierarchy = Hierarchy.from_nested(spec)
    num_leaves = hierarchy.num_leaves
    start = draw(st.integers(0, num_leaves - 1))
    end = draw(st.integers(start, num_leaves - 1))
    specs = [(start, end)]
    if draw(st.booleans()) and end + 2 <= num_leaves - 1:
        second_start = draw(st.integers(end + 2, num_leaves - 1))
        second_end = draw(
            st.integers(second_start, num_leaves - 1)
        )
        specs.append((second_start, second_end))
    seed = draw(st.integers(0, 2**16))
    return hierarchy, RangeQuery(specs), seed


@given(case=hierarchy_query_seed())
@settings(max_examples=60, deadline=None)
def test_hybrid_cost_never_beaten_by_pure_strategies(case):
    hierarchy, query, seed = case
    rng = np.random.default_rng(seed)
    weights = rng.dirichlet(np.ones(hierarchy.num_leaves))
    catalog = ModeledNodeCatalog(
        hierarchy,
        weights,
        CostModel.paper_2014(),
        num_rows=1_000_000,
    )
    hybrid = hybrid_cut(catalog, query).cost
    inclusive = inclusive_cut(catalog, query).cost
    exclusive = exclusive_cut(catalog, query).cost
    assert hybrid <= min(inclusive, exclusive) + 1e-9


@given(case=hierarchy_query_seed())
@settings(max_examples=25, deadline=None)
def test_measured_io_equals_predicted_on_uncached_store(case):
    hierarchy, query, seed = case
    rng = np.random.default_rng(seed)
    column = rng.integers(
        0, hierarchy.num_leaves, size=2_000, dtype=np.int64
    )
    catalog = MaterializedNodeCatalog(hierarchy, column)
    selection = hybrid_cut(catalog, query)
    plan = build_query_plan(
        catalog,
        query,
        selection.cut.node_ids,
        labels=selection.labels,
    )
    # budget 0 + no spare LRU: nothing is ever cached, so every
    # operation node is read exactly once from storage.
    pool = BufferPool(catalog.store, budget_bytes=0)
    executor = QueryExecutor(catalog, pool=pool)
    result = executor.execute_plan(plan)
    assert result.answer == scan_answer(column, query)
    assert abs(result.io_bytes / MB - plan.predicted_cost_mb) < 1e-9
    # And the plan's own prediction agrees with the per-node catalog.
    expected = sum(
        catalog.read_cost_mb(node_id)
        for node_id in plan.operation_node_ids
    )
    assert abs(plan.predicted_cost_mb - expected) < 1e-9
