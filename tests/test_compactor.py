"""Compactor / BackgroundCompactor: folding deltas into a new base.

The contract: folding is purely physical — queries answer identically
before and after, the folded store is byte-identical to a from-scratch
rebuild over the full column, superseded files are GC'd, and a bounded
run folds only the oldest generations.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.core.executor import QueryExecutor
from repro.errors import StorageError
from repro.hierarchy.tree import Hierarchy
from repro.storage.accounting import IOAccountant
from repro.storage.cache import BufferPool
from repro.storage.catalog import MaterializedNodeCatalog
from repro.storage.compactor import BackgroundCompactor, Compactor
from repro.storage.delta import DeltaAppender
from repro.storage.filestore import BitmapFileStore
from repro.storage.manifest import DurableBitmapStore
from repro.storage.scrub import Scrubber
from repro.workload.query import RangeQuery


@pytest.fixture
def hierarchy() -> Hierarchy:
    return Hierarchy.from_nested([[2, 2], [3, 2], [3]])


def _build_with_deltas(
    tmp_path, hierarchy, base_rows=400, batches=(13, 27, 8), seed=3
):
    rng = np.random.default_rng(seed)
    column = rng.integers(
        0, hierarchy.num_leaves, size=base_rows, dtype=np.int64
    )
    store = DurableBitmapStore(tmp_path / "store")
    MaterializedNodeCatalog(hierarchy, column, store)
    appender = DeltaAppender(store, hierarchy)
    parts = [column]
    for size in batches:
        batch = rng.integers(
            0, hierarchy.num_leaves, size=size, dtype=np.int64
        )
        appender.append(batch)
        parts.append(batch)
    return store, np.concatenate(parts)


def _fingerprint(store):
    """Logical store content: {name: (size, crc32 of payload)}."""
    return {
        name: (len(store.read(name)), zlib.crc32(store.read(name)))
        for name in store.names()
    }


def test_full_fold_matches_from_scratch_rebuild(tmp_path, hierarchy):
    store, full = _build_with_deltas(tmp_path, hierarchy)
    report = Compactor(store).run()

    assert report.did_work
    assert report.folded_seqs == (1, 2, 3)
    assert report.folded_rows == full.size - 400
    assert store.delta_manifests == ()
    assert store.manifest.num_rows == full.size
    # seq counter survives the fold: later appends can never reuse a
    # folded generation's file names.
    assert store.manifest.delta_seq == 3

    oracle_store = DurableBitmapStore(tmp_path / "oracle")
    MaterializedNodeCatalog(hierarchy, full, oracle_store)
    assert _fingerprint(store) == _fingerprint(oracle_store)


def test_fold_gcs_superseded_files(tmp_path, hierarchy):
    store, _ = _build_with_deltas(tmp_path, hierarchy)
    directory = tmp_path / "store"
    before = {p.name for p in directory.iterdir() if p.is_file()}
    assert any("delta_" in name for name in before)

    Compactor(store).run()

    live = {
        store.manifest.entry(name).physical
        for name in store.names()
    } | {"MANIFEST"}
    on_disk = {p.name for p in directory.iterdir() if p.is_file()}
    assert on_disk == live
    assert not any("delta_" in name for name in on_disk)


def test_bounded_fold_takes_oldest_generations(tmp_path, hierarchy):
    store, full = _build_with_deltas(tmp_path, hierarchy)
    report = Compactor(store, max_deltas_per_run=2).run()
    assert report.folded_seqs == (1, 2)
    assert [d.seq for d in store.delta_manifests] == [3]
    assert store.total_num_rows == full.size

    # the second bounded run drains the rest
    report = Compactor(store, max_deltas_per_run=2).run()
    assert report.folded_seqs == (3,)
    assert store.delta_manifests == ()


def test_noop_when_no_deltas(tmp_path, hierarchy):
    store, _ = _build_with_deltas(tmp_path, hierarchy, batches=())
    generation = store.generation
    report = Compactor(store).run()
    assert not report.did_work
    assert report.generation_after == generation
    assert store.generation == generation


def test_queries_identical_across_the_fold(tmp_path, hierarchy):
    store, full = _build_with_deltas(tmp_path, hierarchy)
    catalog = MaterializedNodeCatalog.from_store(hierarchy, store)
    executor = QueryExecutor(catalog, BufferPool(store))
    last = hierarchy.num_leaves - 1
    queries = [RangeQuery([(0, 3)]), RangeQuery([(2, last)])]
    before = [executor.execute_query(q).answer for q in queries]

    Compactor(store).run()

    # Same executor, same pool: the stale-base guard must notice the
    # cached pre-fold bases and re-read the folded generation.
    after = [executor.execute_query(q).answer for q in queries]
    assert all(a == b for a, b in zip(after, before))


def test_non_node_entries_are_carried_forward(tmp_path, hierarchy):
    store, _ = _build_with_deltas(tmp_path, hierarchy)
    store.write("meta.bin", b"sidecar payload")
    physical_before = store.manifest.entry("meta.bin").physical

    Compactor(store).run()

    assert store.read("meta.bin") == b"sidecar payload"
    # carried forward untouched: same physical file, not rewritten
    assert store.manifest.entry("meta.bin").physical == (
        physical_before
    )


def test_compaction_bytes_are_charged_to_accountant(
    tmp_path, hierarchy
):
    store, _ = _build_with_deltas(tmp_path, hierarchy)
    accountant = IOAccountant()
    report = Compactor(store, accountant=accountant).run()
    assert report.bytes_read > 0
    assert accountant.bytes_read == report.bytes_read


def test_fold_refuses_corrupt_payloads(tmp_path, hierarchy):
    store, _ = _build_with_deltas(tmp_path, hierarchy)
    name = sorted(store.manifest.entries)[0]
    path = tmp_path / "store" / store.manifest.entry(name).physical
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0x10
    path.write_bytes(bytes(data))

    generation = store.generation
    with pytest.raises(StorageError, match="run scrub first"):
        Compactor(store).run()
    # nothing committed; deltas still live
    assert store.generation == generation
    assert len(store.delta_manifests) == 3


def test_scrub_clean_after_fold(tmp_path, hierarchy):
    store, _ = _build_with_deltas(tmp_path, hierarchy)
    Compactor(store).run()
    report = Scrubber(store, hierarchy).verify()
    assert report.is_clean


def test_compactor_rejects_non_durable_store():
    with pytest.raises(StorageError, match="DurableBitmapStore"):
        Compactor(BitmapFileStore())


def test_compactor_rejects_non_positive_bound(tmp_path, hierarchy):
    store, _ = _build_with_deltas(
        tmp_path, hierarchy, batches=(5,)
    )
    with pytest.raises(ValueError, match="positive"):
        Compactor(store, max_deltas_per_run=0)


def test_background_compactor_folds_at_threshold(tmp_path, hierarchy):
    store, full = _build_with_deltas(
        tmp_path, hierarchy, batches=(5, 7, 9)
    )
    with BackgroundCompactor(
        store, min_deltas=3, interval_seconds=0.05
    ) as compactor:
        compactor.trigger()
        deadline = 50
        while store.delta_manifests and deadline:
            import time

            time.sleep(0.05)
            deadline -= 1
    assert store.delta_manifests == ()
    assert store.manifest.num_rows == full.size
    assert compactor.errors == []
    assert len(compactor.reports) == 1
    assert compactor.reports[0].folded_seqs == (1, 2, 3)


def test_background_compactor_waits_below_threshold(
    tmp_path, hierarchy
):
    store, _ = _build_with_deltas(tmp_path, hierarchy, batches=(5,))
    with BackgroundCompactor(
        store, min_deltas=4, interval_seconds=0.01
    ) as compactor:
        compactor.trigger()
        import time

        time.sleep(0.2)
    assert len(store.delta_manifests) == 1  # not due yet
    assert compactor.reports == []


def test_background_compactor_records_errors_and_survives(
    tmp_path, hierarchy
):
    store, _ = _build_with_deltas(tmp_path, hierarchy, batches=(5,))
    name = sorted(store.manifest.entries)[0]
    path = tmp_path / "store" / store.manifest.entry(name).physical
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0x10
    path.write_bytes(bytes(data))

    with BackgroundCompactor(
        store, min_deltas=1, interval_seconds=0.02
    ) as compactor:
        compactor.trigger()
        import time

        deadline = 100
        while not compactor.errors and deadline:
            time.sleep(0.02)
            deadline -= 1
    assert compactor.errors  # recorded, thread not killed
    assert len(store.delta_manifests) == 1  # nothing committed
