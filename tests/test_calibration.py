"""Tests for WAH-based cost-model calibration (Fig. 1 methodology)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage.calibration import (
    calibrate_cost_model,
    measure_wah_sizes,
    random_bitmap,
)
from repro.storage.costmodel import MB

NUM_BITS = 200_000


class TestRandomBitmap:
    def test_density_is_exact(self, rng):
        bitmap = random_bitmap(0.05, NUM_BITS, rng)
        assert bitmap.count() == int(round(0.05 * NUM_BITS))

    def test_bounds_checked(self, rng):
        with pytest.raises(ValueError):
            random_bitmap(1.5, 100, rng)


class TestMeasurement:
    def test_sizes_grow_with_density_in_sparse_region(self):
        sizes = measure_wah_sizes(
            NUM_BITS, densities=(0.001, 0.005, 0.01), seed=0
        )
        assert sizes[0.001] < sizes[0.005] < sizes[0.01]

    def test_complement_trick_applied(self):
        sizes = measure_wah_sizes(
            NUM_BITS, densities=(0.01, 0.99), seed=0
        )
        assert sizes[0.99] == pytest.approx(sizes[0.01], rel=0.15)

    def test_measurement_is_deterministic(self):
        first = measure_wah_sizes(NUM_BITS, densities=(0.01,), seed=5)
        second = measure_wah_sizes(NUM_BITS, densities=(0.01,), seed=5)
        assert first == second

    def test_dense_random_bitmap_near_incompressible(self):
        sizes = measure_wah_sizes(NUM_BITS, densities=(0.5,), seed=0)
        # A density-0.5 random bitmap should compress poorly: close to
        # one 32-bit word per 31 bits.
        incompressible_mb = (NUM_BITS / 31) * 4 / MB
        assert sizes[0.5] == pytest.approx(incompressible_mb, rel=0.1)


class TestCalibration:
    def test_fitted_model_tracks_measurements(self):
        model, sizes = calibrate_cost_model(NUM_BITS)
        for density, measured in sizes.items():
            effective = min(density, 1 - density)
            if effective <= 0:
                continue
            predicted = model.read_cost_mb(density)
            assert predicted == pytest.approx(
                measured, rel=0.35, abs=0.002
            )

    def test_sparse_region_fit_is_tight(self):
        model, sizes = calibrate_cost_model(NUM_BITS)
        for density in (0.001, 0.004, 0.008):
            assert model.read_cost_mb(density) == pytest.approx(
                sizes[density], rel=0.1
            )
