"""Hypothesis property: ingest is equivalent to rebuilding.

For *any* hierarchy shape and *any* split of a column into an initial
build plus K append batches, merge-on-read answers must be
word-identical (canonical WAH, not merely the same positions) to a
from-scratch rebuild over the full column — and after compaction the
store's logical content must be byte-identical to the rebuild's.
"""

from __future__ import annotations

import shutil
import tempfile
import zlib
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.executor import QueryExecutor, scan_answer
from repro.hierarchy.tree import Hierarchy
from repro.storage.cache import BufferPool
from repro.storage.catalog import MaterializedNodeCatalog
from repro.storage.compactor import Compactor
from repro.storage.delta import DeltaAppender
from repro.storage.manifest import DurableBitmapStore
from repro.storage.scrub import Scrubber
from repro.workload.query import RangeQuery

_nested_specs = st.recursive(
    st.integers(min_value=1, max_value=3),
    lambda children: st.lists(children, min_size=2, max_size=3),
    max_leaves=5,
).filter(lambda spec: isinstance(spec, list))


@st.composite
def _ingest_cases(draw):
    spec = draw(_nested_specs)
    hierarchy = Hierarchy.from_nested(spec)
    leaves = hierarchy.num_leaves
    seed = draw(st.integers(min_value=0, max_value=2**16))
    initial_rows = draw(st.integers(min_value=1, max_value=200))
    batch_sizes = draw(
        st.lists(
            st.integers(min_value=1, max_value=60),
            min_size=1,
            max_size=4,
        )
    )
    rng = np.random.default_rng(seed)
    column = rng.integers(
        0, leaves, size=initial_rows, dtype=np.int64
    )
    batches = [
        rng.integers(0, leaves, size=size, dtype=np.int64)
        for size in batch_sizes
    ]
    return spec, column, batches


def _fingerprint(store):
    """Logical content of a store: {name: (size, crc32)}."""
    return {
        name: (len(store.read(name)), zlib.crc32(store.read(name)))
        for name in store.names()
    }


def _queries(hierarchy):
    last = hierarchy.num_leaves - 1
    queries = [RangeQuery([(0, last)])]
    if last > 0:
        queries.append(RangeQuery([(0, last // 2)]))
        queries.append(RangeQuery([(last // 2, last)]))
    return queries


@given(case=_ingest_cases())
@settings(max_examples=25, deadline=None)
def test_any_split_merges_and_compacts_identically(case):
    spec, column, batches = case
    hierarchy = Hierarchy.from_nested(spec)
    full = np.concatenate([column, *batches])
    tmp = tempfile.mkdtemp(prefix="ingest-prop-")
    try:
        tmp_path = Path(tmp)
        store = DurableBitmapStore(tmp_path / "store")
        MaterializedNodeCatalog(hierarchy, column, store)
        appender = DeltaAppender(store, hierarchy)
        for batch in batches:
            appender.append(batch)

        oracle_store = DurableBitmapStore(tmp_path / "oracle")
        oracle_catalog = MaterializedNodeCatalog(
            hierarchy, full, oracle_store
        )
        oracle = QueryExecutor(
            oracle_catalog, BufferPool(oracle_store)
        )

        catalog = MaterializedNodeCatalog.from_store(
            hierarchy, store
        )
        executor = QueryExecutor(catalog, BufferPool(store))
        cuts = [(), tuple(hierarchy.node(hierarchy.root_id).children)]
        for query in _queries(hierarchy):
            expected = scan_answer(full, query)
            for cut in cuts:
                merged = executor.execute_query(
                    query, cut_node_ids=cut
                ).answer
                # canonical-WAH word identity against the rebuild
                assert merged == oracle.execute_query(
                    query, cut_node_ids=cut
                ).answer
                assert (
                    merged.to_positions().tolist()
                    == expected.to_positions().tolist()
                )

        # Folding the deltas makes the store byte-identical to the
        # rebuild (logical names; physical generations differ).
        Compactor(store).run()
        assert _fingerprint(store) == _fingerprint(oracle_store)
        assert Scrubber(store, hierarchy).verify().is_clean

        # And the answers survive the fold through the same executor.
        for query in _queries(hierarchy):
            expected = scan_answer(full, query)
            answer = executor.execute_query(query).answer
            assert (
                answer.to_positions().tolist()
                == expected.to_positions().tolist()
            )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
