"""Scrubber: detection, child-union repair, quarantine, IO accounting.

The load-bearing property (hypothesis, mirroring PAPER §2.1): for *any*
hierarchy and *any* single corrupted internal node, repair restores the
byte-identical canonical WAH payload and charges exactly the sum of the
child file sizes as repair IO.
"""

from __future__ import annotations

import shutil
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FileMissingError
from repro.hierarchy.tree import Hierarchy
from repro.obs import TraceCollector, collecting_metrics, recording
from repro.storage.accounting import IOAccountant
from repro.storage.catalog import (
    MaterializedNodeCatalog,
    node_file_name,
    node_id_from_file_name,
)
from repro.storage.delta import DeltaAppender
from repro.storage.manifest import (
    DurableBitmapStore,
    delta_file_name,
)
from repro.storage.scrub import Scrubber


def _build_store(tmp_path, hierarchy, seed=5, rows=1500):
    rng = np.random.default_rng(seed)
    column = rng.integers(0, hierarchy.num_leaves, size=rows)
    store = DurableBitmapStore(tmp_path)
    MaterializedNodeCatalog(hierarchy, column, store)
    return store


def _corrupt_on_disk(tmp_path, store, name, mode="flip"):
    """Damage a file's physical bytes without the store noticing."""
    entry = store.manifest.entry(name)
    path = tmp_path / entry.physical
    if mode == "delete":
        path.unlink()
        return
    data = bytearray(path.read_bytes())
    if mode == "flip":
        data[len(data) // 2] ^= 0x40
    elif mode == "truncate":
        data = data[:-3]
    elif mode == "extend":
        data += b"\x00\x01"
    path.write_bytes(bytes(data))


@pytest.fixture
def hierarchy() -> Hierarchy:
    return Hierarchy.from_nested([[2, 3], [3, 2], [2]])


# ----------------------------------------------------------------------
# node_id_from_file_name
# ----------------------------------------------------------------------
def test_node_id_round_trip():
    for node_id in (0, 7, 123):
        assert node_id_from_file_name(node_file_name(node_id)) == (
            node_id
        )
    assert node_id_from_file_name("MANIFEST") is None
    assert node_id_from_file_name("node_x.wah") is None
    assert node_id_from_file_name("node_1.bin") is None


# ----------------------------------------------------------------------
# Detection
# ----------------------------------------------------------------------
def test_clean_store_scrubs_clean(tmp_path, hierarchy):
    store = _build_store(tmp_path, hierarchy)
    report = Scrubber(store, hierarchy).verify()
    assert report.is_clean
    assert report.files_checked == hierarchy.num_nodes
    assert report.repair_io_bytes == 0
    assert report.generation_after == report.generation_before


@pytest.mark.parametrize(
    "mode,kind",
    [
        ("flip", "checksum"),
        ("truncate", "size"),
        ("extend", "size"),
        ("delete", "missing"),
    ],
)
def test_every_corruption_mode_is_detected(
    tmp_path, hierarchy, mode, kind
):
    store = _build_store(tmp_path, hierarchy)
    name = node_file_name(hierarchy.root_id)
    _corrupt_on_disk(tmp_path, store, name, mode)
    scrubber = Scrubber(
        DurableBitmapStore(tmp_path, verify_files=False), hierarchy
    )
    report = scrubber.verify()
    assert [f.name for f in report.findings] == [name]
    assert report.findings[0].kind == kind
    assert report.findings[0].action == "reported"


def test_verify_does_not_modify_store(tmp_path, hierarchy):
    store = _build_store(tmp_path, hierarchy)
    name = node_file_name(hierarchy.root_id)
    _corrupt_on_disk(tmp_path, store, name)
    damaged = DurableBitmapStore(tmp_path, verify_files=False)
    generation = damaged.generation
    Scrubber(damaged, hierarchy).verify()
    assert damaged.generation == generation
    # the rot is still there
    report = Scrubber(damaged, hierarchy).verify()
    assert not report.is_clean


# ----------------------------------------------------------------------
# Repair
# ----------------------------------------------------------------------
def test_internal_repair_restores_byte_identical_payload(
    tmp_path, hierarchy
):
    store = _build_store(tmp_path, hierarchy)
    internal = hierarchy.internal_ids_postorder()[0]
    name = node_file_name(internal)
    original = store.read(name)
    _corrupt_on_disk(tmp_path, store, name)

    damaged = DurableBitmapStore(tmp_path, verify_files=False)
    report = Scrubber(damaged, hierarchy).run()
    assert [f.action for f in report.findings] == ["repaired"]
    healed = DurableBitmapStore(tmp_path)
    assert healed.read(name) == original


def test_repair_io_is_exactly_sum_of_child_sizes(tmp_path, hierarchy):
    store = _build_store(tmp_path, hierarchy)
    internal = hierarchy.internal_ids_postorder()[0]
    name = node_file_name(internal)
    children = hierarchy.node(internal).children
    expected = sum(
        store.manifest.entry(node_file_name(child)).size
        for child in children
    )
    _corrupt_on_disk(tmp_path, store, name)
    accountant = IOAccountant()
    scrubber = Scrubber(
        DurableBitmapStore(tmp_path, verify_files=False),
        hierarchy,
        accountant=accountant,
    )
    report = scrubber.run()
    assert report.repair_io_bytes == expected
    # the accountant saw the verification reads plus the repair reads
    assert accountant.bytes_read == (
        report.verify_io_bytes + report.repair_io_bytes
    )


def test_missing_internal_file_is_repaired(tmp_path, hierarchy):
    store = _build_store(tmp_path, hierarchy)
    internal = hierarchy.internal_ids_postorder()[1]
    name = node_file_name(internal)
    original = store.read(name)
    _corrupt_on_disk(tmp_path, store, name, mode="delete")
    report = Scrubber(
        DurableBitmapStore(tmp_path, verify_files=False), hierarchy
    ).run()
    assert [f.action for f in report.findings] == ["repaired"]
    assert DurableBitmapStore(tmp_path).read(name) == original


def test_cascading_repair_deepest_first(tmp_path, hierarchy):
    # Corrupt an internal node AND its internal parent: the child must
    # heal first (from the leaves), then the parent heals from it.
    store = _build_store(tmp_path, hierarchy)
    child = hierarchy.internal_ids_postorder()[0]
    parent = hierarchy.node(child).parent_id
    assert parent is not None and not hierarchy.node(parent).is_leaf
    originals = {
        node_id: store.read(node_file_name(node_id))
        for node_id in (child, parent)
    }
    _corrupt_on_disk(tmp_path, store, node_file_name(child))
    _corrupt_on_disk(tmp_path, store, node_file_name(parent))

    report = Scrubber(
        DurableBitmapStore(tmp_path, verify_files=False), hierarchy
    ).run()
    assert sorted(f.action for f in report.findings) == [
        "repaired",
        "repaired",
    ]
    healed = DurableBitmapStore(tmp_path)
    for node_id, original in originals.items():
        assert healed.read(node_file_name(node_id)) == original


def test_repairs_commit_as_one_generation(tmp_path, hierarchy):
    store = _build_store(tmp_path, hierarchy)
    internals = hierarchy.internal_ids_postorder()[:2]
    for node_id in internals:
        _corrupt_on_disk(tmp_path, store, node_file_name(node_id))
    damaged = DurableBitmapStore(tmp_path, verify_files=False)
    generation = damaged.generation
    report = Scrubber(damaged, hierarchy).run()
    assert len(report.repaired) == 2
    assert damaged.generation == generation + 1


# ----------------------------------------------------------------------
# Quarantine
# ----------------------------------------------------------------------
def test_corrupt_leaf_is_quarantined(tmp_path, hierarchy):
    store = _build_store(tmp_path, hierarchy)
    leaf = hierarchy.leaf_ids()[0]
    name = node_file_name(leaf)
    _corrupt_on_disk(tmp_path, store, name)
    report = Scrubber(
        DurableBitmapStore(tmp_path, verify_files=False), hierarchy
    ).run()
    assert [f.action for f in report.findings] == ["quarantined"]
    healed = DurableBitmapStore(tmp_path)
    assert not healed.exists(name)
    assert healed.quarantined_names()  # evidence preserved
    with pytest.raises(FileMissingError):
        healed.read(name)


def test_parent_of_corrupt_leaf_is_quarantined_too(
    tmp_path, hierarchy
):
    # A corrupt internal node whose leaf child is also corrupt has no
    # healthy redundancy to rebuild from: both are condemned.
    store = _build_store(tmp_path, hierarchy)
    leaf = hierarchy.leaf_ids()[0]
    parent = hierarchy.node(leaf).parent_id
    assert parent is not None
    _corrupt_on_disk(tmp_path, store, node_file_name(leaf))
    _corrupt_on_disk(tmp_path, store, node_file_name(parent))
    report = Scrubber(
        DurableBitmapStore(tmp_path, verify_files=False), hierarchy
    ).run()
    actions = {f.name: f.action for f in report.findings}
    assert actions == {
        node_file_name(leaf): "quarantined",
        node_file_name(parent): "quarantined",
    }


def test_scrub_without_hierarchy_quarantines(tmp_path, hierarchy):
    store = _build_store(tmp_path, hierarchy)
    internal = hierarchy.internal_ids_postorder()[0]
    _corrupt_on_disk(tmp_path, store, node_file_name(internal))
    report = Scrubber(
        DurableBitmapStore(tmp_path, verify_files=False)
    ).run()
    assert [f.action for f in report.findings] == ["quarantined"]
    assert "no hierarchy" in report.findings[0].detail


# ----------------------------------------------------------------------
# Delta generations (satellite): scrub understands the LSM write path
# ----------------------------------------------------------------------
def _append_batches(store, hierarchy, sizes, seed=9):
    appender = DeltaAppender(store, hierarchy)
    rng = np.random.default_rng(seed)
    for size in sizes:
        appender.append(
            rng.integers(
                0, hierarchy.num_leaves, size=size, dtype=np.int64
            )
        )


def test_scrub_clean_after_ingest_without_compaction(
    tmp_path, hierarchy
):
    """Regression: delta files are first-class manifest entries, not
    orphans — a scrub right after ingest repairs and quarantines
    nothing, and checks every delta file too."""
    store = _build_store(tmp_path, hierarchy)
    _append_batches(store, hierarchy, (40, 7))

    report = Scrubber(store, hierarchy).verify()
    assert report.is_clean
    # base generation + two delta generations, one file per node each
    assert report.files_checked == hierarchy.num_nodes * 3

    report = Scrubber(store, hierarchy).run()
    assert report.repaired == ()
    assert report.quarantined == ()
    assert not store.quarantined_names()
    assert len(store.delta_manifests) == 2


def test_corrupt_internal_delta_repairs_from_same_seq_children(
    tmp_path, hierarchy
):
    """An internal node's delta file heals from the *same* delta
    generation's children, byte-identically — never from the base
    generation's (different rows)."""
    store = _build_store(tmp_path, hierarchy)
    _append_batches(store, hierarchy, (60,))
    internal = hierarchy.internal_ids_postorder()[0]
    name = delta_file_name(1, internal)
    original = store.read(name)
    _corrupt_on_disk(tmp_path, store, name)

    damaged = DurableBitmapStore(tmp_path, verify_files=False)
    report = Scrubber(damaged, hierarchy).run()
    assert [f.name for f in report.findings] == [name]
    assert [f.action for f in report.findings] == ["repaired"]
    healed = DurableBitmapStore(tmp_path)
    assert healed.read(name) == original


def test_corrupt_leaf_delta_is_quarantined(tmp_path, hierarchy):
    store = _build_store(tmp_path, hierarchy)
    _append_batches(store, hierarchy, (25,))
    leaf = hierarchy.leaf_ids()[0]
    name = delta_file_name(1, leaf)
    _corrupt_on_disk(tmp_path, store, name, mode="truncate")

    damaged = DurableBitmapStore(tmp_path, verify_files=False)
    report = Scrubber(damaged, hierarchy).run()
    assert [f.action for f in report.findings] == ["quarantined"]
    healed = DurableBitmapStore(tmp_path, verify_files=False)
    assert not healed.exists(name)
    assert healed.quarantined_names()


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
def test_scrub_emits_events_and_metrics(tmp_path, hierarchy):
    store = _build_store(tmp_path, hierarchy)
    internal = hierarchy.internal_ids_postorder()[0]
    # a leaf outside the corrupt internal's subtree, so the internal
    # still has healthy children to repair from
    leaf = hierarchy.leaf_ids()[-1]
    assert not hierarchy.node(internal).covers_leaf(
        hierarchy.node(leaf).leaf_lo
    )
    _corrupt_on_disk(tmp_path, store, node_file_name(internal))
    _corrupt_on_disk(tmp_path, store, node_file_name(leaf))

    collector = TraceCollector()
    with recording(collector), collecting_metrics() as registry:
        report = Scrubber(
            DurableBitmapStore(tmp_path, verify_files=False),
            hierarchy,
        ).run()
    kinds = collector.counts_by_kind()
    assert kinds.get("scrub.start") == 1
    assert kinds.get("scrub.done") == 1
    assert kinds.get("scrub.corrupt") == 2
    assert kinds.get("scrub.repair") == 1
    assert kinds.get("scrub.quarantine") == 1
    assert registry.counter(
        "scrub_files_verified_total"
    ) == hierarchy.num_nodes
    assert registry.counter(
        "scrub_corruptions_total", kind="checksum"
    ) == 2
    assert registry.counter(
        "scrub_repairs_total", kind="checksum"
    ) == 1
    assert registry.counter("scrub_quarantined_total") == 1
    assert not report.is_clean


# ----------------------------------------------------------------------
# The hypothesis property (satellite): any hierarchy, any single
# corrupted internal node -> byte-identical repair, exact repair IO.
# ----------------------------------------------------------------------
_nested_specs = st.recursive(
    st.integers(min_value=1, max_value=3),
    lambda children: st.lists(children, min_size=2, max_size=3),
    max_leaves=5,
).filter(lambda spec: isinstance(spec, list))


@given(
    spec=_nested_specs,
    pick=st.integers(min_value=0, max_value=10**6),
    seed=st.integers(min_value=0, max_value=2**16),
    mode=st.sampled_from(["flip", "truncate", "delete"]),
)
@settings(max_examples=25, deadline=None)
def test_any_internal_corruption_repairs_byte_identical(
    spec, pick, seed, mode
):
    hierarchy = Hierarchy.from_nested(spec)
    internals = hierarchy.internal_ids_postorder()
    node_id = internals[pick % len(internals)]
    name = node_file_name(node_id)
    tmp = tempfile.mkdtemp(prefix="scrub-prop-")
    try:
        from pathlib import Path

        tmp_path = Path(tmp)
        store = _build_store(
            tmp_path, hierarchy, seed=seed, rows=400
        )
        original = store.read(name)
        expected_io = sum(
            store.manifest.entry(node_file_name(child)).size
            for child in hierarchy.node(node_id).children
        )
        _corrupt_on_disk(tmp_path, store, name, mode)

        report = Scrubber(
            DurableBitmapStore(tmp_path, verify_files=False),
            hierarchy,
        ).run()
        assert [f.action for f in report.findings] == ["repaired"]
        assert report.repair_io_bytes == expected_io
        assert DurableBitmapStore(tmp_path).read(name) == original
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
