"""Tests for the PLWAH codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmap.plwah import (
    PlwahBitmap,
    plwah_decode,
    plwah_encode,
)
from repro.bitmap.wah import WahBitmap


class TestCodecRoundTrip:
    @given(
        st.integers(min_value=0, max_value=2000),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=150)
    def test_encode_decode_roundtrip_random(self, num_bits, seed):
        rng = np.random.default_rng(seed)
        size = int(rng.integers(0, max(1, num_bits // 4 + 1)))
        positions = (
            rng.choice(num_bits, size=size, replace=False)
            if num_bits
            else np.empty(0, dtype=np.int64)
        )
        wah = WahBitmap.from_positions(positions, num_bits)
        decoded = plwah_decode(plwah_encode(wah.words))
        restored = WahBitmap(list(decoded), num_bits)
        assert restored == wah

    def test_roundtrip_dense_patterns(self):
        for num_bits, pattern in [
            (310, range(0, 310, 2)),
            (310, range(310)),
            (310, []),
            (1000, [500]),
            (1000, range(100, 900)),
        ]:
            wah = WahBitmap.from_positions(list(pattern), num_bits)
            restored = WahBitmap(
                list(plwah_decode(plwah_encode(wah.words))),
                num_bits,
            )
            assert restored == wah


class TestCompressionGain:
    def test_absorbs_single_dirty_bit_literals(self):
        """A lone set bit after a long zero run costs one word in
        PLWAH (fill+piggyback) but two in WAH (fill+literal)."""
        wah = WahBitmap.from_positions([10_000], 1_000_000)
        plwah = PlwahBitmap.from_wah(wah)
        assert plwah.num_words < wah.num_words

    def test_sparse_random_bitmap_smaller_than_wah(self):
        rng = np.random.default_rng(0)
        num_bits = 1_000_000
        positions = rng.choice(num_bits, size=2000, replace=False)
        wah = WahBitmap.from_positions(positions, num_bits)
        plwah = PlwahBitmap.from_wah(wah)
        assert (
            plwah.serialized_size_bytes
            < 0.8 * wah.serialized_size_bytes
        )

    def test_never_larger_than_wah(self):
        rng = np.random.default_rng(1)
        for density in (0.001, 0.01, 0.1, 0.5):
            num_bits = 100_000
            positions = rng.choice(
                num_bits,
                size=int(density * num_bits),
                replace=False,
            )
            wah = WahBitmap.from_positions(positions, num_bits)
            plwah = PlwahBitmap.from_wah(wah)
            assert plwah.num_words <= wah.num_words


class TestBitmapApi:
    def test_constructors_and_introspection(self):
        plwah = PlwahBitmap.from_positions([1, 40, 99], 100)
        assert plwah.num_bits == 100
        assert plwah.count() == 3
        assert plwah.density() == pytest.approx(0.03)
        assert plwah.to_positions().tolist() == [1, 40, 99]
        assert PlwahBitmap.zeros(50).count() == 0

    def test_logical_ops_match_wah(self):
        a_positions = [1, 5, 60, 61]
        b_positions = [5, 61, 70]
        a = PlwahBitmap.from_positions(a_positions, 100)
        b = PlwahBitmap.from_positions(b_positions, 100)
        wah_a = WahBitmap.from_positions(a_positions, 100)
        wah_b = WahBitmap.from_positions(b_positions, 100)
        assert (a & b).to_positions().tolist() == (
            wah_a & wah_b
        ).to_positions().tolist()
        assert (a | b).to_positions().tolist() == (
            wah_a | wah_b
        ).to_positions().tolist()
        assert (a ^ b).to_positions().tolist() == (
            wah_a ^ wah_b
        ).to_positions().tolist()
        assert a.andnot(b).to_positions().tolist() == (
            wah_a.andnot(wah_b)
        ).to_positions().tolist()
        assert (~a).count() == 100 - a.count()

    def test_to_wah_roundtrip(self):
        plwah = PlwahBitmap.from_positions([0, 31, 62, 93], 100)
        assert plwah.to_wah() == WahBitmap.from_positions(
            [0, 31, 62, 93], 100
        )

    def test_equality_and_repr(self):
        a = PlwahBitmap.from_positions([1], 10)
        b = PlwahBitmap.from_positions([1], 10)
        assert a == b
        assert hash(a) == hash(b)
        assert a != PlwahBitmap.from_positions([2], 10)
        assert a != object()
        assert "words=" in repr(a)
        assert len(a) == 10
