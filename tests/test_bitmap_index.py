"""Tests for WAH concat and the appendable hierarchical index."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmap.index import HierarchicalBitmapIndex
from repro.bitmap.wah import WORD_PAYLOAD_BITS, WahBitmap
from repro.errors import WorkloadError
from repro.hierarchy.tree import Hierarchy
from repro.storage.filestore import BitmapFileStore


class TestConcat:
    def test_aligned_concat(self):
        a = WahBitmap.from_positions([0, 30], WORD_PAYLOAD_BITS * 2)
        b = WahBitmap.from_positions([5], 40)
        joined = a.concat(b)
        assert joined.num_bits == WORD_PAYLOAD_BITS * 2 + 40
        assert joined.to_positions().tolist() == [
            0, 30, WORD_PAYLOAD_BITS * 2 + 5,
        ]

    def test_unaligned_concat(self):
        a = WahBitmap.from_positions([1, 35], 40)
        b = WahBitmap.from_positions([0, 30], 31)
        joined = a.concat(b)
        assert joined.to_positions().tolist() == [1, 35, 40, 70]
        assert joined.num_bits == 71

    def test_concat_with_empty(self):
        a = WahBitmap.from_positions([3], 10)
        assert a.concat(WahBitmap.zeros(0)) == a
        grown = WahBitmap.zeros(0).concat(a)
        assert grown == a

    def test_aligned_concat_merges_fills_at_seam(self):
        a = WahBitmap.zeros(WORD_PAYLOAD_BITS * 3)
        b = WahBitmap.zeros(WORD_PAYLOAD_BITS * 4)
        joined = a.concat(b)
        assert joined.num_words == 1

    @given(
        st.integers(min_value=0, max_value=120),
        st.integers(min_value=0, max_value=120),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=100)
    def test_concat_matches_position_arithmetic(
        self, left_bits, right_bits, seed
    ):
        rng = np.random.default_rng(seed)
        left = (
            rng.choice(left_bits, size=left_bits // 3, replace=False)
            if left_bits
            else np.empty(0, dtype=np.int64)
        )
        right = (
            rng.choice(
                right_bits, size=right_bits // 3, replace=False
            )
            if right_bits
            else np.empty(0, dtype=np.int64)
        )
        a = WahBitmap.from_positions(left, left_bits)
        b = WahBitmap.from_positions(right, right_bits)
        joined = a.concat(b)
        expected = sorted(left.tolist()) + sorted(
            (right + left_bits).tolist()
        )
        assert joined.to_positions().tolist() == expected
        assert joined.num_bits == left_bits + right_bits


@pytest.fixture
def hierarchy() -> Hierarchy:
    return Hierarchy.from_nested([[3, 3], [2, 4]])


class TestHierarchicalBitmapIndex:
    def test_initial_column_indexed(self, hierarchy, rng):
        column = rng.integers(0, hierarchy.num_leaves, size=500)
        index = HierarchicalBitmapIndex(hierarchy, column)
        assert index.num_rows == 500
        index.verify_consistency()

    def test_batch_appends_accumulate(self, hierarchy, rng):
        index = HierarchicalBitmapIndex(hierarchy)
        batches = [
            rng.integers(0, hierarchy.num_leaves, size=n)
            for n in (100, 37, 501)
        ]
        for batch in batches:
            index.append_rows(batch)
        assert index.num_rows == sum(b.size for b in batches)
        index.verify_consistency()
        full = np.concatenate(batches)
        whole = HierarchicalBitmapIndex(hierarchy, full)
        for node in hierarchy:
            assert index.bitmap(node.node_id) == whole.bitmap(
                node.node_id
            )

    def test_lookup_range_matches_scan(self, hierarchy, rng):
        column = rng.integers(0, hierarchy.num_leaves, size=1000)
        index = HierarchicalBitmapIndex(hierarchy, column)
        for lo, hi in [(0, 2), (3, 8), (0, 11), (5, 5), (7, 3)]:
            answer = index.lookup_range(lo, hi)
            expected = np.flatnonzero(
                (column >= lo) & (column <= hi)
            ).tolist()
            assert answer.to_positions().tolist() == expected

    def test_lookup_after_appends(self, hierarchy, rng):
        index = HierarchicalBitmapIndex(hierarchy)
        column_parts = []
        for _ in range(4):
            batch = rng.integers(0, hierarchy.num_leaves, size=200)
            index.append_rows(batch)
            column_parts.append(batch)
        column = np.concatenate(column_parts)
        answer = index.lookup_range(2, 9)
        expected = np.flatnonzero(
            (column >= 2) & (column <= 9)
        ).tolist()
        assert answer.to_positions().tolist() == expected

    def test_empty_append_is_noop(self, hierarchy):
        index = HierarchicalBitmapIndex(hierarchy)
        index.append_rows(np.array([], dtype=np.int64))
        assert index.num_rows == 0

    def test_validation(self, hierarchy):
        index = HierarchicalBitmapIndex(hierarchy)
        with pytest.raises(WorkloadError):
            index.append_rows(np.zeros((2, 2), dtype=np.int64))
        with pytest.raises(WorkloadError):
            index.append_rows(np.array([0.5]))
        with pytest.raises(WorkloadError):
            index.append_rows(
                np.array([hierarchy.num_leaves], dtype=np.int64)
            )

    def test_density(self, hierarchy):
        column = np.zeros(100, dtype=np.int64)
        index = HierarchicalBitmapIndex(hierarchy, column)
        leaf0 = hierarchy.leaf_node_id(0)
        assert index.density(leaf0) == pytest.approx(1.0)
        assert index.density(hierarchy.root_id) == pytest.approx(1.0)

    def test_flush_to_store(self, hierarchy, rng):
        column = rng.integers(0, hierarchy.num_leaves, size=300)
        index = HierarchicalBitmapIndex(hierarchy, column)
        store = BitmapFileStore()
        written = index.flush_to_store(store)
        assert written == store.total_bytes()
        assert store.exists("node_0.wah")
        assert (
            len(list(store.names())) == hierarchy.num_nodes
        )

    def test_zero_size_fill_tail_stays_compact(self, hierarchy):
        """Appending rows that miss a node grows its bitmap by at
        most one fill word."""
        index = HierarchicalBitmapIndex(hierarchy)
        index.append_rows(np.zeros(10_000, dtype=np.int64))
        last_leaf = hierarchy.leaf_node_id(
            hierarchy.num_leaves - 1
        )
        assert index.bitmap(last_leaf).num_words <= 1

    def test_repr(self, hierarchy):
        assert "rows=0" in repr(HierarchicalBitmapIndex(hierarchy))


class TestAppendVectorization:
    """The vectorized append hot loop must be indistinguishable from
    the per-node mask loop it replaced (kept as the oracle)."""

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=11),
            max_size=200,
        )
    )
    def test_tail_positions_match_the_reference(self, values):
        hierarchy = Hierarchy.from_nested([[2, 2], [3, 2], [3]])
        index = HierarchicalBitmapIndex(hierarchy)
        batch = np.asarray(values, dtype=np.int64)
        fast = {
            node_id: np.sort(positions).tolist()
            for node_id, positions in index._node_tail_positions(
                batch
            )
        }
        reference = {
            node_id: positions.tolist()
            for node_id, positions in (
                index._node_tail_positions_reference(batch)
            )
        }
        # The vectorized path may emit a node's positions unordered
        # (from_positions canonicalizes); as *sets of rows per node*
        # the two must be identical, node for node.
        assert fast == reference

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=11),
                max_size=60,
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_appended_bitmaps_match_the_reference_loop(
        self, batches
    ):
        hierarchy = Hierarchy.from_nested([[2, 2], [3, 2], [3]])
        fast = HierarchicalBitmapIndex(hierarchy)
        oracle = HierarchicalBitmapIndex(hierarchy)
        for values in batches:
            batch = np.asarray(values, dtype=np.int64)
            fast.append_rows(batch)
            if batch.size == 0:
                continue
            # Drive the oracle index through the reference loop.
            for node_id, positions in (
                oracle._node_tail_positions_reference(batch)
            ):
                tail = WahBitmap.from_positions(
                    positions, batch.size
                )
                oracle._bitmaps[node_id] = oracle._bitmaps[
                    node_id
                ].concat(tail)
            oracle._num_rows += int(batch.size)
        assert fast.num_rows == oracle.num_rows
        for node in hierarchy:
            ours = fast.bitmap(node.node_id)
            theirs = oracle.bitmap(node.node_id)
            assert ours.words == theirs.words, node.node_id
        fast.verify_consistency()
