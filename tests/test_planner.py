"""Tests for the CutSelector facade."""

from __future__ import annotations

import pytest

from repro.core.constrained import ConstrainedCutResult
from repro.core.multi import MultiQueryCutResult
from repro.core.planner import CutSelector
from repro.core.single import SingleQueryCutResult
from repro.workload.generator import fraction_workload
from repro.workload.query import RangeQuery, Workload


@pytest.fixture
def selector(tpch_catalog100) -> CutSelector:
    return CutSelector(tpch_catalog100)


class TestDispatch:
    def test_single_query_routes_to_case1(self, selector):
        result = selector.select(RangeQuery([(10, 40)]))
        assert isinstance(result, SingleQueryCutResult)
        assert result.strategy == "hybrid"

    def test_single_query_strategy_flag(self, selector):
        result = selector.select(
            RangeQuery([(10, 40)]), strategy="exclusive"
        )
        assert result.strategy == "exclusive"

    def test_workload_routes_to_case2(self, selector):
        workload = fraction_workload(100, 0.5, 5, seed=0)
        result = selector.select(workload)
        assert isinstance(result, MultiQueryCutResult)

    def test_workload_with_budget_routes_to_case3(self, selector):
        workload = fraction_workload(100, 0.5, 5, seed=0)
        result = selector.select(workload, budget_mb=60.0, k=10)
        assert isinstance(result, ConstrainedCutResult)
        assert result.k == 10

    def test_budget_with_k1_uses_one_cut(self, selector):
        workload = fraction_workload(100, 0.5, 5, seed=0)
        result = selector.select(workload, budget_mb=60.0, k=1)
        assert result.k == 1

    def test_budget_with_k_none_uses_auto_stop(self, selector):
        workload = fraction_workload(100, 0.5, 5, seed=0)
        result = selector.select(workload, budget_mb=60.0, k=None)
        assert isinstance(result, ConstrainedCutResult)

    def test_single_query_with_budget_wraps_into_workload(
        self, selector
    ):
        result = selector.select(
            RangeQuery([(10, 40)]), budget_mb=30.0
        )
        assert isinstance(result, ConstrainedCutResult)

    def test_rejects_unknown_target(self, selector):
        with pytest.raises(TypeError):
            selector.select("not a query")  # type: ignore[arg-type]

    def test_multi_query_is_hybrid_only(self, selector):
        workload = fraction_workload(100, 0.5, 5, seed=0)
        with pytest.raises(ValueError):
            selector.select(workload, strategy="inclusive")


class TestPlanBuilding:
    def test_plan_without_result_is_leaf_only(self, selector):
        query = RangeQuery([(10, 19)])
        plan = selector.plan(query)
        assert plan.num_operation_nodes == 10

    def test_plan_for_single_result_matches_cost(self, selector):
        query = RangeQuery([(5, 94)])
        result = selector.select(query)
        plan = selector.plan(query, result)
        assert plan.predicted_cost_mb == pytest.approx(result.cost)

    def test_plan_for_workload_result_treats_cut_as_cached(
        self, selector
    ):
        workload = fraction_workload(100, 0.5, 5, seed=0)
        result = selector.select(workload)
        plan = selector.plan(workload[0], result)
        cached = set(result.cut.node_ids)
        charged = sum(
            selector.catalog.read_cost_mb(node_id)
            for node_id in plan.operation_node_ids
            if node_id not in cached
        )
        assert plan.predicted_cost_mb == pytest.approx(charged)

    def test_catalog_property(self, selector, tpch_catalog100):
        assert selector.catalog is tpch_catalog100
