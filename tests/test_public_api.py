"""Public-API contract tests.

Pin the package's exported surface: everything in ``__all__`` resolves,
the README's quickstart snippets run, and version metadata is sane.
"""

from __future__ import annotations

import importlib

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.bitmap",
            "repro.hierarchy",
            "repro.storage",
            "repro.workload",
            "repro.core",
            "repro.experiments",
        ],
    )
    def test_subpackage_all_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestReadmeQuickstart:
    def test_modeled_quickstart(self):
        from repro import (
            CostModel,
            CutSelector,
            ModeledNodeCatalog,
            RangeQuery,
            tpch_acctbal_leaf_probabilities,
        )
        from repro.hierarchy import paper_hierarchy

        hierarchy = paper_hierarchy(100)
        catalog = ModeledNodeCatalog(
            hierarchy,
            tpch_acctbal_leaf_probabilities(100),
            CostModel.paper_2014(),
            num_rows=150_000_000,
        )
        selector = CutSelector(catalog)
        result = selector.select(RangeQuery([(20, 79)]))
        assert result.cut.is_complete
        assert result.cost > 0
        plan = selector.plan(RangeQuery([(20, 79)]), result)
        assert plan.predicted_cost_mb == pytest.approx(result.cost)

    def test_materialized_quickstart(self):
        import numpy as np

        from repro import (
            BufferPool,
            MaterializedNodeCatalog,
            QueryExecutor,
            RangeQuery,
            scan_answer,
        )
        from repro.hierarchy import paper_hierarchy

        hierarchy = paper_hierarchy(100)
        column = np.random.default_rng(0).integers(0, 100, 5_000)
        catalog = MaterializedNodeCatalog(hierarchy, column)
        executor = QueryExecutor(
            catalog, BufferPool(catalog.store)
        )
        query = RangeQuery([(20, 79)])
        result = executor.execute_query(query)
        assert result.answer == scan_answer(column, query)
        assert result.io_mb > 0
