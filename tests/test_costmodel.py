"""Tests for the piecewise read-cost model (§2.2.1)."""

from __future__ import annotations

import pytest

from repro.errors import CalibrationError
from repro.storage.costmodel import MB, CostModel


@pytest.fixture
def model() -> CostModel:
    return CostModel.paper_2014()


class TestPiecewiseRegions:
    def test_zero_and_one_density_cost_nothing(self, model):
        assert model.read_cost_mb(0.0) == 0.0
        assert model.read_cost_mb(1.0) == 0.0

    def test_linear_region(self, model):
        for density in (0.001, 0.005, 0.01):
            expected = model.a * density + model.b
            assert model.read_cost_mb(density) == pytest.approx(
                expected
            )

    def test_plateau_regions(self, model):
        assert model.read_cost_mb(0.012) == model.k1
        assert model.read_cost_mb(0.02) == model.k2
        assert model.read_cost_mb(0.1) == model.k3
        assert model.read_cost_mb(0.5) == model.k3

    def test_region_boundaries_are_inclusive_on_the_left(self, model):
        assert model.read_cost_mb(model.dx1) == pytest.approx(
            model.a * model.dx1 + model.b
        )
        assert model.read_cost_mb(model.dx2) == model.k1
        assert model.read_cost_mb(model.dx3) == model.k2


class TestComplementBehavior:
    def test_dense_bitmaps_priced_by_complement(self, model):
        """Density 0.7 performs like density 0.3 (§2.2.1)."""
        for density in (0.6, 0.7, 0.9, 0.995, 0.999):
            assert model.read_cost_mb(density) == pytest.approx(
                model.read_cost_mb(1.0 - density)
            )

    def test_effective_density(self, model):
        assert model.effective_density(0.3) == 0.3
        assert model.effective_density(0.7) == pytest.approx(0.3)
        with pytest.raises(ValueError):
            model.effective_density(1.5)


class TestSizes:
    def test_size_equals_read_cost(self, model):
        for density in (0.004, 0.02, 0.4):
            assert model.size_mb(density) == model.read_cost_mb(
                density
            )

    def test_size_bytes(self, model):
        density = 0.02
        assert model.size_bytes(density) == int(
            round(model.read_cost_mb(density) * MB)
        )


class TestValidation:
    def test_threshold_ordering_enforced(self):
        with pytest.raises(ValueError):
            CostModel(
                a=1, b=1, k1=1, k2=1, k3=1,
                dx1=0.02, dx2=0.015, dx3=0.03,
            )
        with pytest.raises(ValueError):
            CostModel(
                a=1, b=1, k1=1, k2=1, k3=1,
                dx1=0.1, dx2=0.2, dx3=0.6,
            )

    def test_negative_constants_rejected(self):
        with pytest.raises(ValueError):
            CostModel(
                a=-1, b=1, k1=1, k2=1, k3=1,
                dx1=0.01, dx2=0.015, dx3=0.03,
            )

    def test_density_out_of_range(self, model):
        with pytest.raises(ValueError):
            model.read_cost_mb(-0.1)
        with pytest.raises(ValueError):
            model.read_cost_mb(1.1)


class TestFitting:
    def test_fit_recovers_a_linear_relationship(self):
        truth = CostModel.paper_2014()
        samples = {
            density: truth.read_cost_mb(density)
            for density in (
                0.001, 0.003, 0.005, 0.008, 0.01,
                0.012, 0.02, 0.1, 0.3,
            )
        }
        fitted = CostModel.fitted(samples)
        assert fitted.a == pytest.approx(truth.a, rel=1e-6)
        assert fitted.b == pytest.approx(truth.b, rel=1e-4)
        assert fitted.k1 == pytest.approx(truth.k1)
        assert fitted.k2 == pytest.approx(truth.k2)
        assert fitted.k3 == pytest.approx(truth.k3)

    def test_fit_needs_two_sparse_samples(self):
        with pytest.raises(CalibrationError):
            CostModel.fitted({0.005: 5.0})

    def test_fit_rejects_degenerate_sparse_samples(self):
        with pytest.raises(CalibrationError):
            CostModel.fitted({0.005: 5.0, 0.995: 5.0})

    def test_fit_clamps_non_monotone_plateau_samples(self):
        """Regression: noisy samples used to fit ``k2 < k1`` etc.,
        contradicting the documented monotonicity guarantee."""
        samples = {
            0.001: 1.0,
            0.005: 5.0,
            0.012: 20.0,  # band 1 sample, higher than bands 2/3
            0.02: 10.0,   # band 2 sample below band 1
            0.1: 5.0,     # band 3 sample below band 2
        }
        fitted = CostModel.fitted(samples)
        assert fitted.k1 <= fitted.k2 <= fitted.k3
        assert fitted.k1 >= fitted.a * fitted.dx1 + fitted.b
        assert fitted.k1 == pytest.approx(20.0)
        assert fitted.k2 == pytest.approx(20.0)
        assert fitted.k3 == pytest.approx(20.0)

    def test_fit_clamps_plateau_below_linear_boundary(self):
        """A band-1 mean below the linear region's value at ``dx1``
        would make the curve dip; it is clamped to the boundary."""
        samples = {
            0.001: 1.0,
            0.005: 5.0,
            0.012: 2.0,  # below a*dx1 + b = 10
        }
        fitted = CostModel.fitted(samples)
        boundary = fitted.a * fitted.dx1 + fitted.b
        assert fitted.k1 == pytest.approx(boundary)
        assert fitted.k1 <= fitted.k2 <= fitted.k3
        # The fitted curve is monotone over effective density.
        costs = [
            fitted.read_cost_mb(density)
            for density in (0.002, 0.008, 0.012, 0.02, 0.1, 0.5)
        ]
        assert costs == sorted(costs)

    def test_fit_with_missing_plateaus_falls_back(self):
        samples = {0.001: 1.0, 0.005: 5.0, 0.009: 9.0}
        fitted = CostModel.fitted(samples)
        boundary = fitted.a * fitted.dx1 + fitted.b
        assert fitted.k1 == pytest.approx(boundary)
        assert fitted.k2 == fitted.k1
        assert fitted.k3 == fitted.k2

    def test_fit_uses_complement_density(self):
        truth = CostModel.paper_2014()
        samples = {
            0.999: truth.read_cost_mb(0.001),
            0.995: truth.read_cost_mb(0.005),
        }
        fitted = CostModel.fitted(samples)
        assert fitted.a == pytest.approx(truth.a, rel=1e-6)
