"""Tests for Case-2 cut selection (Alg. 3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import exhaustive_multi_optimum
from repro.core.multi import select_cut_multi
from repro.core.workload_cost import (
    WorkloadNodeStats,
    case2_cut_cost,
)
from repro.hierarchy.tree import Hierarchy
from repro.storage.catalog import ModeledNodeCatalog
from repro.storage.costmodel import CostModel
from repro.workload.generator import fraction_workload
from repro.workload.query import RangeQuery, Workload


class TestBasics:
    def test_returns_complete_cut(self, tpch_catalog100):
        workload = fraction_workload(100, 0.5, 5, seed=0)
        result = select_cut_multi(tpch_catalog100, workload)
        assert result.cut.is_complete

    def test_dp_cost_matches_evaluator(self, tpch_catalog100):
        workload = fraction_workload(100, 0.5, 15, seed=1)
        result = select_cut_multi(tpch_catalog100, workload)
        evaluated = case2_cut_cost(
            result.stats, result.cut.node_ids
        )
        assert result.cost == pytest.approx(evaluated)

    def test_beats_or_matches_leaf_only(self, tpch_catalog100):
        for fraction in (0.1, 0.5, 0.9):
            workload = fraction_workload(100, fraction, 15, seed=2)
            result = select_cut_multi(tpch_catalog100, workload)
            assert (
                result.cost
                <= result.stats.leaf_only_cost_case2() + 1e-9
            )

    def test_accepts_precomputed_stats(self, tpch_catalog100):
        workload = fraction_workload(100, 0.5, 5, seed=3)
        stats = WorkloadNodeStats(tpch_catalog100, workload)
        result = select_cut_multi(tpch_catalog100, workload, stats)
        assert result.stats is stats


class TestOptimality:
    """Alg. 3 must equal the exhaustive optimum (paper Fig. 5)."""

    @pytest.mark.parametrize("fraction", [0.1, 0.5, 0.9])
    @pytest.mark.parametrize("num_queries", [5, 15, 25])
    def test_matches_exhaustive(
        self, tpch_catalog100, fraction, num_queries
    ):
        workload = fraction_workload(
            100, fraction, num_queries, seed=7
        )
        stats = WorkloadNodeStats(tpch_catalog100, workload)
        hybrid = select_cut_multi(
            tpch_catalog100, workload, stats
        ).cost
        optimum = exhaustive_multi_optimum(
            tpch_catalog100, workload, stats
        ).cost
        assert hybrid == pytest.approx(optimum)

    @given(
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_exhaustive_on_random_instances(
        self, seed, num_queries
    ):
        rng = np.random.default_rng(seed)

        def random_spec(depth):
            if depth == 0:
                return int(rng.integers(1, 5))
            width = int(rng.integers(1, 4))
            return [random_spec(depth - 1) for _ in range(width)]

        hierarchy = Hierarchy.from_nested(
            random_spec(int(rng.integers(1, 4)))
        )
        num_leaves = hierarchy.num_leaves
        probabilities = rng.dirichlet(np.ones(num_leaves))
        catalog = ModeledNodeCatalog(
            hierarchy,
            probabilities,
            CostModel.paper_2014(),
            150_000_000,
        )
        queries = []
        for _ in range(num_queries):
            start = int(rng.integers(0, num_leaves))
            end = int(rng.integers(start, num_leaves))
            queries.append(RangeQuery([(start, end)]))
        workload = Workload(queries)
        stats = WorkloadNodeStats(catalog, workload)
        hybrid = select_cut_multi(catalog, workload, stats).cost
        optimum = exhaustive_multi_optimum(
            catalog, workload, stats
        ).cost
        assert hybrid == pytest.approx(optimum)


class TestCachingBehavior:
    def test_duplicate_queries_cost_like_one(self, tpch_catalog100):
        """Eq. 3: a repeated query reuses every cached bitmap."""
        query = RangeQuery([(10, 59)])
        single = select_cut_multi(
            tpch_catalog100, Workload([query])
        ).cost
        repeated = select_cut_multi(
            tpch_catalog100, Workload([query] * 5)
        ).cost
        assert repeated == pytest.approx(single)

    def test_combined_cost_bounded_by_single_query_costs(
        self, tpch_catalog100
    ):
        """The shared-cut workload cost sits between the dearest
        single-query optimum (more queries only add cost) and the
        union leaf-only baseline (the degenerate cut)."""
        a = RangeQuery([(0, 59)])
        b = RangeQuery([(40, 99)])
        workload = Workload([a, b])
        stats = WorkloadNodeStats(tpch_catalog100, workload)
        combined = select_cut_multi(
            tpch_catalog100, workload, stats
        ).cost
        single_costs = [
            select_cut_multi(
                tpch_catalog100, Workload([query])
            ).cost
            for query in (a, b)
        ]
        assert combined >= max(single_costs) - 1e-9
        assert combined <= stats.leaf_only_cost_case2() + 1e-9
