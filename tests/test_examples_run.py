"""Smoke tests: every example script runs end to end.

Examples are documentation that executes; these tests keep them from
rotting.  Each runs in a subprocess with the repo's interpreter.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(
    path.name for path in EXAMPLES_DIR.glob("*.py")
)


def _run(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_every_example_is_covered():
    """If an example is added, give it a smoke test below."""
    assert EXAMPLES == [
        "adaptive_olap.py",
        "append_stream.py",
        "calibrate_cost_model.py",
        "geo_analytics.py",
        "quickstart.py",
        "warehouse_workload.py",
    ]


def test_quickstart():
    result = _run("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "hybrid-cut reads" in result.stdout
    assert "operation nodes" in result.stdout


def test_geo_analytics():
    result = _run("geo_analytics.py")
    assert result.returncode == 0, result.stderr
    assert "every plan's answer matched" in result.stdout
    assert "West + Southwest" in result.stdout


def test_warehouse_workload():
    result = _run("warehouse_workload.py")
    assert result.returncode == 0, result.stderr
    assert "10-Cut" in result.stdout
    assert "caches" in result.stdout


def test_calibrate_cost_model():
    result = _run("calibrate_cost_model.py", "200000")
    assert result.returncode == 0, result.stderr
    assert "measured MB" in result.stdout
    assert "paper (150M rows)" in result.stdout


def test_append_stream():
    result = _run("append_stream.py")
    assert result.returncode == 0, result.stderr
    assert "SUM(amount)" in result.stdout
    assert "materialization advisor" in result.stdout


def test_adaptive_olap():
    result = _run("adaptive_olap.py")
    assert result.returncode == 0, result.stderr
    assert "SWITCHED cut" in result.stdout
    assert "cut swaps" in result.stdout
