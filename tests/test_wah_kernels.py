"""Property tests: vectorized WAH kernels vs. the scalar reference.

The scalar per-word implementation in :mod:`repro.bitmap.wah` is the
oracle; the numpy kernels in :mod:`repro.bitmap.kernels` must produce
**bit-identical canonical word streams** for every operation, across
random densities, lengths (including non-multiples of 31), and run
structures.  Word-level equality is stronger than logical equality: it
pins the canonical encoding (fill merging, uniform-literal collapsing)
the serialization format and the cost accounting depend on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmap import kernels
from repro.bitmap.wah import (
    LITERAL_PAYLOAD_MASK,
    WahBitmap,
    _WahEncoder,
)
from repro.errors import BitmapDecodeError, BitmapLengthMismatchError

MAX_BITS = 700


@st.composite
def wah_bitmap(draw, num_bits: int) -> WahBitmap:
    """A random bitmap biased toward interesting run structure."""
    style = draw(st.integers(min_value=0, max_value=2))
    if style == 0:
        positions = draw(
            st.lists(
                st.integers(min_value=0, max_value=num_bits - 1),
                max_size=num_bits,
            )
        )
        return WahBitmap.from_positions(positions, num_bits)
    if style == 1:
        # Long 1-runs exercise fill merging.
        edges = draw(
            st.lists(
                st.integers(min_value=0, max_value=num_bits),
                max_size=8,
            )
        )
        edges = sorted(set(edges))
        runs = list(zip(edges[::2], edges[1::2]))
        return WahBitmap.from_runs(runs, num_bits)
    density = draw(st.floats(min_value=0.0, max_value=1.0))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    return WahBitmap.from_dense(rng.random(num_bits) < density)


@st.composite
def bitmap_pair(draw):
    num_bits = draw(st.integers(min_value=1, max_value=MAX_BITS))
    return (
        draw(wah_bitmap(num_bits)),
        draw(wah_bitmap(num_bits)),
    )


@st.composite
def bitmap_list(draw):
    num_bits = draw(st.integers(min_value=1, max_value=MAX_BITS))
    count = draw(st.integers(min_value=1, max_value=7))
    return num_bits, [
        draw(wah_bitmap(num_bits)) for _ in range(count)
    ]


def _scalar(fn):
    with kernels.use_kernel_mode("scalar"):
        return fn()


def _kernel(fn):
    with kernels.use_kernel_mode("numpy"):
        return fn()


class TestBinaryOps:
    @given(bitmap_pair())
    @settings(max_examples=150)
    def test_binary_ops_bit_identical(self, pair):
        a, b = pair
        for op in (
            lambda: a & b,
            lambda: a | b,
            lambda: a ^ b,
            lambda: a.andnot(b),
        ):
            assert _kernel(op).words == _scalar(op).words

    @given(bitmap_pair())
    @settings(max_examples=80)
    def test_results_stay_canonical(self, pair):
        """Kernel outputs survive a WAH round-trip unchanged (no
        adjacent same-value fills, no uniform literals)."""
        a, b = pair
        result = _kernel(lambda: a | b)
        encoder = _WahEncoder()
        for is_fill, value, ngroups, literal in result.iter_runs():
            if is_fill:
                encoder.append_fill(value, ngroups)
            else:
                encoder.append_literal(literal)
        assert encoder.words == list(result.words)

    def test_length_mismatch_raises(self):
        a = WahBitmap.zeros(62)
        b = WahBitmap.zeros(31)
        with pytest.raises(BitmapLengthMismatchError):
            _kernel(lambda: a | b)


class TestInvertAndCount:
    @given(st.integers(min_value=0, max_value=MAX_BITS), st.data())
    @settings(max_examples=150)
    def test_invert_and_count_bit_identical(self, num_bits, data):
        if num_bits == 0:
            bitmap = WahBitmap.zeros(0)
        else:
            bitmap = data.draw(wah_bitmap(num_bits))
        assert (
            _kernel(lambda: ~bitmap).words
            == _scalar(lambda: ~bitmap).words
        )
        assert _kernel(bitmap.count) == _scalar(bitmap.count)


class TestUnionAll:
    @given(bitmap_list())
    @settings(max_examples=100)
    def test_union_all_bit_identical(self, data):
        num_bits, bitmaps = data
        union = lambda: WahBitmap.union_all(
            bitmaps, num_bits=num_bits
        )
        assert _kernel(union).words == _scalar(union).words

    def test_union_all_empty_input(self):
        result = _kernel(
            lambda: WahBitmap.union_all([], num_bits=100)
        )
        assert result == WahBitmap.zeros(100)

    def test_union_all_length_mismatch_raises(self):
        bitmaps = [WahBitmap.zeros(31), WahBitmap.zeros(62)]
        with pytest.raises(BitmapLengthMismatchError):
            _kernel(lambda: WahBitmap.union_all(bitmaps))


class TestLargerDeterministicCases:
    """Seeded larger-scale cases beyond hypothesis' size sweet spot."""

    NUM_BITS = 200_013  # deliberately not a multiple of 31

    @pytest.mark.parametrize(
        "density", [1e-4, 1e-3, 1e-2, 0.05, 0.3, 0.5, 0.9, 0.999]
    )
    def test_dense_sweep_bit_identical(self, density):
        rng = np.random.default_rng(int(density * 1e6))
        a = WahBitmap.from_dense(
            rng.random(self.NUM_BITS) < density
        )
        b = WahBitmap.from_dense(
            rng.random(self.NUM_BITS) < density
        )
        for op in (
            lambda: a & b,
            lambda: a | b,
            lambda: a ^ b,
            lambda: a.andnot(b),
            lambda: ~a,
        ):
            assert _kernel(op).words == _scalar(op).words
        assert _kernel(a.count) == _scalar(a.count)

    def test_many_way_union_bit_identical(self):
        rng = np.random.default_rng(42)
        bitmaps = [
            WahBitmap.from_positions(
                rng.choice(self.NUM_BITS, size=500, replace=False),
                self.NUM_BITS,
            )
            for _ in range(24)
        ]
        union = lambda: WahBitmap.union_all(bitmaps)
        assert _kernel(union).words == _scalar(union).words


class TestKernelPrimitives:
    def test_decode_encode_roundtrip_is_identity(self):
        rng = np.random.default_rng(9)
        bitmap = WahBitmap.from_positions(
            rng.choice(10_000, size=700, replace=False), 10_000
        )
        lengths, payloads = kernels.decode_words(bitmap.words)
        assert kernels.encode_runs(lengths, payloads) == list(
            bitmap.words
        )

    def test_encode_splits_oversized_fills_like_scalar(self):
        huge = 3 * kernels.MAX_FILL_GROUPS + 5
        words = kernels.encode_runs([huge, 1], [0, 0b1010])
        encoder = _WahEncoder()
        encoder.append_fill(0, huge)
        encoder.append_literal(0b1010)
        assert words == encoder.words

    def test_encode_collapses_uniform_literals(self):
        words = kernels.encode_runs(
            [1, 1, 1], [0, 0, LITERAL_PAYLOAD_MASK]
        )
        encoder = _WahEncoder()
        encoder.append_literal(0)
        encoder.append_literal(0)
        encoder.append_literal(LITERAL_PAYLOAD_MASK)
        assert words == encoder.words

    def test_encode_expands_non_uniform_multi_group_runs(self):
        # Hand-built input violating the literal-length-1 invariant.
        words = kernels.encode_runs([3], [0b101])
        assert words == [0b101, 0b101, 0b101]

    def test_binary_words_rejects_group_count_mismatch(self):
        a = WahBitmap.zeros(62).words
        b = WahBitmap.zeros(31).words
        with pytest.raises(BitmapDecodeError):
            kernels.binary_words(a, b, "or")

    def test_binary_words_rejects_unknown_op(self):
        words = WahBitmap.zeros(31).words
        with pytest.raises(ValueError):
            kernels.binary_words(words, words, "nand")

    def test_popcount32_matches_bit_count(self):
        rng = np.random.default_rng(3)
        values = rng.integers(
            0, 2**32, size=1000, dtype=np.uint64
        ).astype(np.int64)
        expected = [int(v).bit_count() for v in values]
        assert kernels.popcount32(values).tolist() == expected

    def test_mode_flag_roundtrip(self):
        assert kernels.kernel_mode() in kernels.KERNEL_MODES
        previous = kernels.set_kernel_mode("scalar")
        try:
            assert not kernels.kernels_enabled()
            with kernels.use_kernel_mode("numpy"):
                assert kernels.kernels_enabled()
            assert kernels.kernel_mode() == "scalar"
        finally:
            kernels.set_kernel_mode(previous)
        with pytest.raises(ValueError):
            kernels.set_kernel_mode("cuda")
