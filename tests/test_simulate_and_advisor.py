"""Tests for the workload simulator, the materialization advisor, the
restricted Alg. 3 DP, and plan explanation."""

from __future__ import annotations

import pytest

from repro.core.advisor import recommend_materialization
from repro.core.multi import select_cut_multi
from repro.core.opnodes import build_query_plan, leaf_only_plan
from repro.core.simulate import simulate_workload
from repro.core.single import hybrid_cut
from repro.core.workload_cost import (
    WorkloadNodeStats,
    case2_cut_cost,
    case3_cut_cost,
)
from repro.storage.diskmodel import DiskProfile
from repro.workload.generator import fraction_workload
from repro.workload.query import RangeQuery, Workload


@pytest.fixture
def workload100():
    return fraction_workload(100, 0.5, 15, seed=1)


@pytest.fixture
def stats100(tpch_catalog100, workload100):
    return WorkloadNodeStats(tpch_catalog100, workload100)


class TestSimulator:
    def test_case2_total_matches_evaluator(
        self, tpch_catalog100, workload100, stats100
    ):
        cut = select_cut_multi(
            tpch_catalog100, workload100, stats100
        ).cut
        simulation = simulate_workload(
            tpch_catalog100,
            workload100,
            cut.node_ids,
            cache_everything=True,
        )
        assert simulation.total_io_mb == pytest.approx(
            case2_cut_cost(stats100, cut.node_ids)
        )

    def test_case3_total_matches_evaluator(
        self, tpch_catalog100, workload100, stats100
    ):
        cut = select_cut_multi(
            tpch_catalog100, workload100, stats100
        ).cut
        simulation = simulate_workload(
            tpch_catalog100,
            workload100,
            cut.node_ids,
            cache_everything=False,
        )
        assert simulation.total_io_mb == pytest.approx(
            case3_cut_cost(stats100, cut.node_ids)
        )

    def test_empty_cut_simulation(
        self, tpch_catalog100, workload100, stats100
    ):
        simulation = simulate_workload(
            tpch_catalog100, workload100, (), cache_everything=True
        )
        assert simulation.pin_io_mb == 0.0
        assert simulation.total_io_mb == pytest.approx(
            stats100.leaf_only_cost_case2()
        )

    def test_traces_cover_every_query(
        self, tpch_catalog100, workload100
    ):
        simulation = simulate_workload(
            tpch_catalog100, workload100, ()
        )
        assert len(simulation.traces) == len(workload100)
        assert simulation.traces[0].label == workload100[0].label

    def test_estimated_seconds_positive_and_device_ordered(
        self, tpch_catalog100, workload100
    ):
        simulation = simulate_workload(
            tpch_catalog100, workload100, ()
        )
        sata = simulation.estimated_seconds(DiskProfile.sata_7200())
        nvme = simulation.estimated_seconds(DiskProfile.nvme())
        assert 0 < nvme < sata

    def test_to_text_contains_totals(
        self, tpch_catalog100, workload100
    ):
        simulation = simulate_workload(
            tpch_catalog100, workload100, ()
        )
        text = simulation.to_text()
        assert "total" in text
        assert "pin cut" in text


class TestRestrictedDP:
    def test_empty_allowed_set_is_leaf_only(
        self, tpch_catalog100, workload100, stats100
    ):
        result = select_cut_multi(
            tpch_catalog100,
            workload100,
            stats100,
            allowed_node_ids=set(),
        )
        assert result.cost == pytest.approx(
            stats100.leaf_only_cost_case2()
        )

    def test_full_allowed_set_matches_unrestricted(
        self, tpch_catalog100, workload100, stats100
    ):
        everything = set(
            tpch_catalog100.hierarchy.internal_ids_postorder()
        )
        restricted = select_cut_multi(
            tpch_catalog100,
            workload100,
            stats100,
            allowed_node_ids=everything,
        )
        unrestricted = select_cut_multi(
            tpch_catalog100, workload100, stats100
        )
        assert restricted.cost == pytest.approx(unrestricted.cost)

    def test_restriction_is_monotone(
        self, tpch_catalog100, workload100, stats100
    ):
        unrestricted = select_cut_multi(
            tpch_catalog100, workload100, stats100
        )
        some = set(
            list(
                tpch_catalog100.hierarchy.internal_ids_postorder()
            )[:5]
        )
        restricted = select_cut_multi(
            tpch_catalog100,
            workload100,
            stats100,
            allowed_node_ids=some,
        )
        assert restricted.cost >= unrestricted.cost - 1e-9
        assert (
            restricted.cost
            <= stats100.leaf_only_cost_case2() + 1e-9
        )


class TestAdvisor:
    def test_budget_respected(
        self, tpch_catalog100, workload100, stats100
    ):
        plan = recommend_materialization(
            tpch_catalog100, workload100, 100.0, stats100
        )
        used = sum(
            tpch_catalog100.size_mb(node_id)
            for node_id in plan.node_ids
        )
        assert used <= 100.0 + 1e-9
        assert plan.disk_mb == pytest.approx(used)

    def test_zero_budget_keeps_leaf_only_cost(
        self, tpch_catalog100, workload100, stats100
    ):
        plan = recommend_materialization(
            tpch_catalog100, workload100, 0.0, stats100
        )
        # Only zero-size bitmaps can be picked for free.
        assert plan.disk_mb == pytest.approx(0.0)
        assert plan.optimized_cost_mb <= plan.baseline_cost_mb

    def test_savings_never_negative_and_monotone_in_budget(
        self, tpch_catalog100, workload100, stats100
    ):
        costs = []
        for budget in (0.0, 60.0, 200.0, 10_000.0):
            plan = recommend_materialization(
                tpch_catalog100, workload100, budget, stats100
            )
            assert plan.saving_mb >= -1e-9
            assert 0.0 <= plan.saving_fraction <= 1.0
            costs.append(plan.optimized_cost_mb)
        assert costs == sorted(costs, reverse=True)

    def test_huge_budget_reaches_unrestricted_optimum(
        self, tpch_catalog100, workload100, stats100
    ):
        plan = recommend_materialization(
            tpch_catalog100, workload100, 1e9, stats100
        )
        optimum = select_cut_multi(
            tpch_catalog100, workload100, stats100
        ).cost
        # Greedy marginal picks can stop slightly short of optimal,
        # but in practice reach it on these instances.
        assert plan.optimized_cost_mb <= optimum * 1.05 + 1e-9

    def test_max_picks_cap(
        self, tpch_catalog100, workload100, stats100
    ):
        plan = recommend_materialization(
            tpch_catalog100,
            workload100,
            1e9,
            stats100,
            max_picks=2,
        )
        assert len(plan.node_ids) <= 2

    def test_negative_budget_rejected(
        self, tpch_catalog100, workload100
    ):
        with pytest.raises(ValueError):
            recommend_materialization(
                tpch_catalog100, workload100, -1.0
            )


class TestPlanExplain:
    def test_explain_names_paper_example(
        self, us_hierarchy, paper_cost_model
    ):
        import numpy as np

        from repro.storage.catalog import ModeledNodeCatalog

        catalog = ModeledNodeCatalog(
            us_hierarchy,
            np.full(6, 1 / 6),
            paper_cost_model,
            150_000_000,
        )
        query = RangeQuery([(0, us_hierarchy.leaf_value("PHX"))])
        root = us_hierarchy.root_id
        from repro.core.costs import StrategyLabel

        plan = build_query_plan(
            catalog,
            query,
            [root],
            labels={root: StrategyLabel.EXCLUSIVE},
        )
        text = plan.explain(catalog)
        assert "U.S. ANDNOT" in text
        assert "Tempe" in text and "Tucson" in text
        assert "predicted IO" in text

    def test_explain_without_catalog(self, tpch_catalog100):
        query = RangeQuery([(0, 9)])
        plan = leaf_only_plan(tpch_catalog100, query)
        text = plan.explain()
        assert "leaf0" in text
        assert "more" in text  # long leaf lists are elided

    def test_explain_complete_atom(self, tpch_catalog100):
        query = RangeQuery([(0, 99)])
        selection = hybrid_cut(tpch_catalog100, query)
        plan = build_query_plan(
            tpch_catalog100,
            query,
            selection.cut.node_ids,
            labels=selection.labels,
        )
        assert "[complete " in plan.explain(tpch_catalog100)
