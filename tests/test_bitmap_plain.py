"""Unit tests for the plain reference bitmap."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitmap.plain import PlainBitmap
from repro.errors import BitmapLengthMismatchError


class TestConstruction:
    def test_zeros_and_ones(self):
        assert PlainBitmap.zeros(8).count() == 0
        assert PlainBitmap.ones(8).count() == 8

    def test_from_positions(self):
        bitmap = PlainBitmap.from_positions([0, 3, 7], 8)
        assert bitmap.to_positions().tolist() == [0, 3, 7]

    def test_from_positions_out_of_range(self):
        with pytest.raises(ValueError):
            PlainBitmap.from_positions([8], 8)

    def test_from_dense_roundtrip(self):
        dense = np.array([True, False, True, True])
        bitmap = PlainBitmap.from_dense(dense)
        np.testing.assert_array_equal(bitmap.to_dense(), dense)

    def test_value_beyond_length_rejected(self):
        with pytest.raises(ValueError):
            PlainBitmap(3, 0b1000)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            PlainBitmap(-1)


class TestOperations:
    def test_and_or_xor_andnot(self):
        a = PlainBitmap.from_positions([0, 1, 2], 8)
        b = PlainBitmap.from_positions([1, 2, 3], 8)
        assert (a & b).to_positions().tolist() == [1, 2]
        assert (a | b).to_positions().tolist() == [0, 1, 2, 3]
        assert (a ^ b).to_positions().tolist() == [0, 3]
        assert a.andnot(b).to_positions().tolist() == [0]

    def test_invert_respects_length(self):
        bitmap = PlainBitmap.from_positions([0], 3)
        assert (~bitmap).to_positions().tolist() == [1, 2]

    def test_length_mismatch(self):
        with pytest.raises(BitmapLengthMismatchError):
            _ = PlainBitmap.zeros(4) | PlainBitmap.zeros(5)

    def test_get(self):
        bitmap = PlainBitmap.from_positions([2], 4)
        assert bitmap.get(2)
        assert not bitmap.get(1)
        with pytest.raises(IndexError):
            bitmap.get(4)

    def test_density_of_empty_domain(self):
        assert PlainBitmap.zeros(0).density() == 0.0

    def test_iter_positions(self):
        bitmap = PlainBitmap.from_positions([5, 1], 8)
        assert list(bitmap.iter_positions()) == [1, 5]

    def test_positions_above_64_bit_boundary(self):
        positions = [63, 64, 65, 128, 200]
        bitmap = PlainBitmap.from_positions(positions, 256)
        assert bitmap.to_positions().tolist() == positions


class TestDunder:
    def test_equality_and_hash(self):
        a = PlainBitmap.from_positions([1], 8)
        b = PlainBitmap.from_positions([1], 8)
        assert a == b
        assert hash(a) == hash(b)
        assert a != PlainBitmap.from_positions([1], 9)
        assert a != object()

    def test_len_and_repr(self):
        bitmap = PlainBitmap.from_positions([1, 2], 8)
        assert len(bitmap) == 8
        assert "count=2" in repr(bitmap)
