"""Cross-cutting property tests on random instances.

These tie the whole stack together: random hierarchies, random
distributions, and random (multi-range) workloads, checked for the
paper's optimality/consistency invariants end to end.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import (
    exhaustive_constrained_optimum,
    sample_antichain,
)
from repro.core.constrained import k_cut_selection, one_cut_selection
from repro.core.multi import select_cut_multi
from repro.core.opnodes import build_query_plan
from repro.core.simulate import simulate_workload
from repro.core.single import hybrid_cut
from repro.core.workload_cost import (
    WorkloadNodeStats,
    case2_cut_cost,
    case3_cut_cost,
)
from repro.hierarchy.cuts import Cut
from repro.hierarchy.tree import Hierarchy
from repro.storage.catalog import ModeledNodeCatalog
from repro.storage.costmodel import CostModel
from repro.workload.query import RangeQuery, Workload


def _random_instance(seed: int, num_queries: int):
    """A random hierarchy + distribution + multi-range workload."""
    rng = np.random.default_rng(seed)

    def random_spec(depth):
        if depth == 0:
            return int(rng.integers(1, 5))
        width = int(rng.integers(1, 4))
        return [random_spec(depth - 1) for _ in range(width)]

    hierarchy = Hierarchy.from_nested(
        random_spec(int(rng.integers(1, 4)))
    )
    num_leaves = hierarchy.num_leaves
    catalog = ModeledNodeCatalog(
        hierarchy,
        rng.dirichlet(np.ones(num_leaves)),
        CostModel.paper_2014(),
        150_000_000,
    )
    queries = []
    for _ in range(num_queries):
        num_specs = int(rng.integers(1, 3))
        specs = []
        for _ in range(num_specs):
            start = int(rng.integers(0, num_leaves))
            end = int(
                rng.integers(start, min(num_leaves, start + 6))
            )
            specs.append((start, min(end, num_leaves - 1)))
        queries.append(RangeQuery(specs))
    return catalog, Workload(queries)


@given(
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=1, max_value=5),
)
@settings(max_examples=25, deadline=None)
def test_simulator_agrees_with_evaluators_on_random_cuts(
    seed, num_queries
):
    catalog, workload = _random_instance(seed, num_queries)
    stats = WorkloadNodeStats(catalog, workload)
    rng = np.random.default_rng(seed ^ 0xBEEF)
    members = sample_antichain(catalog.hierarchy, rng)
    case2 = simulate_workload(
        catalog, workload, members, cache_everything=True
    )
    assert case2.total_io_mb == pytest.approx(
        case2_cut_cost(stats, members)
    )
    case3 = simulate_workload(
        catalog, workload, members, cache_everything=False
    )
    assert case3.total_io_mb == pytest.approx(
        case3_cut_cost(stats, members)
    )


@given(
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=1, max_value=5),
    st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=25, deadline=None)
def test_constrained_greedy_vs_exhaustive_on_random_instances(
    seed, num_queries, budget_fraction
):
    catalog, workload = _random_instance(seed, num_queries)
    stats = WorkloadNodeStats(catalog, workload)
    total_internal_size = sum(
        catalog.size_mb(node_id)
        for node_id in catalog.hierarchy.internal_ids_postorder()
    )
    budget = budget_fraction * total_internal_size
    optimum = exhaustive_constrained_optimum(
        catalog, workload, budget, stats
    )
    greedy = one_cut_selection(catalog, workload, budget, stats)
    multi = k_cut_selection(catalog, workload, budget, 10, stats)
    # Exhaustive is a true lower bound; greedy cuts respect budget.
    assert greedy.cost >= optimum.cost - 1e-9
    assert multi.cost >= optimum.cost - 1e-9
    assert multi.cost <= greedy.cost + 1e-9
    for result in (greedy, multi):
        used = sum(
            catalog.size_mb(member)
            for member in result.cut.node_ids
        )
        assert used <= budget + 1e-9
        Cut(catalog.hierarchy, result.cut.node_ids)  # antichain


@given(
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=25, deadline=None)
def test_multi_range_queries_flow_through_every_algorithm(
    seed, num_queries
):
    """Queries with several disjoint ranges keep every invariant."""
    catalog, workload = _random_instance(seed, num_queries)
    stats = WorkloadNodeStats(catalog, workload)
    # Case 1 per query: DP cost == plan predicted cost, cut complete.
    for query in workload:
        selection = hybrid_cut(catalog, query)
        plan = build_query_plan(
            catalog,
            query,
            selection.cut.node_ids,
            labels=selection.labels,
        )
        assert plan.predicted_cost_mb == pytest.approx(
            selection.cost
        )
    # Case 2: DP == evaluator and <= leaf-only.
    result = select_cut_multi(catalog, workload, stats)
    assert result.cost == pytest.approx(
        case2_cut_cost(stats, result.cut.node_ids)
    )
    assert result.cost <= stats.leaf_only_cost_case2() + 1e-9


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=15, deadline=None)
def test_executed_io_matches_prediction_on_random_materialized(
    seed
):
    """Plans over real bitmaps incur exactly the predicted bytes."""
    from repro.core.executor import QueryExecutor, scan_answer
    from repro.storage.cache import BufferPool
    from repro.storage.catalog import MaterializedNodeCatalog
    from repro.workload.datagen import sample_column

    rng = np.random.default_rng(seed)
    hierarchy = Hierarchy.from_nested(
        [int(rng.integers(2, 5)) for _ in range(3)]
    )
    num_leaves = hierarchy.num_leaves
    probabilities = rng.dirichlet(np.ones(num_leaves))
    column = sample_column(probabilities, 3000, seed=seed)
    catalog = MaterializedNodeCatalog(hierarchy, column)
    start = int(rng.integers(0, num_leaves))
    end = int(rng.integers(start, num_leaves))
    query = RangeQuery([(start, end)])
    selection = hybrid_cut(catalog, query)
    plan = build_query_plan(
        catalog,
        query,
        selection.cut.node_ids,
        labels=selection.labels,
    )
    executor = QueryExecutor(
        catalog, BufferPool(catalog.store, budget_bytes=0)
    )
    result = executor.execute_plan(plan)
    assert result.answer == scan_answer(column, query)
    assert result.io_mb == pytest.approx(plan.predicted_cost_mb)
