"""Tests for the dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload.datagen import (
    normal_leaf_probabilities,
    sample_column,
    tpch_acctbal_leaf_probabilities,
    uniform_leaf_probabilities,
    zipf_leaf_probabilities,
)


@pytest.mark.parametrize(
    "factory",
    [
        uniform_leaf_probabilities,
        normal_leaf_probabilities,
        tpch_acctbal_leaf_probabilities,
        zipf_leaf_probabilities,
    ],
)
@pytest.mark.parametrize("num_leaves", [1, 2, 20, 100, 1000])
def test_distributions_are_valid(factory, num_leaves):
    probabilities = factory(num_leaves)
    assert probabilities.shape == (num_leaves,)
    assert (probabilities >= 0).all()
    assert probabilities.sum() == pytest.approx(1.0)


@pytest.mark.parametrize(
    "factory",
    [
        uniform_leaf_probabilities,
        normal_leaf_probabilities,
        tpch_acctbal_leaf_probabilities,
        zipf_leaf_probabilities,
    ],
)
def test_invalid_domain_rejected(factory):
    with pytest.raises(ValueError):
        factory(0)


class TestNormal:
    def test_mass_concentrates_at_the_mean(self):
        probabilities = normal_leaf_probabilities(101)
        center = probabilities[45:56].sum()
        tails = probabilities[:10].sum() + probabilities[-10:].sum()
        assert center > tails

    def test_symmetry(self):
        probabilities = normal_leaf_probabilities(100)
        np.testing.assert_allclose(
            probabilities, probabilities[::-1], rtol=1e-9
        )

    def test_mean_fraction_shifts_peak(self):
        shifted = normal_leaf_probabilities(100, mean_fraction=0.2)
        assert shifted.argmax() < 35


class TestTpchAcctbal:
    def test_has_spikes_over_near_uniform_base(self):
        probabilities = tpch_acctbal_leaf_probabilities(
            100, num_spikes=8, spike_multiplier=4.0
        )
        median = np.median(probabilities)
        spikes = (probabilities > 2.5 * median).sum()
        assert spikes == 8

    def test_deterministic_per_seed(self):
        a = tpch_acctbal_leaf_probabilities(100, seed=1)
        b = tpch_acctbal_leaf_probabilities(100, seed=1)
        np.testing.assert_array_equal(a, b)
        c = tpch_acctbal_leaf_probabilities(100, seed=2)
        assert not np.array_equal(a, c)

    def test_default_spike_count_scales(self):
        probabilities = tpch_acctbal_leaf_probabilities(24)
        assert probabilities.shape == (24,)


class TestZipf:
    def test_head_is_heaviest(self):
        probabilities = zipf_leaf_probabilities(50)
        assert probabilities[0] == probabilities.max()
        assert (np.diff(probabilities) <= 0).all()

    def test_exponent_validation(self):
        with pytest.raises(ValueError):
            zipf_leaf_probabilities(10, exponent=0)


class TestSampleColumn:
    def test_shape_dtype_and_range(self):
        probabilities = uniform_leaf_probabilities(7)
        column = sample_column(probabilities, 1000, seed=0)
        assert column.shape == (1000,)
        assert column.dtype == np.int64
        assert column.min() >= 0 and column.max() < 7

    def test_respects_distribution(self):
        probabilities = np.array([0.9, 0.1])
        column = sample_column(probabilities, 20_000, seed=0)
        fraction = (column == 0).mean()
        assert fraction == pytest.approx(0.9, abs=0.02)

    def test_deterministic_per_seed(self):
        probabilities = uniform_leaf_probabilities(5)
        a = sample_column(probabilities, 100, seed=9)
        b = sample_column(probabilities, 100, seed=9)
        np.testing.assert_array_equal(a, b)

    def test_negative_rows_rejected(self):
        with pytest.raises(ValueError):
            sample_column(uniform_leaf_probabilities(3), -1)
