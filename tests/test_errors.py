"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import (
    BitmapDecodeError,
    BitmapError,
    BitmapLengthMismatchError,
    BudgetExceededError,
    CalibrationError,
    HierarchyError,
    InvalidCutError,
    ReproError,
    StorageError,
    WorkloadError,
)


def test_all_errors_derive_from_repro_error():
    for error_type in (
        BitmapError,
        BitmapDecodeError,
        BitmapLengthMismatchError,
        HierarchyError,
        InvalidCutError,
        WorkloadError,
        StorageError,
        BudgetExceededError,
        CalibrationError,
    ):
        assert issubclass(error_type, ReproError)


def test_bitmap_errors_derive_from_bitmap_error():
    assert issubclass(BitmapLengthMismatchError, BitmapError)
    assert issubclass(BitmapDecodeError, BitmapError)


def test_length_mismatch_carries_operands():
    error = BitmapLengthMismatchError(10, 20)
    assert error.left_bits == 10
    assert error.right_bits == 20
    assert "10" in str(error) and "20" in str(error)


def test_budget_exceeded_carries_sizes():
    error = BudgetExceededError(1000, 500)
    assert error.required_bytes == 1000
    assert error.budget_bytes == 500
    assert issubclass(BudgetExceededError, StorageError)


def test_catching_repro_error_catches_everything():
    with pytest.raises(ReproError):
        raise InvalidCutError("bad cut")
