"""Concurrency tests for the thread-safe buffer pool.

Three layers:

* deterministic single-flight tests using a store whose reads block on
  an event, so the test controls exactly when the in-flight window is
  open;
* a hypothesis property test interleaving ``pin`` / ``get`` /
  ``invalidate`` / ``reload`` / ``unpin_all`` / ``clear`` and checking
  the budget invariant after every operation;
* ``stress``-marked hammer tests that run real thread traffic under a
  1µs switch interval (see the autouse fixture in ``conftest.py``).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BudgetExceededError, StorageReadError
from repro.obs import collecting_metrics
from repro.storage.accounting import IOAccountant
from repro.storage.cache import BufferPool
from repro.storage.filestore import BitmapFileStore

NAMES = [f"node_{index}.wah" for index in range(5)]
SIZES = {name: 100 * (index + 1) for index, name in enumerate(NAMES)}


def _fresh_store() -> BitmapFileStore:
    store = BitmapFileStore()
    for name, size in SIZES.items():
        store.write(name, bytes(size))
    return store


class _BlockingStore(BitmapFileStore):
    """A store whose reads block until the test releases them."""

    def __init__(self):
        super().__init__()
        self.release = threading.Event()
        self.entered = threading.Event()
        self.read_calls = 0
        self._count_lock = threading.Lock()

    def read(self, name: str) -> bytes:
        with self._count_lock:
            self.read_calls += 1
        self.entered.set()
        assert self.release.wait(timeout=10), "test never released read"
        return super().read(name)


class _FailingOnceStore(BitmapFileStore):
    """First read of each name fails; later reads succeed."""

    def __init__(self):
        super().__init__()
        self._failed: set[str] = set()
        self._lock = threading.Lock()

    def read(self, name: str) -> bytes:
        with self._lock:
            first = name not in self._failed
            self._failed.add(name)
        if first:
            raise StorageReadError(name, 0, "injected first-read failure")
        return super().read(name)


class TestSingleFlight:
    def test_concurrent_misses_fetch_once(self):
        store = _BlockingStore()
        store.write("a.wah", bytes(100))
        pool = BufferPool(store)
        barrier = threading.Barrier(4)

        def fetch() -> bytes:
            barrier.wait()
            return pool.get("a.wah")

        with collecting_metrics() as metrics:
            with ThreadPoolExecutor(max_workers=4) as tpe:
                futures = [tpe.submit(fetch) for _ in range(4)]
                assert store.entered.wait(timeout=10)
                # Give the three non-leaders time to join the flight
                # (the leader is parked inside read() until released).
                threading.Event().wait(0.1)
                store.release.set()
                payloads = [future.result() for future in futures]
        assert store.read_calls == 1
        assert pool.accountant.read_count == 1
        assert pool.accountant.bytes_read == 100
        assert all(payload == bytes(100) for payload in payloads)
        assert metrics.counter("cache_singleflight_waits_total") >= 1

    def test_leader_failure_propagates_then_clears(self):
        store = _FailingOnceStore()
        store.write("a.wah", bytes(100))
        pool = BufferPool(store)
        with pytest.raises(StorageReadError):
            pool.get("a.wah")
        # The failed flight must not wedge the name: the next get
        # starts a fresh fetch and succeeds.
        assert pool.get("a.wah") == bytes(100)

    def test_reload_bypasses_inflight_payloads(self):
        """reload() must hit storage even when a get is in flight —
        joining the flight could return the stale pre-update bytes."""
        store = _fresh_store()
        pool = BufferPool(store)
        pool.get(NAMES[0])
        store.write(NAMES[0], bytes(7))
        assert pool.reload(NAMES[0]) == bytes(7)
        assert pool.get(NAMES[0]) == bytes(7)

    def test_invalidate_drops_inflight_entry(self):
        """invalidate() of a name mid-fetch abandons the flight.

        When a scrubber quarantines a file, a leader may be mid-read
        of the condemned bytes; requesters arriving after the
        invalidate must start a fresh fetch instead of joining the
        stale flight — and the abandoned leader's completion must not
        cancel the successor flight's deduplication.
        """
        store = _BlockingStore()
        store.write("a.wah", bytes(100))
        pool = BufferPool(store)
        with ThreadPoolExecutor(max_workers=2) as tpe:
            first = tpe.submit(pool.get, "a.wah")
            assert store.entered.wait(timeout=10)
            # The file is condemned while the leader is parked inside
            # the store read.
            pool.invalidate("a.wah")
            second = tpe.submit(pool.get, "a.wah")
            # The second get must be a fresh leader (read_calls -> 2),
            # not a waiter on the first flight.
            deadline = threading.Event()
            for _ in range(100):
                if store.read_calls == 2:
                    break
                deadline.wait(0.05)
            assert store.read_calls == 2
            store.release.set()
            assert first.result() == bytes(100)
            assert second.result() == bytes(100)
        # Both flights retired; the dedup table is empty again.
        assert pool._inflight == {}

    def test_invalidate_drops_whole_node_group_and_its_flight(self):
        """Regression: invalidating a node whose base *and* delta
        payloads are resident drops both tiers' copies and any
        in-flight fetch of a group member — compaction must never
        leave a reader able to pair a fresh base with a stale delta.
        """
        from repro.storage.manifest import delta_file_name

        base = "node_3.wah"
        delta_one = delta_file_name(1, 3)
        delta_two = delta_file_name(2, 3)
        bystander = "node_4.wah"
        store = _BlockingStore()
        for name, size in [
            (base, 100),
            (delta_one, 40),
            (delta_two, 60),
            (bystander, 80),
        ]:
            store.write(name, bytes(size))
        pool = BufferPool(store)  # unbounded -> gets are LRU-cached
        store.release.set()  # pre-population reads run unblocked
        pool.pin([base])  # pinned tier
        pool.get(delta_one)  # LRU tier
        pool.get(bystander)
        store.release.clear()

        with collecting_metrics() as metrics:
            with ThreadPoolExecutor(max_workers=2) as tpe:
                # A leader parked mid-read of the second delta.
                first = tpe.submit(pool.get, delta_two)
                assert store.entered.wait(timeout=10)
                calls_before = store.read_calls

                pool.invalidate(base)

                assert not pool.contains(base)
                assert not pool.contains(delta_one)
                assert pool.contains(bystander)  # different node
                assert pool.pinned_bytes == 0
                # The parked flight was abandoned: a new requester
                # becomes a fresh leader instead of joining it.
                second = tpe.submit(pool.get, delta_two)
                for _ in range(100):
                    if store.read_calls > calls_before:
                        break
                    threading.Event().wait(0.05)
                assert store.read_calls == calls_before + 1
                store.release.set()
                assert first.result() == bytes(60)
                assert second.result() == bytes(60)
        assert pool._inflight == {}
        assert (
            metrics.counter("cache_invalidations_total", tier="pinned")
            == 1
        )
        assert (
            metrics.counter("cache_invalidations_total", tier="lru")
            == 1
        )

    def test_invalidating_a_delta_name_drops_the_base_too(self):
        from repro.storage.manifest import delta_file_name

        base = "node_2.wah"
        delta = delta_file_name(5, 2)
        store = _fresh_store()
        store.write(base, bytes(50))
        store.write(delta, bytes(20))
        pool = BufferPool(store)
        pool.get(base)
        pool.get(delta)
        pool.invalidate(delta)
        assert not pool.contains(base)
        assert not pool.contains(delta)


class TestBudgetInvariantProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        operations=st.lists(
            st.tuples(
                st.sampled_from(
                    [
                        "pin",
                        "get",
                        "invalidate",
                        "reload",
                        "unpin_all",
                        "clear",
                    ]
                ),
                st.sampled_from(NAMES),
            ),
            max_size=30,
        ),
        budget=st.integers(min_value=0, max_value=1200),
        spare_lru=st.booleans(),
    )
    def test_budget_holds_under_any_interleaving(
        self, operations, budget, spare_lru
    ):
        """``resident_bytes <= budget_bytes`` after every operation, no
        matter how pins, reads, invalidations, and reloads interleave,
        and residency always decomposes into pinned + LRU bytes."""
        pool = BufferPool(
            _fresh_store(),
            budget_bytes=budget,
            use_spare_budget_lru=spare_lru,
        )
        for operation, name in operations:
            try:
                if operation == "pin":
                    pool.pin([name])
                elif operation == "get":
                    pool.get(name)
                elif operation == "invalidate":
                    pool.invalidate(name)
                elif operation == "reload":
                    pool.reload(name)
                elif operation == "unpin_all":
                    pool.unpin_all()
                else:
                    pool.clear()
            except BudgetExceededError:
                pass
            assert pool.resident_bytes <= budget
            assert (
                pool.pinned_bytes + pool.lru_bytes
                == pool.resident_bytes
            )


@pytest.mark.stress
class TestHammer:
    """Thread hammers under a 1µs switch interval."""

    WORKERS = 8
    ROUNDS = 60

    def test_get_hammer_keeps_payloads_and_budget_correct(self):
        pool = BufferPool(
            _fresh_store(),
            budget_bytes=600,
            use_spare_budget_lru=True,
        )
        errors: list[Exception] = []

        def worker(worker_index: int) -> None:
            try:
                for round_index in range(self.ROUNDS):
                    name = NAMES[
                        (worker_index + round_index) % len(NAMES)
                    ]
                    payload = pool.get(name)
                    assert len(payload) == SIZES[name]
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(self.WORKERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert pool.resident_bytes <= pool.budget_bytes
        accountant = pool.accountant
        assert accountant.bytes_read == sum(
            SIZES[name] * count
            for name, count in accountant.reads_by_name.items()
        )

    def test_pin_invalidate_get_hammer_holds_invariants(self):
        pool = BufferPool(
            _fresh_store(),
            budget_bytes=800,
            use_spare_budget_lru=True,
        )
        errors: list[Exception] = []

        def worker(worker_index: int) -> None:
            try:
                for round_index in range(self.ROUNDS):
                    name = NAMES[
                        (worker_index * 3 + round_index) % len(NAMES)
                    ]
                    action = (worker_index + round_index) % 4
                    if action == 0:
                        try:
                            pool.pin([name])
                        except BudgetExceededError:
                            pass
                    elif action == 1:
                        pool.invalidate(name)
                    elif action == 2:
                        pool.unpin_all()
                    else:
                        payload = pool.get(name)
                        assert len(payload) == SIZES[name]
                    assert (
                        pool.resident_bytes <= pool.budget_bytes
                    )
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(self.WORKERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert pool.resident_bytes <= pool.budget_bytes

    def test_attribution_fanout_sums_exactly(self):
        """Per-thread attributed accountants must sum to the shared
        accountant's delta even when every read races (streamed pool:
        no LRU, so every get is real IO or a shared single-flight)."""
        pool = BufferPool(_fresh_store(), budget_bytes=0)
        locals_: list[IOAccountant] = [
            IOAccountant() for _ in range(self.WORKERS)
        ]
        errors: list[Exception] = []

        def worker(worker_index: int) -> None:
            try:
                with pool.attributing(locals_[worker_index]):
                    for round_index in range(self.ROUNDS):
                        name = NAMES[
                            (worker_index + round_index) % len(NAMES)
                        ]
                        pool.get(name)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(self.WORKERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        attributed = sum(local.bytes_read for local in locals_)
        assert attributed == pool.accountant.bytes_read
        assert (
            sum(local.read_count for local in locals_)
            == pool.accountant.read_count
        )
