"""Tests for the memory-budgeted buffer pool."""

from __future__ import annotations

import pytest

from repro.bitmap.plain import PlainBitmap
from repro.bitmap.plwah import PlwahBitmap
from repro.bitmap.roaring import RoaringBitmap
from repro.bitmap.serialization import serialize_bitmap
from repro.bitmap.wah import WahBitmap
from repro.errors import BudgetExceededError, StorageError
from repro.obs import collecting_metrics, recording
from repro.storage.accounting import IOAccountant
from repro.storage.cache import BufferPool
from repro.storage.filestore import BitmapFileStore


@pytest.fixture
def store() -> BitmapFileStore:
    store = BitmapFileStore()
    for index in range(5):
        store.write(f"node_{index}.wah", bytes(100 * (index + 1)))
    return store


class TestUnboundedPool:
    def test_reads_charged_once_then_cached(self, store):
        pool = BufferPool(store)
        pool.get("node_0.wah")
        pool.get("node_0.wah")
        pool.get("node_0.wah")
        assert pool.accountant.read_count == 1
        assert pool.accountant.bytes_read == 100

    def test_distinct_files_each_charged(self, store):
        pool = BufferPool(store)
        pool.get("node_0.wah")
        pool.get("node_1.wah")
        assert pool.accountant.bytes_read == 300


class TestPinning:
    def test_pin_reads_each_file_once(self, store):
        pool = BufferPool(store, budget_bytes=1000)
        pool.pin(["node_0.wah", "node_1.wah"])
        assert pool.accountant.bytes_read == 300
        pool.get("node_0.wah")
        pool.get("node_1.wah")
        assert pool.accountant.bytes_read == 300
        assert pool.pinned_bytes == 300

    def test_pin_over_budget_raises_without_partial_pin(self, store):
        pool = BufferPool(store, budget_bytes=250)
        with pytest.raises(BudgetExceededError):
            pool.pin(["node_0.wah", "node_1.wah"])
        assert pool.pinned_bytes == 0

    def test_repinning_is_idempotent(self, store):
        pool = BufferPool(store, budget_bytes=1000)
        pool.pin(["node_0.wah"])
        pool.pin(["node_0.wah"])
        assert pool.accountant.read_count == 1

    def test_unpin_all(self, store):
        pool = BufferPool(store, budget_bytes=1000)
        pool.pin(["node_0.wah"])
        pool.unpin_all()
        assert pool.pinned_bytes == 0
        pool.get("node_0.wah")
        assert pool.accountant.read_count == 2


class TestBudgetedStreaming:
    def test_unpinned_reads_are_streamed_by_default(self, store):
        """Case-3 semantics: non-cut bitmaps re-read on every access."""
        pool = BufferPool(store, budget_bytes=1000)
        pool.get("node_0.wah")
        pool.get("node_0.wah")
        assert pool.accountant.read_count == 2

    def test_spare_budget_lru_caches_within_budget(self, store):
        pool = BufferPool(
            store, budget_bytes=350, use_spare_budget_lru=True
        )
        pool.pin(["node_0.wah"])  # 100 bytes pinned, 250 spare
        pool.get("node_1.wah")  # 200 bytes -> cached in spare
        pool.get("node_1.wah")
        assert pool.accountant.read_count == 2  # pin + one fetch

    def test_spare_budget_lru_evicts_oldest(self, store):
        pool = BufferPool(
            store, budget_bytes=400, use_spare_budget_lru=True
        )
        pool.get("node_1.wah")  # 200
        pool.get("node_2.wah")  # 300 -> evicts node_1
        pool.get("node_1.wah")  # re-read
        assert pool.accountant.read_count == 3

    def test_oversized_file_never_admitted(self, store):
        pool = BufferPool(
            store, budget_bytes=100, use_spare_budget_lru=True
        )
        pool.get("node_4.wah")  # 500 bytes > budget
        pool.get("node_4.wah")
        assert pool.accountant.read_count == 2

    def test_pin_after_lru_warm_keeps_resident_within_budget(
        self, store
    ):
        """Regression: pinning must shrink the LRU area it displaces.

        Warming the LRU first and pinning afterwards used to leave
        ``pinned + lru`` above the budget, violating the Case-3
        ``S_total`` constraint.
        """
        pool = BufferPool(
            store, budget_bytes=450, use_spare_budget_lru=True
        )
        pool.get("node_2.wah")  # 300 bytes cached in the LRU area
        assert pool.lru_bytes == 300
        pool.pin(["node_0.wah", "node_1.wah"])  # 300 bytes pinned
        assert pool.pinned_bytes == 300
        assert pool.resident_bytes <= pool.budget_bytes
        assert not pool.contains("node_2.wah")
        # The evicted file streams again on the next access.
        pool.get("node_2.wah")
        assert pool.accountant.reads_by_name["node_2.wah"] == 2

    def test_pin_evicts_only_until_budget_holds(self, store):
        pool = BufferPool(
            store, budget_bytes=600, use_spare_budget_lru=True
        )
        pool.get("node_0.wah")  # 100 in LRU
        pool.get("node_1.wah")  # 200 in LRU (300 total)
        pool.pin(["node_2.wah"])  # 300 pinned -> spare 300, LRU fits
        assert pool.resident_bytes <= pool.budget_bytes
        assert pool.contains("node_0.wah")
        assert pool.contains("node_1.wah")

    def test_pin_promoting_lru_entry_respects_budget(self, store):
        pool = BufferPool(
            store, budget_bytes=500, use_spare_budget_lru=True
        )
        pool.get("node_1.wah")  # 200 in LRU
        pool.get("node_2.wah")  # 300 in LRU (500 total)
        pool.pin(["node_1.wah"])  # promoted out of the LRU, no re-read
        assert pool.accountant.reads_by_name["node_1.wah"] == 1
        assert pool.resident_bytes <= pool.budget_bytes


class TestPinDuplicates:
    """Regression tests for the pin() double-counting bug.

    ``pin(["a", "a"])`` used to fetch the file twice, charge the
    accountant twice, and record ``pinned_bytes`` at twice the real
    residency — which then tripped ``BudgetExceededError`` on budgets
    the cut actually fits.
    """

    def test_duplicate_names_read_once(self, store):
        with collecting_metrics() as metrics:
            pool = BufferPool(store, budget_bytes=1000)
            pool.pin(["node_0.wah", "node_0.wah", "node_0.wah"])
        assert pool.accountant.read_count == 1
        assert pool.accountant.bytes_read == 100
        assert pool.pinned_bytes == 100
        assert metrics.counter("cache_pins_total") == 1

    def test_duplicates_fit_a_budget_the_file_fits(self, store):
        # 100-byte file, 150-byte budget: duplicates used to demand 300.
        pool = BufferPool(store, budget_bytes=150)
        pool.pin(["node_0.wah"] * 3)
        assert pool.pinned_bytes == 100
        assert pool.resident_bytes <= pool.budget_bytes

    def test_duplicates_mixed_with_new_names(self, store):
        pool = BufferPool(store, budget_bytes=1000)
        pool.pin(
            ["node_0.wah", "node_1.wah", "node_0.wah", "node_1.wah"]
        )
        assert pool.accountant.read_count == 2
        assert pool.pinned_bytes == 300
        assert pool.accountant.reads_by_name["node_0.wah"] == 1
        assert pool.accountant.reads_by_name["node_1.wah"] == 1


class _LyingStore(BitmapFileStore):
    """A store whose ``size_bytes`` underreports the payload length."""

    def size_bytes(self, name: str) -> int:
        return super().size_bytes(name) // 10


class TestAdmissionReconciliation:
    """pin() budgets with ``size_bytes`` estimates but must commit
    against actual payload lengths, keeping ``resident_bytes <=
    budget_bytes`` a real invariant even when the estimate lies."""

    def test_size_bytes_agrees_with_payload_for_every_codec(self):
        store = BitmapFileStore()
        bitmaps = {
            "wah": WahBitmap.from_positions([1, 5, 900], 2048),
            "plwah": PlwahBitmap.from_positions([1, 5, 900], 2048),
            "roaring": RoaringBitmap.from_positions([1, 5, 900], 2048),
            "plain": PlainBitmap.from_positions([1, 5, 900], 2048),
        }
        for name, bitmap in bitmaps.items():
            payload = serialize_bitmap(bitmap)
            store.write(f"{name}.bin", payload)
            assert store.size_bytes(f"{name}.bin") == len(payload)
            assert len(store.read(f"{name}.bin")) == len(payload)

    def test_lying_size_estimate_cannot_break_the_budget(self):
        store = _LyingStore()
        store.write("a.wah", bytes(100))
        store.write("b.wah", bytes(200))
        pool = BufferPool(store, budget_bytes=150)
        # Estimates (10 + 20 bytes) pass the pre-check; the actual
        # payloads (300 bytes) must still be rejected at commit.
        with pytest.raises(BudgetExceededError):
            pool.pin(["a.wah", "b.wah"])
        assert pool.pinned_bytes == 0
        assert pool.resident_bytes <= pool.budget_bytes
        assert not pool.contains("a.wah")
        assert not pool.contains("b.wah")

    def test_lying_estimate_within_budget_pins_at_true_size(self):
        store = _LyingStore()
        store.write("a.wah", bytes(100))
        pool = BufferPool(store, budget_bytes=150)
        pool.pin(["a.wah"])
        assert pool.pinned_bytes == 100  # true bytes, not the estimate
        assert pool.resident_bytes <= pool.budget_bytes


class TestInvalidationObservability:
    def test_invalidate_counts_by_tier(self, store):
        with collecting_metrics() as metrics:
            pool = BufferPool(store, budget_bytes=1000)
            pool.pin(["node_0.wah"])
            pool.invalidate("node_0.wah")
        assert (
            metrics.counter("cache_invalidations_total", tier="pinned")
            == 1
        )

    def test_invalidate_lru_entry_counts_lru_tier(self, store):
        with collecting_metrics() as metrics:
            pool = BufferPool(store)  # unbounded -> LRU caches
            pool.get("node_0.wah")
            pool.invalidate("node_0.wah")
        assert (
            metrics.counter("cache_invalidations_total", tier="lru")
            == 1
        )

    def test_invalidate_absent_name_counts_nothing(self, store):
        with collecting_metrics() as metrics:
            pool = BufferPool(store)
            pool.invalidate("node_0.wah")
        assert (
            metrics.counter("cache_invalidations_total", tier="lru")
            == 0
        )
        assert (
            metrics.counter("cache_invalidations_total", tier="pinned")
            == 0
        )

    def test_unpin_all_emits_clear_event_and_metric(self, store):
        pool = BufferPool(store, budget_bytes=1000)
        pool.pin(["node_0.wah", "node_1.wah"])
        with collecting_metrics() as metrics, recording() as collector:
            pool.unpin_all()
        clears = [
            event
            for event in collector.events
            if event.kind == "cache.clear"
        ]
        assert len(clears) == 1
        assert clears[0].name == "pinned"
        assert clears[0].attrs["files"] == 2
        assert clears[0].attrs["nbytes"] == 300
        assert (
            metrics.counter("cache_invalidations_total", tier="pinned")
            == 2
        )

    def test_clear_emits_events_for_both_tiers(self, store):
        pool = BufferPool(store, budget_bytes=1000)
        pool.pin(["node_0.wah"])
        unbounded = BufferPool(store)
        unbounded.get("node_1.wah")
        with recording() as collector:
            pool.clear()
            unbounded.clear()
        kinds = [
            (event.kind, event.name)
            for event in collector.events
            if event.kind == "cache.clear"
        ]
        assert ("cache.clear", "pinned") in kinds
        assert ("cache.clear", "lru") in kinds

    def test_empty_clear_is_silent(self, store):
        pool = BufferPool(store)
        with collecting_metrics() as metrics, recording() as collector:
            pool.clear()
            pool.unpin_all()
        assert not [
            event
            for event in collector.events
            if event.kind == "cache.clear"
        ]
        assert metrics.counter("cache_invalidations_total") == 0


class TestMisc:
    def test_custom_accountant(self, store):
        accountant = IOAccountant()
        pool = BufferPool(store, accountant=accountant)
        pool.get("node_0.wah")
        assert accountant.bytes_read == 100

    def test_negative_budget_rejected(self, store):
        with pytest.raises(ValueError):
            BufferPool(store, budget_bytes=-1)

    def test_contains_and_cached_names(self, store):
        pool = BufferPool(store)
        assert not pool.contains("node_0.wah")
        pool.get("node_0.wah")
        assert pool.contains("node_0.wah")
        assert "node_0.wah" in pool.cached_names

    def test_clear(self, store):
        pool = BufferPool(store)
        pool.get("node_0.wah")
        pool.clear()
        assert not pool.cached_names

    def test_verify_store_has(self, store):
        pool = BufferPool(store)
        pool.verify_store_has(["node_0.wah"])
        with pytest.raises(StorageError):
            pool.verify_store_has(["node_0.wah", "ghost.wah"])

    def test_missing_file_propagates(self, store):
        pool = BufferPool(store)
        with pytest.raises(StorageError):
            pool.get("ghost.wah")

    def test_repr(self, store):
        assert "unbounded" in repr(BufferPool(store))
        assert "100B" in repr(BufferPool(store, budget_bytes=100))
