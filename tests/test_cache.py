"""Tests for the memory-budgeted buffer pool."""

from __future__ import annotations

import pytest

from repro.errors import BudgetExceededError, StorageError
from repro.storage.accounting import IOAccountant
from repro.storage.cache import BufferPool
from repro.storage.filestore import BitmapFileStore


@pytest.fixture
def store() -> BitmapFileStore:
    store = BitmapFileStore()
    for index in range(5):
        store.write(f"node_{index}.wah", bytes(100 * (index + 1)))
    return store


class TestUnboundedPool:
    def test_reads_charged_once_then_cached(self, store):
        pool = BufferPool(store)
        pool.get("node_0.wah")
        pool.get("node_0.wah")
        pool.get("node_0.wah")
        assert pool.accountant.read_count == 1
        assert pool.accountant.bytes_read == 100

    def test_distinct_files_each_charged(self, store):
        pool = BufferPool(store)
        pool.get("node_0.wah")
        pool.get("node_1.wah")
        assert pool.accountant.bytes_read == 300


class TestPinning:
    def test_pin_reads_each_file_once(self, store):
        pool = BufferPool(store, budget_bytes=1000)
        pool.pin(["node_0.wah", "node_1.wah"])
        assert pool.accountant.bytes_read == 300
        pool.get("node_0.wah")
        pool.get("node_1.wah")
        assert pool.accountant.bytes_read == 300
        assert pool.pinned_bytes == 300

    def test_pin_over_budget_raises_without_partial_pin(self, store):
        pool = BufferPool(store, budget_bytes=250)
        with pytest.raises(BudgetExceededError):
            pool.pin(["node_0.wah", "node_1.wah"])
        assert pool.pinned_bytes == 0

    def test_repinning_is_idempotent(self, store):
        pool = BufferPool(store, budget_bytes=1000)
        pool.pin(["node_0.wah"])
        pool.pin(["node_0.wah"])
        assert pool.accountant.read_count == 1

    def test_unpin_all(self, store):
        pool = BufferPool(store, budget_bytes=1000)
        pool.pin(["node_0.wah"])
        pool.unpin_all()
        assert pool.pinned_bytes == 0
        pool.get("node_0.wah")
        assert pool.accountant.read_count == 2


class TestBudgetedStreaming:
    def test_unpinned_reads_are_streamed_by_default(self, store):
        """Case-3 semantics: non-cut bitmaps re-read on every access."""
        pool = BufferPool(store, budget_bytes=1000)
        pool.get("node_0.wah")
        pool.get("node_0.wah")
        assert pool.accountant.read_count == 2

    def test_spare_budget_lru_caches_within_budget(self, store):
        pool = BufferPool(
            store, budget_bytes=350, use_spare_budget_lru=True
        )
        pool.pin(["node_0.wah"])  # 100 bytes pinned, 250 spare
        pool.get("node_1.wah")  # 200 bytes -> cached in spare
        pool.get("node_1.wah")
        assert pool.accountant.read_count == 2  # pin + one fetch

    def test_spare_budget_lru_evicts_oldest(self, store):
        pool = BufferPool(
            store, budget_bytes=400, use_spare_budget_lru=True
        )
        pool.get("node_1.wah")  # 200
        pool.get("node_2.wah")  # 300 -> evicts node_1
        pool.get("node_1.wah")  # re-read
        assert pool.accountant.read_count == 3

    def test_oversized_file_never_admitted(self, store):
        pool = BufferPool(
            store, budget_bytes=100, use_spare_budget_lru=True
        )
        pool.get("node_4.wah")  # 500 bytes > budget
        pool.get("node_4.wah")
        assert pool.accountant.read_count == 2

    def test_pin_after_lru_warm_keeps_resident_within_budget(
        self, store
    ):
        """Regression: pinning must shrink the LRU area it displaces.

        Warming the LRU first and pinning afterwards used to leave
        ``pinned + lru`` above the budget, violating the Case-3
        ``S_total`` constraint.
        """
        pool = BufferPool(
            store, budget_bytes=450, use_spare_budget_lru=True
        )
        pool.get("node_2.wah")  # 300 bytes cached in the LRU area
        assert pool.lru_bytes == 300
        pool.pin(["node_0.wah", "node_1.wah"])  # 300 bytes pinned
        assert pool.pinned_bytes == 300
        assert pool.resident_bytes <= pool.budget_bytes
        assert not pool.contains("node_2.wah")
        # The evicted file streams again on the next access.
        pool.get("node_2.wah")
        assert pool.accountant.reads_by_name["node_2.wah"] == 2

    def test_pin_evicts_only_until_budget_holds(self, store):
        pool = BufferPool(
            store, budget_bytes=600, use_spare_budget_lru=True
        )
        pool.get("node_0.wah")  # 100 in LRU
        pool.get("node_1.wah")  # 200 in LRU (300 total)
        pool.pin(["node_2.wah"])  # 300 pinned -> spare 300, LRU fits
        assert pool.resident_bytes <= pool.budget_bytes
        assert pool.contains("node_0.wah")
        assert pool.contains("node_1.wah")

    def test_pin_promoting_lru_entry_respects_budget(self, store):
        pool = BufferPool(
            store, budget_bytes=500, use_spare_budget_lru=True
        )
        pool.get("node_1.wah")  # 200 in LRU
        pool.get("node_2.wah")  # 300 in LRU (500 total)
        pool.pin(["node_1.wah"])  # promoted out of the LRU, no re-read
        assert pool.accountant.reads_by_name["node_1.wah"] == 1
        assert pool.resident_bytes <= pool.budget_bytes


class TestMisc:
    def test_custom_accountant(self, store):
        accountant = IOAccountant()
        pool = BufferPool(store, accountant=accountant)
        pool.get("node_0.wah")
        assert accountant.bytes_read == 100

    def test_negative_budget_rejected(self, store):
        with pytest.raises(ValueError):
            BufferPool(store, budget_bytes=-1)

    def test_contains_and_cached_names(self, store):
        pool = BufferPool(store)
        assert not pool.contains("node_0.wah")
        pool.get("node_0.wah")
        assert pool.contains("node_0.wah")
        assert "node_0.wah" in pool.cached_names

    def test_clear(self, store):
        pool = BufferPool(store)
        pool.get("node_0.wah")
        pool.clear()
        assert not pool.cached_names

    def test_verify_store_has(self, store):
        pool = BufferPool(store)
        pool.verify_store_has(["node_0.wah"])
        with pytest.raises(StorageError):
            pool.verify_store_has(["node_0.wah", "ghost.wah"])

    def test_missing_file_propagates(self, store):
        pool = BufferPool(store)
        with pytest.raises(StorageError):
            pool.get("ghost.wah")

    def test_repr(self, store):
        assert "unbounded" in repr(BufferPool(store))
        assert "100B" in repr(BufferPool(store, budget_bytes=100))
