"""Tests on irregular hierarchies: mixed internal/leaf children and
leaves at different depths.

The paper evaluates balanced hierarchies; the library generalizes the
DP to trees where an internal node has both leaf and internal children
(the leaf children are read directly when the cut descends past their
parent).  These tests pin that behavior against exhaustive search.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import exhaustive_single_optimum
from repro.core.multi import select_cut_multi
from repro.core.workload_cost import single_query_cut_cost
from repro.hierarchy.enumeration import iter_antichains
from repro.core.opnodes import build_query_plan
from repro.core.single import hybrid_cut
from repro.core.workload_cost import WorkloadNodeStats
from repro.hierarchy.tree import Hierarchy
from repro.storage.catalog import ModeledNodeCatalog
from repro.storage.costmodel import CostModel
from repro.workload.query import RangeQuery, Workload


@pytest.fixture
def mixed_hierarchy() -> Hierarchy:
    """Leaves at depths 2, 3, and 4; one node mixes child kinds."""
    return Hierarchy.from_named(
        {
            "deep": {
                "inner": {"x": None, "y": None},
                "shallow_leaf": None,
            },
            "mid": {"a": None, "b": None, "c": None},
            "top_leaf": None,
        }
    )


@pytest.fixture
def mixed_catalog(mixed_hierarchy, paper_cost_model):
    rng = np.random.default_rng(5)
    probabilities = rng.dirichlet(
        np.ones(mixed_hierarchy.num_leaves)
    )
    return ModeledNodeCatalog(
        mixed_hierarchy, probabilities, paper_cost_model, 150_000_000
    )


class TestMixedChildren:
    def test_structure(self, mixed_hierarchy):
        deep = mixed_hierarchy.node_by_name("deep")
        assert len(
            mixed_hierarchy.internal_children(deep.node_id)
        ) == 1
        assert len(
            mixed_hierarchy.leaf_children(deep.node_id)
        ) == 1
        levels = {
            mixed_hierarchy.node(leaf_id).level
            for leaf_id in mixed_hierarchy.leaf_ids()
        }
        assert levels == {2, 3, 4}

    @pytest.mark.parametrize(
        "spec", [(0, 2), (1, 4), (0, 5), (3, 3), (2, 6)]
    )
    def test_hybrid_matches_antichain_brute_force(
        self, mixed_catalog, spec
    ):
        """On trees with leaf children the plan space is the full
        antichain family (uncovered leaves read directly) — complete
        cuts alone are too narrow a baseline."""
        query = RangeQuery([spec])
        hybrid = hybrid_cut(mixed_catalog, query)
        brute = min(
            single_query_cut_cost(mixed_catalog, query, members)
            for members in iter_antichains(
                mixed_catalog.hierarchy
            )
        )
        assert hybrid.cost == pytest.approx(brute)
        # The complete-cut exhaustive baseline is an upper bound here.
        optimum = exhaustive_single_optimum(mixed_catalog, query)
        assert hybrid.cost <= optimum.cost + 1e-9

    def test_plan_covers_leaf_children_outside_cut(
        self, mixed_catalog, mixed_hierarchy
    ):
        """A cut through 'inner' leaves 'shallow_leaf' uncovered; the
        plan must read it directly."""
        inner = mixed_hierarchy.node_by_name("inner").node_id
        shallow = mixed_hierarchy.leaf_value("shallow_leaf")
        query = RangeQuery([(0, shallow)])
        plan = build_query_plan(mixed_catalog, query, [inner])
        shallow_id = mixed_hierarchy.leaf_node_id(shallow)
        assert shallow_id in plan.operation_node_ids

    def test_plan_cost_matches_dp(self, mixed_catalog):
        for spec in [(0, 2), (1, 4), (0, 6), (5, 6)]:
            query = RangeQuery([spec])
            selection = hybrid_cut(mixed_catalog, query)
            plan = build_query_plan(
                mixed_catalog,
                query,
                selection.cut.node_ids,
                labels=selection.labels,
            )
            assert plan.predicted_cost_mb == pytest.approx(
                selection.cost
            )

    def test_multi_query_dp_runs_and_bounds(self, mixed_catalog):
        workload = Workload(
            [RangeQuery([(0, 3)]), RangeQuery([(2, 6)])]
        )
        stats = WorkloadNodeStats(mixed_catalog, workload)
        result = select_cut_multi(mixed_catalog, workload, stats)
        assert (
            result.cost <= stats.leaf_only_cost_case2() + 1e-9
        )


@st.composite
def named_tree(draw, depth=3):
    """A random irregular named tree (>= 1 leaf)."""
    counter = draw(st.integers(0, 10**6))

    def build(level, prefix):
        width = draw(st.integers(min_value=1, max_value=3))
        children = {}
        for index in range(width):
            name = f"{prefix}{index}"
            if level == 0 or draw(st.booleans()):
                children[name] = None
            else:
                children[name] = build(level - 1, name + "_")
        return children

    return build(depth, f"t{counter}_")


class TestRandomIrregularTrees:
    @given(named_tree(), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_hybrid_matches_exhaustive_on_random_trees(
        self, spec, seed
    ):
        hierarchy = Hierarchy.from_named(spec)
        num_leaves = hierarchy.num_leaves
        rng = np.random.default_rng(seed)
        catalog = ModeledNodeCatalog(
            hierarchy,
            rng.dirichlet(np.ones(num_leaves)),
            CostModel.paper_2014(),
            150_000_000,
        )
        start = int(rng.integers(0, num_leaves))
        end = int(rng.integers(start, num_leaves))
        query = RangeQuery([(start, end)])
        hybrid = hybrid_cut(catalog, query)
        brute = min(
            single_query_cut_cost(catalog, query, members)
            for members in iter_antichains(hierarchy)
        )
        assert hybrid.cost == pytest.approx(brute)
        plan = build_query_plan(
            catalog,
            query,
            hybrid.cut.node_ids,
            labels=hybrid.labels,
        )
        assert plan.predicted_cost_mb == pytest.approx(hybrid.cost)
