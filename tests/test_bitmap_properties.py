"""Property-based tests: WAH against the plain reference bitmap.

The :class:`PlainBitmap` (a Python-int bitvector) is the oracle; every
WAH operation must agree with it on arbitrary inputs, including lengths
that are not multiples of the 31-bit group size.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmap.plain import PlainBitmap
from repro.bitmap.serialization import deserialize_wah, serialize_wah
from repro.bitmap.wah import WahBitmap

MAX_BITS = 700


@st.composite
def bitmap_pair(draw):
    """Two position sets over a shared random length."""
    num_bits = draw(st.integers(min_value=1, max_value=MAX_BITS))
    positions = st.lists(
        st.integers(min_value=0, max_value=num_bits - 1),
        max_size=num_bits,
    )
    return num_bits, draw(positions), draw(positions)


@st.composite
def single_bitmap(draw):
    num_bits = draw(st.integers(min_value=0, max_value=MAX_BITS))
    if num_bits == 0:
        return num_bits, []
    positions = draw(
        st.lists(
            st.integers(min_value=0, max_value=num_bits - 1),
            max_size=num_bits,
        )
    )
    return num_bits, positions


def _pair(num_bits, positions):
    return (
        WahBitmap.from_positions(positions, num_bits),
        PlainBitmap.from_positions(positions, num_bits),
    )


@given(single_bitmap())
@settings(max_examples=200)
def test_count_and_positions_match_reference(data):
    num_bits, positions = data
    wah, plain = _pair(num_bits, positions)
    assert wah.count() == plain.count()
    assert wah.to_positions().tolist() == plain.to_positions().tolist()
    assert wah.density() == plain.density()


@given(single_bitmap())
@settings(max_examples=200)
def test_serialization_roundtrip(data):
    num_bits, positions = data
    wah = WahBitmap.from_positions(positions, num_bits)
    assert deserialize_wah(serialize_wah(wah)) == wah


@given(single_bitmap())
@settings(max_examples=200)
def test_invert_matches_reference(data):
    num_bits, positions = data
    wah, plain = _pair(num_bits, positions)
    assert (
        (~wah).to_positions().tolist()
        == (~plain).to_positions().tolist()
    )


@given(bitmap_pair())
@settings(max_examples=200)
def test_binary_ops_match_reference(data):
    num_bits, left_positions, right_positions = data
    wah_a, plain_a = _pair(num_bits, left_positions)
    wah_b, plain_b = _pair(num_bits, right_positions)
    for wah_result, plain_result in [
        (wah_a & wah_b, plain_a & plain_b),
        (wah_a | wah_b, plain_a | plain_b),
        (wah_a ^ wah_b, plain_a ^ plain_b),
        (wah_a.andnot(wah_b), plain_a.andnot(plain_b)),
    ]:
        assert (
            wah_result.to_positions().tolist()
            == plain_result.to_positions().tolist()
        )
        assert wah_result.num_bits == num_bits


@given(bitmap_pair())
@settings(max_examples=100)
def test_de_morgan(data):
    num_bits, left_positions, right_positions = data
    a = WahBitmap.from_positions(left_positions, num_bits)
    b = WahBitmap.from_positions(right_positions, num_bits)
    assert ~(a | b) == (~a & ~b)
    assert ~(a & b) == (~a | ~b)


@given(single_bitmap())
@settings(max_examples=100)
def test_get_matches_membership(data):
    num_bits, positions = data
    wah = WahBitmap.from_positions(positions, num_bits)
    wanted = set(positions)
    for bit in range(num_bits):
        assert wah.get(bit) == (bit in wanted)


@given(
    st.integers(min_value=1, max_value=50_000),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=30, deadline=None)
def test_random_density_roundtrips(num_bits, density, seed):
    rng = np.random.default_rng(seed)
    target = int(round(density * num_bits))
    positions = rng.choice(num_bits, size=target, replace=False)
    wah = WahBitmap.from_positions(positions, num_bits)
    assert wah.count() == target
    assert deserialize_wah(serialize_wah(wah)) == wah


@given(bitmap_pair())
@settings(max_examples=100)
def test_canonical_equality_from_different_routes(data):
    """The same bit set reaches the same canonical encoding whether it
    is built directly or produced by operations."""
    num_bits, left_positions, right_positions = data
    a = WahBitmap.from_positions(left_positions, num_bits)
    b = WahBitmap.from_positions(right_positions, num_bits)
    union_ops = a | b
    union_direct = WahBitmap.from_positions(
        sorted(set(left_positions) | set(right_positions)), num_bits
    )
    assert union_ops == union_direct
    assert union_ops.words == union_direct.words
