"""Tests for static plan verification."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import StrategyLabel
from repro.core.opnodes import (
    PlanAtom,
    QueryPlan,
    build_query_plan,
    leaf_only_plan,
)
from repro.core.single import (
    exclusive_cut,
    hybrid_cut,
    inclusive_cut,
)
from repro.core.verify import PlanVerificationError, verify_plan
from repro.workload.query import RangeQuery


class TestSoundPlans:
    @pytest.mark.parametrize(
        "algorithm", [inclusive_cut, exclusive_cut, hybrid_cut]
    )
    @pytest.mark.parametrize(
        "spec", [(0, 9), (10, 59), (5, 94), (0, 99), (42, 42)]
    )
    def test_selected_plans_verify(
        self, tpch_catalog100, algorithm, spec
    ):
        query = RangeQuery([spec])
        selection = algorithm(tpch_catalog100, query)
        plan = build_query_plan(
            tpch_catalog100,
            query,
            selection.cut.node_ids,
            labels=selection.labels,
        )
        verify_plan(plan, tpch_catalog100.hierarchy)

    def test_leaf_only_plan_verifies(self, tpch_catalog100):
        plan = leaf_only_plan(
            tpch_catalog100, RangeQuery([(5, 20), (40, 41)])
        )
        verify_plan(plan, tpch_catalog100.hierarchy)

    def test_incomplete_cut_plans_verify(self, tpch_catalog100):
        hierarchy = tpch_catalog100.hierarchy
        member = hierarchy.internal_children(hierarchy.root_id)[0]
        plan = build_query_plan(
            tpch_catalog100, RangeQuery([(0, 70)]), [member]
        )
        verify_plan(plan, hierarchy)

    @given(
        st.integers(0, 99),
        st.integers(0, 99),
        st.integers(0, 2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_cached_plans_verify(self, a, b, seed):
        from repro.core.baselines import sample_antichain
        from repro.hierarchy.tree import paper_hierarchy
        from repro.storage.catalog import ModeledNodeCatalog
        from repro.storage.costmodel import CostModel
        from repro.workload.datagen import (
            tpch_acctbal_leaf_probabilities,
        )

        catalog = ModeledNodeCatalog(
            paper_hierarchy(100),
            tpch_acctbal_leaf_probabilities(100),
            CostModel.paper_2014(),
            150_000_000,
        )
        query = RangeQuery([(min(a, b), max(a, b))])
        rng = np.random.default_rng(seed)
        members = sample_antichain(catalog.hierarchy, rng)
        plan = build_query_plan(
            catalog, query, members, node_is_cached=True
        )
        verify_plan(plan, catalog.hierarchy)


class TestExecutorIntegration:
    def test_verifying_executor_accepts_sound_plans(
        self, materialized_setup
    ):
        from repro.core.executor import QueryExecutor, scan_answer

        _hierarchy, column, catalog = materialized_setup
        executor = QueryExecutor(catalog, verify=True)
        query = RangeQuery([(2, 11)])
        result = executor.execute_plan(
            leaf_only_plan(catalog, query)
        )
        assert result.answer == scan_answer(column, query)

    def test_verifying_executor_rejects_broken_plans(
        self, materialized_setup
    ):
        from repro.core.executor import QueryExecutor

        _hierarchy, _column, catalog = materialized_setup
        executor = QueryExecutor(catalog, verify=True)
        query = RangeQuery([(0, 5)])
        broken = QueryPlan(
            query=query,
            atoms=(
                PlanAtom(StrategyLabel.INCLUSIVE, None, (0, 1)),
            ),
            operation_node_ids=frozenset(),
            predicted_cost_mb=0.0,
        )
        with pytest.raises(PlanVerificationError):
            executor.execute_plan(broken)


class TestDefectDetection:
    def _plan(self, query, atoms):
        return QueryPlan(
            query=query,
            atoms=tuple(atoms),
            operation_node_ids=frozenset(),
            predicted_cost_mb=0.0,
        )

    def test_missing_leaves_detected(self, tpch_catalog100):
        query = RangeQuery([(0, 5)])
        plan = self._plan(
            query,
            [PlanAtom(StrategyLabel.INCLUSIVE, None, (0, 1, 2))],
        )
        with pytest.raises(PlanVerificationError, match="misses"):
            verify_plan(plan, tpch_catalog100.hierarchy)

    def test_extra_leaves_detected(self, tpch_catalog100):
        query = RangeQuery([(0, 2)])
        plan = self._plan(
            query,
            [
                PlanAtom(
                    StrategyLabel.INCLUSIVE, None, (0, 1, 2, 3)
                )
            ],
        )
        with pytest.raises(
            PlanVerificationError, match="non-range"
        ):
            verify_plan(plan, tpch_catalog100.hierarchy)

    def test_duplicate_production_detected(self, tpch_catalog100):
        query = RangeQuery([(0, 4)])
        hierarchy = tpch_catalog100.hierarchy
        leaf_parent = hierarchy.node(
            hierarchy.leaf_node_id(0)
        ).parent_id
        plan = self._plan(
            query,
            [
                PlanAtom(StrategyLabel.COMPLETE, leaf_parent, ()),
                PlanAtom(StrategyLabel.INCLUSIVE, None, (0,)),
            ],
        )
        with pytest.raises(
            PlanVerificationError, match="more than one atom"
        ):
            verify_plan(plan, tpch_catalog100.hierarchy)

    def test_malformed_atoms_detected(self, tpch_catalog100):
        query = RangeQuery([(0, 4)])
        plan = self._plan(
            query, [PlanAtom(StrategyLabel.COMPLETE, None, ())]
        )
        with pytest.raises(PlanVerificationError):
            verify_plan(plan, tpch_catalog100.hierarchy)
        plan = self._plan(
            query, [PlanAtom(StrategyLabel.EMPTY, None, ())]
        )
        with pytest.raises(
            PlanVerificationError, match="unexecutable"
        ):
            verify_plan(plan, tpch_catalog100.hierarchy)
