"""Tests for the Case-1 cut-selection algorithms (Alg. 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import (
    exhaustive_single_optimum,
    leaf_only_single_cost,
)
from repro.core.single import (
    exclusive_cut,
    hybrid_cut,
    inclusive_cut,
    select_cut_single,
)
from repro.core.workload_cost import single_query_cut_cost
from repro.hierarchy.tree import Hierarchy
from repro.storage.catalog import ModeledNodeCatalog
from repro.storage.costmodel import CostModel
from repro.workload.query import RangeQuery


class TestBasicProperties:
    def test_returns_complete_valid_cut(self, tpch_catalog100):
        result = hybrid_cut(tpch_catalog100, RangeQuery([(10, 40)]))
        assert result.cut.is_complete

    def test_hybrid_never_worse_than_pure_strategies(
        self, tpch_catalog100
    ):
        for spec in [(0, 9), (20, 70), (5, 94), (0, 99), (50, 50)]:
            query = RangeQuery([spec])
            hybrid = hybrid_cut(tpch_catalog100, query).cost
            inclusive = inclusive_cut(tpch_catalog100, query).cost
            exclusive = exclusive_cut(tpch_catalog100, query).cost
            assert hybrid <= inclusive + 1e-9
            assert hybrid <= exclusive + 1e-9

    def test_all_strategies_beat_or_match_leaf_only(
        self, tpch_catalog100
    ):
        for spec in [(0, 9), (20, 70), (5, 94)]:
            query = RangeQuery([spec])
            baseline = leaf_only_single_cost(tpch_catalog100, query)
            assert (
                hybrid_cut(tpch_catalog100, query).cost
                <= baseline + 1e-9
            )
            assert (
                inclusive_cut(tpch_catalog100, query).cost
                <= baseline + 1e-9
            )

    def test_dp_cost_matches_evaluator(self, tpch_catalog100):
        """The DP objective equals the shared Eq. 1 cut evaluator."""
        for spec in [(0, 9), (20, 70), (5, 94), (0, 99)]:
            query = RangeQuery([spec])
            result = hybrid_cut(tpch_catalog100, query)
            evaluated = single_query_cut_cost(
                tpch_catalog100, query, result.cut.node_ids
            )
            assert result.cost == pytest.approx(evaluated)

    def test_invalid_strategy_rejected(self, tpch_catalog100):
        with pytest.raises(ValueError):
            select_cut_single(
                tpch_catalog100, RangeQuery([(0, 1)]), "bogus"
            )

    def test_multi_spec_query(self, tpch_catalog100):
        query = RangeQuery([(0, 9), (30, 44), (80, 99)])
        result = hybrid_cut(tpch_catalog100, query)
        assert result.cut.is_complete
        assert result.cost <= leaf_only_single_cost(
            tpch_catalog100, query
        )


class TestOptimality:
    """H-CS must equal the exhaustive optimum (the paper's Fig. 3)."""

    def test_hybrid_matches_exhaustive_on_paper_hierarchy(
        self, tpch_catalog100
    ):
        for spec in [(0, 9), (10, 59), (5, 94), (0, 99), (37, 42)]:
            query = RangeQuery([spec])
            hybrid = hybrid_cut(tpch_catalog100, query).cost
            optimum = exhaustive_single_optimum(
                tpch_catalog100, query
            ).cost
            assert hybrid == pytest.approx(optimum)

    @given(
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_hybrid_matches_exhaustive_on_random_instances(
        self, shape_seed, query_seed
    ):
        rng = np.random.default_rng(shape_seed)

        def random_spec(depth):
            if depth == 0:
                return int(rng.integers(1, 5))
            width = int(rng.integers(1, 4))
            return [random_spec(depth - 1) for _ in range(width)]

        hierarchy = Hierarchy.from_nested(
            random_spec(int(rng.integers(1, 4)))
        )
        num_leaves = hierarchy.num_leaves
        probabilities = rng.dirichlet(np.ones(num_leaves))
        catalog = ModeledNodeCatalog(
            hierarchy,
            probabilities,
            CostModel.paper_2014(),
            150_000_000,
        )
        qrng = np.random.default_rng(query_seed)
        start = int(qrng.integers(0, num_leaves))
        end = int(qrng.integers(start, num_leaves))
        query = RangeQuery([(start, end)])
        hybrid = hybrid_cut(catalog, query).cost
        optimum = exhaustive_single_optimum(catalog, query).cost
        assert hybrid == pytest.approx(optimum)


class TestExpectedRegimes:
    def test_exclusive_wins_for_large_ranges(self, tpch_catalog100):
        """§4.1: the exclusive strategy is more efficient when the
        query ranges are large."""
        query = RangeQuery([(2, 97)])
        inclusive = inclusive_cut(tpch_catalog100, query).cost
        exclusive = exclusive_cut(tpch_catalog100, query).cost
        assert exclusive < inclusive

    def test_full_domain_query_reads_root_only(
        self, tpch_catalog100
    ):
        query = RangeQuery([(0, 99)])
        result = hybrid_cut(tpch_catalog100, query)
        root = tpch_catalog100.hierarchy.root_id
        # Density-1 root compresses to nothing: the whole query is
        # answered by one free read.
        assert result.cost == pytest.approx(0.0)
        assert set(result.cut.node_ids) == {root}

    def test_single_leaf_query_prefers_leaf(self, tpch_catalog100):
        query = RangeQuery([(50, 50)])
        result = hybrid_cut(tpch_catalog100, query)
        leaf_id = tpch_catalog100.hierarchy.leaf_node_id(50)
        assert result.cost == pytest.approx(
            tpch_catalog100.read_cost_mb(leaf_id)
        )


class TestLabels:
    def test_label_counts_sum_to_cut_size(self, tpch_catalog100):
        result = hybrid_cut(tpch_catalog100, RangeQuery([(5, 94)]))
        counts = result.label_counts()
        assert sum(counts.values()) == len(result.cut)

    def test_pure_strategies_carry_matching_labels(
        self, tpch_catalog100
    ):
        from repro.core.costs import StrategyLabel

        query = RangeQuery([(5, 94)])
        inclusive = inclusive_cut(tpch_catalog100, query)
        assert all(
            label
            in (
                StrategyLabel.INCLUSIVE,
                StrategyLabel.COMPLETE,
                StrategyLabel.EMPTY,
            )
            for label in inclusive.labels.values()
        )
        assert StrategyLabel.EXCLUSIVE not in set(
            inclusive.labels.values()
        )
        exclusive = exclusive_cut(tpch_catalog100, query)
        assert all(
            label
            in (
                StrategyLabel.EXCLUSIVE,
                StrategyLabel.COMPLETE,
                StrategyLabel.EMPTY,
            )
            for label in exclusive.labels.values()
        )
        assert StrategyLabel.INCLUSIVE not in set(
            exclusive.labels.values()
        )
