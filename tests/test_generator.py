"""Tests for the workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.generator import (
    fraction_workload,
    multi_range_query,
    range_query_of_fraction,
)


class TestRangeQueryOfFraction:
    @pytest.mark.parametrize("fraction", [0.1, 0.5, 0.9, 1.0])
    def test_length_matches_fraction(self, fraction, rng):
        num_leaves = 100
        query = range_query_of_fraction(num_leaves, fraction, rng)
        assert query.num_range_leaves == round(fraction * num_leaves)

    def test_range_is_contiguous_and_in_bounds(self, rng):
        for _ in range(50):
            query = range_query_of_fraction(100, 0.3, rng)
            assert len(query.specs) == 1
            spec = query.specs[0]
            assert 0 <= spec.start
            assert spec.end < 100

    def test_minimum_one_leaf(self, rng):
        query = range_query_of_fraction(10, 0.01, rng)
        assert query.num_range_leaves == 1

    def test_invalid_fraction(self, rng):
        with pytest.raises(WorkloadError):
            range_query_of_fraction(100, 0.0, rng)
        with pytest.raises(WorkloadError):
            range_query_of_fraction(100, 1.5, rng)

    def test_full_domain(self, rng):
        query = range_query_of_fraction(10, 1.0, rng)
        assert query.specs[0] is not None
        assert query.num_range_leaves == 10


class TestFractionWorkload:
    def test_size_and_labels(self):
        workload = fraction_workload(100, 0.1, 15, seed=0)
        assert len(workload) == 15
        assert workload[0].label == "q0"
        assert workload[14].label == "q14"

    def test_deterministic_per_seed(self):
        a = fraction_workload(100, 0.5, 5, seed=3)
        b = fraction_workload(100, 0.5, 5, seed=3)
        assert list(a) == list(b)
        c = fraction_workload(100, 0.5, 5, seed=4)
        assert list(a) != list(c)

    def test_needs_positive_count(self):
        with pytest.raises(WorkloadError):
            fraction_workload(100, 0.5, 0)

    def test_starts_are_spread(self):
        workload = fraction_workload(1000, 0.1, 50, seed=0)
        starts = {query.specs[0].start for query in workload}
        assert len(starts) > 25


class TestMultiRangeQuery:
    def test_produces_disjoint_ranges(self, rng):
        query = multi_range_query(100, 0.3, 3, rng)
        for left, right in zip(query.specs, query.specs[1:]):
            assert left.end < right.start

    def test_total_coverage_near_fraction(self, rng):
        query = multi_range_query(300, 0.3, 3, rng)
        assert query.num_range_leaves <= 0.4 * 300
        assert query.num_range_leaves >= 1

    def test_validation(self, rng):
        with pytest.raises(WorkloadError):
            multi_range_query(100, 0.3, 0, rng)
