"""Tests for hierarchy and workload JSON persistence."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HierarchyError, WorkloadError
from repro.hierarchy.serialization import (
    hierarchy_from_dict,
    hierarchy_to_dict,
    load_hierarchy,
    save_hierarchy,
)
from repro.hierarchy.tree import Hierarchy, paper_hierarchy
from repro.workload.generator import fraction_workload
from repro.workload.query import RangeQuery, Workload
from repro.workload.serialization import (
    load_workload,
    save_workload,
    workload_from_dict,
    workload_to_dict,
)


class TestHierarchyPersistence:
    @pytest.mark.parametrize("num_leaves", [20, 50, 100])
    def test_roundtrip_paper_shapes(self, num_leaves):
        original = paper_hierarchy(num_leaves)
        restored = hierarchy_from_dict(
            hierarchy_to_dict(original)
        )
        assert restored.num_leaves == original.num_leaves
        assert restored.nodes() == original.nodes()

    def test_roundtrip_preserves_names(self, us_hierarchy):
        restored = hierarchy_from_dict(
            hierarchy_to_dict(us_hierarchy)
        )
        assert restored.node_by_name("CA").leaf_span == (0, 2)
        assert restored.leaf_value("Tucson") == 5

    def test_dict_is_json_serializable(self, small_hierarchy):
        text = json.dumps(hierarchy_to_dict(small_hierarchy))
        restored = hierarchy_from_dict(json.loads(text))
        assert restored.nodes() == small_hierarchy.nodes()

    def test_file_roundtrip(self, tmp_path, small_hierarchy):
        path = tmp_path / "hierarchy.json"
        save_hierarchy(small_hierarchy, path)
        assert load_hierarchy(path).nodes() == (
            small_hierarchy.nodes()
        )

    def test_malformed_payloads_rejected(self, small_hierarchy):
        with pytest.raises(HierarchyError):
            hierarchy_from_dict("nope")  # type: ignore[arg-type]
        with pytest.raises(HierarchyError):
            hierarchy_from_dict({"format": "other"})
        with pytest.raises(HierarchyError):
            hierarchy_from_dict(
                {"format": "repro-hierarchy-v1", "nodes": []}
            )
        payload = hierarchy_to_dict(small_hierarchy)
        payload["nodes"][0] = {"id": 0}
        with pytest.raises(HierarchyError):
            hierarchy_from_dict(payload)

    def test_leaf_count_mismatch_rejected(self, small_hierarchy):
        payload = hierarchy_to_dict(small_hierarchy)
        payload["num_leaves"] = 999
        with pytest.raises(HierarchyError):
            hierarchy_from_dict(payload)

    def test_tampered_structure_fails_validation(
        self, small_hierarchy
    ):
        payload = hierarchy_to_dict(small_hierarchy)
        payload["nodes"][1]["level"] = 7
        with pytest.raises(HierarchyError):
            hierarchy_from_dict(payload)


class TestWorkloadPersistence:
    def test_roundtrip(self):
        workload = fraction_workload(100, 0.3, 8, seed=4)
        restored = workload_from_dict(workload_to_dict(workload))
        assert list(restored) == list(workload)
        assert [q.label for q in restored] == [
            q.label for q in workload
        ]

    def test_multi_spec_roundtrip(self):
        workload = Workload(
            [RangeQuery([(0, 3), (7, 9)], label="gaps")]
        )
        restored = workload_from_dict(workload_to_dict(workload))
        assert restored[0].specs == workload[0].specs

    def test_file_roundtrip(self, tmp_path):
        workload = fraction_workload(50, 0.5, 3, seed=1)
        path = tmp_path / "workload.json"
        save_workload(workload, path)
        assert list(load_workload(path)) == list(workload)

    def test_malformed_payloads_rejected(self):
        with pytest.raises(WorkloadError):
            workload_from_dict([1, 2])  # type: ignore[arg-type]
        with pytest.raises(WorkloadError):
            workload_from_dict({"format": "other"})
        with pytest.raises(WorkloadError):
            workload_from_dict(
                {"format": "repro-workload-v1", "queries": []}
            )
        with pytest.raises(WorkloadError):
            workload_from_dict(
                {
                    "format": "repro-workload-v1",
                    "queries": [{"specs": [["a", 2]]}],
                }
            )

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 40), st.integers(0, 40)
            ).map(lambda pair: (min(pair), max(pair))),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=60)
    def test_roundtrip_random_queries(self, raw_specs):
        workload = Workload([RangeQuery(raw_specs)])
        restored = workload_from_dict(workload_to_dict(workload))
        assert restored[0] == workload[0]
