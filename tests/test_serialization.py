"""Tests for the WAH on-disk serialization format."""

from __future__ import annotations

import struct

import pytest

from repro.bitmap.serialization import (
    CODEC_WAH,
    FORMAT_VERSION,
    HEADER_SIZE_BYTES,
    MAGIC,
    TRAILER_SIZE_BYTES,
    deserialize_wah,
    serialize_wah,
)
from repro.bitmap.wah import WahBitmap
from repro.errors import BitmapDecodeError


def test_roundtrip_preserves_bitmap():
    bitmap = WahBitmap.from_positions([0, 100, 5000, 99_999], 100_000)
    assert deserialize_wah(serialize_wah(bitmap)) == bitmap


def test_serialized_size_matches_property():
    bitmap = WahBitmap.from_positions(range(0, 500, 7), 1000)
    payload = serialize_wah(bitmap)
    assert len(payload) == bitmap.serialized_size_bytes
    assert len(payload) == (
        HEADER_SIZE_BYTES + 4 * bitmap.num_words + TRAILER_SIZE_BYTES
    )


def test_header_layout():
    bitmap = WahBitmap.zeros(62)
    payload = serialize_wah(bitmap)
    magic, version, codec, num_bits, num_words = struct.unpack_from(
        "<4sHHQQ", payload
    )
    assert magic == MAGIC
    assert version == FORMAT_VERSION
    assert codec == CODEC_WAH
    assert num_bits == 62
    assert num_words == bitmap.num_words


def test_empty_bitmap_roundtrip():
    bitmap = WahBitmap.zeros(0)
    assert deserialize_wah(serialize_wah(bitmap)) == bitmap


class TestMalformedPayloads:
    def test_truncated_header(self):
        with pytest.raises(BitmapDecodeError):
            deserialize_wah(b"WA")

    def test_bad_magic(self):
        payload = bytearray(serialize_wah(WahBitmap.zeros(10)))
        payload[:4] = b"NOPE"
        with pytest.raises(BitmapDecodeError):
            deserialize_wah(bytes(payload))

    def test_bad_version(self):
        payload = bytearray(serialize_wah(WahBitmap.zeros(10)))
        payload[4:6] = struct.pack("<H", 99)
        with pytest.raises(BitmapDecodeError):
            deserialize_wah(bytes(payload))

    def test_truncated_words(self):
        payload = serialize_wah(WahBitmap.from_positions([1, 40], 62))
        with pytest.raises(BitmapDecodeError):
            deserialize_wah(payload[:-1])

    def test_trailing_garbage(self):
        payload = serialize_wah(WahBitmap.zeros(10)) + b"\x00"
        with pytest.raises(BitmapDecodeError):
            deserialize_wah(payload)
