"""Tests for operation-node extraction (Alg. 2) and plan building."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.costs import StrategyLabel
from repro.core.opnodes import build_query_plan, leaf_only_plan
from repro.core.single import hybrid_cut
from repro.storage.catalog import ModeledNodeCatalog
from repro.workload.query import RangeQuery


@pytest.fixture
def us_catalog(us_hierarchy, paper_cost_model):
    probabilities = np.array(
        [0.25, 0.20, 0.05, 0.20, 0.15, 0.15]
    )
    return ModeledNodeCatalog(
        us_hierarchy, probabilities, paper_cost_model, 150_000_000
    )


def _name_ids(hierarchy, *names):
    return {
        hierarchy.node_by_name(name).node_id for name in names
    }


class TestPaperPlans:
    """The four example plans of §2.2.2 and their operation nodes."""

    def test_inclusive_plan_at_cut_ca_az(
        self, us_catalog, us_hierarchy
    ):
        query = RangeQuery([(0, us_hierarchy.leaf_value("PHX"))])
        cut = _name_ids(us_hierarchy, "CA", "AZ")
        plan = build_query_plan(
            us_catalog,
            query,
            cut,
            labels={
                us_hierarchy.node_by_name("CA").node_id:
                    StrategyLabel.COMPLETE,
                us_hierarchy.node_by_name("AZ").node_id:
                    StrategyLabel.INCLUSIVE,
            },
        )
        # ON_q = [CA, PHX]: CA complete, AZ handled via its one
        # in-range leaf.
        expected = _name_ids(us_hierarchy, "CA", "PHX")
        assert set(plan.operation_node_ids) == expected

    def test_exclusive_plan_at_root(self, us_catalog, us_hierarchy):
        query = RangeQuery([(0, us_hierarchy.leaf_value("PHX"))])
        root = us_hierarchy.root_id
        plan = build_query_plan(
            us_catalog,
            query,
            [root],
            labels={root: StrategyLabel.EXCLUSIVE},
        )
        # ON_q = [U.S., Tempe, Tucson].
        expected = _name_ids(
            us_hierarchy, "U.S.", "Tempe", "Tucson"
        )
        assert set(plan.operation_node_ids) == expected
        exclusive_atoms = [
            atom
            for atom in plan.atoms
            if atom.label is StrategyLabel.EXCLUSIVE
        ]
        assert len(exclusive_atoms) == 1
        assert exclusive_atoms[0].leaf_values == (
            us_hierarchy.leaf_value("Tempe"),
            us_hierarchy.leaf_value("Tucson"),
        )

    def test_leaf_only_plan(self, us_catalog, us_hierarchy):
        query = RangeQuery([(0, us_hierarchy.leaf_value("PHX"))])
        plan = leaf_only_plan(us_catalog, query)
        expected = _name_ids(
            us_hierarchy, "SFO", "L.A.", "S.D.", "PHX"
        )
        assert set(plan.operation_node_ids) == expected


class TestPredictedCosts:
    def test_hybrid_plan_cost_equals_dp_cost(self, tpch_catalog100):
        for spec in [(0, 9), (10, 59), (5, 94), (0, 99)]:
            query = RangeQuery([spec])
            result = hybrid_cut(tpch_catalog100, query)
            plan = build_query_plan(
                tpch_catalog100,
                query,
                result.cut.node_ids,
                labels=result.labels,
            )
            assert plan.predicted_cost_mb == pytest.approx(
                result.cost
            )

    def test_leaf_only_cost(self, tpch_catalog100):
        query = RangeQuery([(10, 29)])
        plan = leaf_only_plan(tpch_catalog100, query)
        assert plan.predicted_cost_mb == pytest.approx(
            tpch_catalog100.leaf_range_cost(10, 29)
        )
        assert plan.num_operation_nodes == 20

    def test_cached_members_not_charged(self, tpch_catalog100):
        query = RangeQuery([(0, 99)])
        root = tpch_catalog100.hierarchy.root_id
        charged = build_query_plan(
            tpch_catalog100, query, [root], node_is_cached=False
        )
        free = build_query_plan(
            tpch_catalog100, query, [root], node_is_cached=True
        )
        assert free.predicted_cost_mb <= charged.predicted_cost_mb


class TestIncompleteCuts:
    def test_uncovered_range_leaves_read_directly(
        self, tpch_catalog100
    ):
        hierarchy = tpch_catalog100.hierarchy
        # Use only the first root child (covers leaves 0..24) as cut;
        # query extends beyond it.
        member = hierarchy.internal_children(hierarchy.root_id)[0]
        query = RangeQuery([(0, 40)])
        plan = build_query_plan(tpch_catalog100, query, [member])
        uncovered_leaves = {
            hierarchy.leaf_node_id(value)
            for value in range(25, 41)
        }
        assert uncovered_leaves <= set(plan.operation_node_ids)

    def test_empty_cut_plan_equals_leaf_only(self, tpch_catalog100):
        query = RangeQuery([(3, 17)])
        empty = build_query_plan(tpch_catalog100, query, [])
        leaf = leaf_only_plan(tpch_catalog100, query)
        assert (
            empty.operation_node_ids == leaf.operation_node_ids
        )

    def test_empty_member_contributes_no_atoms(
        self, tpch_catalog100
    ):
        hierarchy = tpch_catalog100.hierarchy
        # Query inside the first child; second child is empty.
        first, second = hierarchy.internal_children(
            hierarchy.root_id
        )[:2]
        query = RangeQuery([(0, 10)])
        plan = build_query_plan(
            tpch_catalog100, query, [first, second]
        )
        assert second not in plan.operation_node_ids


class TestAtomStructure:
    def test_atoms_reconstruct_range(self, tpch_catalog100):
        """Every range leaf is produced by exactly one atom's span."""
        query = RangeQuery([(5, 94)])
        result = hybrid_cut(tpch_catalog100, query)
        plan = build_query_plan(
            tpch_catalog100,
            query,
            result.cut.node_ids,
            labels=result.labels,
        )
        hierarchy = tpch_catalog100.hierarchy
        produced: set[int] = set()
        for atom in plan.atoms:
            if atom.label is StrategyLabel.COMPLETE:
                node = hierarchy.node(atom.node_id)
                produced.update(
                    range(node.leaf_lo, node.leaf_hi + 1)
                )
            elif atom.label is StrategyLabel.INCLUSIVE:
                produced.update(atom.leaf_values)
            else:
                node = hierarchy.node(atom.node_id)
                span = set(
                    range(node.leaf_lo, node.leaf_hi + 1)
                )
                produced.update(span - set(atom.leaf_values))
        assert produced == set(query.range_leaves())
