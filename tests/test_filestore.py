"""Tests for the bitmap file store (memory- and directory-backed)."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.storage.filestore import BitmapFileStore


@pytest.fixture(params=["memory", "directory"])
def store(request, tmp_path) -> BitmapFileStore:
    if request.param == "memory":
        return BitmapFileStore()
    return BitmapFileStore(tmp_path / "bitmaps")


class TestReadWrite:
    def test_roundtrip(self, store):
        store.write("node_0.wah", b"hello")
        assert store.read("node_0.wah") == b"hello"
        assert store.size_bytes("node_0.wah") == 5

    def test_overwrite(self, store):
        store.write("a", b"one")
        store.write("a", b"two!")
        assert store.read("a") == b"two!"
        assert store.size_bytes("a") == 4

    def test_missing_file_errors(self, store):
        with pytest.raises(StorageError):
            store.read("missing")
        with pytest.raises(StorageError):
            store.size_bytes("missing")

    def test_exists_and_contains(self, store):
        assert not store.exists("x")
        store.write("x", b"")
        assert store.exists("x")
        assert "x" in store

    def test_names_sorted(self, store):
        for name in ("b", "a", "c"):
            store.write(name, b"1")
        assert list(store.names()) == ["a", "b", "c"]

    def test_total_bytes(self, store):
        store.write("a", b"12")
        store.write("b", b"345")
        assert store.total_bytes() == 5


class TestDirectoryBacking:
    def test_directory_created_and_used(self, tmp_path):
        directory = tmp_path / "deep" / "store"
        store = BitmapFileStore(directory)
        store.write("n.wah", b"data")
        assert (directory / "n.wah").read_bytes() == b"data"
        assert store.is_persistent

    def test_path_traversal_rejected(self, tmp_path):
        store = BitmapFileStore(tmp_path)
        for name in ("../evil", "a/b", "", ".."):
            with pytest.raises(StorageError):
                store.write(name, b"x")

    def test_memory_store_is_not_persistent(self):
        assert not BitmapFileStore().is_persistent

    def test_repr(self, tmp_path):
        assert "memory" in repr(BitmapFileStore())
        assert str(tmp_path) in repr(BitmapFileStore(tmp_path))
