"""Tests for the Table facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.table import Table
from repro.errors import WorkloadError
from repro.hierarchy.tree import Hierarchy
from repro.workload.datagen import sample_column
from repro.workload.generator import fraction_workload
from repro.workload.query import RangeQuery


@pytest.fixture(scope="module")
def table_setup():
    hierarchy = Hierarchy.from_nested([[4, 4], [4, 4]])
    rng = np.random.default_rng(2)
    probabilities = rng.dirichlet(np.ones(hierarchy.num_leaves))
    column = sample_column(probabilities, 20_000, seed=3)
    amounts = rng.uniform(1.0, 10.0, size=column.size)
    return hierarchy, column, amounts


@pytest.fixture
def table(table_setup) -> Table:
    hierarchy, column, amounts = table_setup
    return Table(hierarchy, column, measures={"amount": amounts})


class TestSelection:
    def test_select_matches_scan(self, table, table_setup):
        _hierarchy, column, _amounts = table_setup
        rows = table.select((3, 9))
        expected = np.flatnonzero(
            (column >= 3) & (column <= 9)
        )
        np.testing.assert_array_equal(rows, expected)

    def test_count(self, table, table_setup):
        _hierarchy, column, _amounts = table_setup
        assert table.count((0, 5)) == (
            (column >= 0) & (column <= 5)
        ).sum()

    def test_multi_range_and_query_inputs(self, table, table_setup):
        _hierarchy, column, _amounts = table_setup
        by_list = table.count([(0, 2), (10, 12)])
        by_query = table.count(RangeQuery([(0, 2), (10, 12)]))
        expected = (
            ((column >= 0) & (column <= 2))
            | ((column >= 10) & (column <= 12))
        ).sum()
        assert by_list == by_query == expected


class TestAggregation:
    def test_sum_matches_numpy(self, table, table_setup):
        _hierarchy, column, amounts = table_setup
        total = table.aggregate((2, 11), measure="amount")
        mask = (column >= 2) & (column <= 11)
        assert total == pytest.approx(amounts[mask].sum())

    def test_unknown_measure(self, table):
        with pytest.raises(WorkloadError):
            table.aggregate((0, 1), measure="ghost")

    def test_measure_shape_validated(self, table_setup):
        hierarchy, column, _amounts = table_setup
        with pytest.raises(WorkloadError):
            Table(
                hierarchy,
                column,
                measures={"bad": np.zeros(3)},
            )


class TestOptimization:
    def test_optimize_reduces_io(self, table_setup):
        hierarchy, column, amounts = table_setup
        workload = fraction_workload(
            hierarchy.num_leaves, 0.5, 8, seed=5
        )

        naive = Table(hierarchy, column)
        for query in workload:
            naive.count(query)
        naive_bytes = naive.bytes_read

        tuned = Table(hierarchy, column)
        tuned.optimize_for(workload)
        for query in workload:
            tuned.count(query)
        assert tuned.bytes_read <= naive_bytes

    def test_optimize_with_budget_respects_pool(self, table_setup):
        hierarchy, column, _amounts = table_setup
        workload = fraction_workload(
            hierarchy.num_leaves, 0.5, 8, seed=5
        )
        table = Table(hierarchy, column)
        members = table.optimize_for(
            workload, memory_budget_mb=0.05
        )
        assert table.cut == members
        for query in workload:
            table.count(query)  # must not raise BudgetExceeded

    def test_results_unchanged_by_optimization(self, table_setup):
        hierarchy, column, amounts = table_setup
        workload = fraction_workload(
            hierarchy.num_leaves, 0.9, 5, seed=6
        )
        plain = Table(hierarchy, column)
        tuned = Table(hierarchy, column)
        tuned.optimize_for(workload)
        for query in workload:
            np.testing.assert_array_equal(
                plain.select(query), tuned.select(query)
            )

    def test_io_report_and_repr(self, table):
        table.count((0, 3))
        report = table.io_report()
        assert "MB read" in report
        assert "rows=20000" in repr(table)
