"""Scalability guardrails (beyond the paper's largest settings).

These keep the vectorized statistics and the linear-time DPs honest:
if someone reintroduces a quadratic loop, these tests get slow/fail
long before the benchmarks are run.
"""

from __future__ import annotations

import time

import pytest

from repro.core.multi import select_cut_multi
from repro.core.single import hybrid_cut
from repro.experiments.common import catalog_for
from repro.workload.generator import fraction_workload
from repro.workload.query import RangeQuery


class TestLargeHierarchies:
    def test_single_query_on_10k_leaves(self):
        catalog = catalog_for("tpch", 10_000, height=4)
        query = RangeQuery([(500, 8_999)])
        started = time.perf_counter()
        result = hybrid_cut(catalog, query)
        elapsed = time.perf_counter() - started
        assert result.cut.is_complete
        assert elapsed < 2.0

    def test_workload_on_5k_leaves(self):
        catalog = catalog_for("tpch", 5_000, height=4)
        workload = fraction_workload(5_000, 0.5, 100, seed=0)
        started = time.perf_counter()
        result = select_cut_multi(catalog, workload)
        elapsed = time.perf_counter() - started
        assert result.cost > 0
        assert elapsed < 5.0

    def test_cost_scales_sublinearly_with_hierarchy_size(self):
        """Bigger hierarchies give finer cuts, never worse cost than a
        coarser hierarchy of the same domain distribution."""
        costs = {}
        for num_leaves in (100, 1000):
            catalog = catalog_for("uniform", num_leaves, height=4)
            fraction_lo = int(0.2 * num_leaves)
            fraction_hi = int(0.7 * num_leaves) - 1
            query = RangeQuery([(fraction_lo, fraction_hi)])
            costs[num_leaves] = hybrid_cut(catalog, query).cost
        # Same logical half-domain query: the fine hierarchy can only
        # help (more internal nodes to choose from).
        assert costs[1000] <= costs[100] * 3.0
