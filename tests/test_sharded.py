"""Tests for sharded multiprocess scatter-gather serving.

Everything the thread-pool batch executor guarantees must survive the
process boundary: bit-identical answers, exact IO reconciliation (now
per shard *and* cross-process), deterministic trace merging, and typed
failure instead of hangs or silent partial answers.

All tests here carry the ``shard`` marker: they spawn real worker
processes, so they are slower than the in-process suite and CI runs
them in the dedicated serving job.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.executor import QueryExecutor, scan_answer
from repro.core.multi import select_cut_multi
from repro.errors import QueryFailedError, ShardFailedError
from repro.serve import (
    BatchExecutor,
    ShardSpec,
    ShardedExecutor,
    shard_row_ranges,
)
from repro.storage.cache import BufferPool
from repro.storage.catalog import node_file_name
from repro.workload.query import RangeQuery, Workload

pytestmark = pytest.mark.shard

QUERIES = [
    RangeQuery([(0, 2)]),
    RangeQuery([(3, 11)]),
    RangeQuery([(0, 15)]),
    RangeQuery([(2, 9), (12, 14)]),
    RangeQuery([(7, 7)]),
    RangeQuery([(1, 13)]),
]

NUM_SHARDS = 3


@pytest.fixture(scope="module")
def shard_base(materialized_setup, tmp_path_factory):
    """Per-shard stores built once for the module (builds are the
    slow part; executors over the same specs are cheap)."""
    hierarchy, column, _catalog = materialized_setup
    base = tmp_path_factory.mktemp("shard_stores")
    built = ShardedExecutor.build(
        hierarchy, column, NUM_SHARDS, base
    )
    return hierarchy, column, built.shard_specs


@pytest.fixture(scope="module")
def sharded_report(shard_base, materialized_setup):
    """One scatter-gather run of the standard batch, shared by the
    read-only correctness tests."""
    hierarchy, _column, specs = shard_base
    executor = ShardedExecutor(
        hierarchy, specs, threads_per_shard=2
    )
    with executor:
        cut_infos = executor.prepare(Workload(QUERIES))
        report = executor.run(QUERIES)
    return cut_infos, report


class TestShardRowRanges:
    def test_ranges_tile_the_rows_contiguously(self):
        for num_rows, num_shards in [
            (10, 1),
            (10, 3),
            (40_000, 7),
            (5, 5),
        ]:
            ranges = shard_row_ranges(num_rows, num_shards)
            assert len(ranges) == num_shards
            assert ranges[0][0] == 0
            assert ranges[-1][1] == num_rows
            for (_lo, hi), (next_lo, _hi) in zip(
                ranges, ranges[1:]
            ):
                assert hi == next_lo
            sizes = [hi - lo for lo, hi in ranges]
            assert min(sizes) >= 1
            assert max(sizes) - min(sizes) <= 1

    def test_invalid_shard_counts_are_rejected(self):
        with pytest.raises(ValueError):
            shard_row_ranges(10, 0)
        with pytest.raises(ValueError):
            shard_row_ranges(3, 4)

    def test_executor_rejects_non_tiling_specs(
        self, materialized_setup
    ):
        hierarchy, _column, _catalog = materialized_setup
        gap = [
            ShardSpec(0, "a", 0, 10),
            ShardSpec(1, "b", 20, 30),
        ]
        with pytest.raises(ValueError):
            ShardedExecutor(hierarchy, gap)
        with pytest.raises(ValueError):
            ShardedExecutor(hierarchy, [])
        with pytest.raises(ValueError):
            ShardedExecutor(
                hierarchy,
                [ShardSpec(0, "a", 0, 10)],
                threads_per_shard=0,
            )


class TestShardedCorrectness:
    def test_merged_answers_match_the_column_scan(
        self, sharded_report, materialized_setup
    ):
        _hierarchy, column, _catalog = materialized_setup
        _cut_infos, report = sharded_report
        assert report.ok
        for query, result in zip(QUERIES, report.results):
            assert result.answer == scan_answer(column, query)

    def test_merged_words_are_identical_to_the_serial_oracle(
        self, sharded_report, materialized_setup
    ):
        """Bit-identical, not just equal: canonical WAH makes the
        offset-concatenated merge word-for-word the single-shard
        answer."""
        _hierarchy, _column, catalog = materialized_setup
        cut = select_cut_multi(
            catalog, Workload(QUERIES)
        ).cut.node_ids
        oracle = BatchExecutor(
            QueryExecutor(catalog, BufferPool(catalog.store)),
            max_workers=1,
        ).run(QUERIES, cut)
        _cut_infos, report = sharded_report
        for ours, theirs in zip(
            report.outcomes, oracle.outcomes
        ):
            assert (
                ours.result.answer.words
                == theirs.result.answer.words
            )

    def test_io_reconciles_across_process_boundaries(
        self, sharded_report
    ):
        _cut_infos, report = sharded_report
        assert report.num_shards == NUM_SHARDS
        assert report.reconciles()
        for shard_report in report.shard_reports:
            assert shard_report.reconciles()
        assert report.io.bytes_read == sum(
            r.io.bytes_read for r in report.shard_reports
        )
        assert report.io.bytes_read > 0

    def test_every_shard_prepared_a_cut(self, sharded_report):
        cut_infos, report = sharded_report
        assert [info.shard_id for info in cut_infos] == list(
            range(NUM_SHARDS)
        )
        for info in cut_infos:
            assert info.cut_node_ids
        assert report.workers == NUM_SHARDS * 2

    def test_merged_events_are_densely_resequenced(
        self, sharded_report
    ):
        _cut_infos, report = sharded_report
        events = report.merged_events()
        assert events
        assert [event.seq for event in events] == list(
            range(len(events))
        )

    def test_event_streams_are_identical_across_runs(
        self, shard_base
    ):
        """Two fresh fleets over the same stores must merge the exact
        same trace — wall-clock interleaving never leaks in."""
        hierarchy, _column, specs = shard_base
        streams = []
        for _ in range(2):
            executor = ShardedExecutor(
                hierarchy, specs, threads_per_shard=1
            )
            with executor:
                executor.prepare(Workload(QUERIES))
                report = executor.run(QUERIES)
            streams.append(report.merged_events())
        assert streams[0] == streams[1]


class TestBudgetSlicing:
    def test_global_budget_slices_evenly_and_bounds_pools(
        self, shard_base
    ):
        hierarchy, _column, specs = shard_base
        total_budget = NUM_SHARDS * 256 * 1024
        executor = ShardedExecutor(
            hierarchy, specs, threads_per_shard=1
        )
        with executor:
            cut_infos = executor.prepare(
                Workload(QUERIES),
                budget_bytes_total=total_budget,
            )
            slice_bytes = total_budget // NUM_SHARDS
            for info in cut_infos:
                assert info.budget_bytes == slice_bytes
            report = executor.run(QUERIES)
        assert report.ok
        assert report.reconciles()
        for shard_report in report.shard_reports:
            assert shard_report.resident_bytes <= slice_bytes


class TestShardFailure:
    def test_dead_shard_raises_typed_error_not_a_hang(
        self, shard_base
    ):
        hierarchy, _column, specs = shard_base
        executor = ShardedExecutor(
            hierarchy, specs, recv_timeout_s=30.0
        )
        with executor:
            executor.prepare(Workload(QUERIES))
            victim = executor.worker_processes[1]
            victim.terminate()
            victim.join(timeout=10.0)
            with pytest.raises(ShardFailedError):
                executor.run(QUERIES)
        # The whole fleet is torn down on a shard failure — no
        # half-alive scatter state survives.
        assert not executor.started

    def test_query_failure_on_one_shard_is_isolated(
        self, materialized_setup, tmp_path
    ):
        """A query that fails on one shard becomes a typed per-query
        outcome carrying the shard id; siblings still answer and the
        batch still reconciles."""
        hierarchy, column, _catalog = materialized_setup
        executor = ShardedExecutor.build(
            hierarchy, column, 2, tmp_path
        )
        leaf_cut = tuple(
            hierarchy.leaf_node_id(value)
            for value in range(hierarchy.num_leaves)
        )
        batch = [RangeQuery([(0, 0)]), RangeQuery([(5, 8)])]
        with executor:
            executor.prepare(cut_node_ids=leaf_cut)
            # Workers have reopened their stores; now shard 1 loses
            # the leaf-0 bitmap that only the first query reads.
            os.remove(
                os.path.join(
                    executor.shard_specs[1].store_dir,
                    node_file_name(hierarchy.leaf_node_id(0)),
                )
            )
            report = executor.run(batch, pin=False)
        assert len(report.outcomes) == len(batch)
        assert not report.ok
        failed = report.outcomes[0]
        assert failed.result is None
        assert isinstance(failed.error, QueryFailedError)
        assert failed.error.query_index == 0
        assert failed.error.shard_id == 1
        healthy = report.outcomes[1]
        assert healthy.ok
        assert healthy.result.answer == scan_answer(
            column, batch[1]
        )
        assert report.reconciles()
        assert len(report.errors) == 1
        with pytest.raises(QueryFailedError):
            report.results

    def test_malformed_reply_tears_down_and_reaps_workers(
        self, shard_base
    ):
        """Regression: a reply failing post-scatter batch validation
        used to raise out of ``run()`` *without* teardown, leaking the
        still-healthy worker processes behind the dead handle."""
        hierarchy, _column, specs = shard_base
        executor = ShardedExecutor(hierarchy, specs)
        executor.start()
        executor.prepare(Workload(QUERIES))
        workers = executor.worker_processes
        assert workers and all(
            process.is_alive() for process in workers
        )
        original = executor._recv

        def corrupted(handle, expected_kind):
            message = original(handle, expected_kind)
            if expected_kind == "report":
                # Mis-label the shard id: the reply no longer matches
                # the scattered batch.
                return (message[0], message[1] + 100, *message[2:])
            return message

        executor._recv = corrupted
        with pytest.raises(ShardFailedError):
            executor.run(QUERIES)
        assert not executor.started
        for process in workers:
            process.join(timeout=10.0)
            assert not process.is_alive()

    def test_healthy_tracks_worker_liveness(self, shard_base):
        """``healthy`` (the gateway's failover hook) is True only
        while every worker process is alive."""
        hierarchy, _column, specs = shard_base
        executor = ShardedExecutor(
            hierarchy, specs, recv_timeout_s=30.0
        )
        assert not executor.healthy  # not started
        with executor:
            assert executor.healthy
            victim = executor.worker_processes[0]
            victim.terminate()
            victim.join(timeout=10.0)
            assert not executor.healthy
        assert not executor.healthy  # closed

    def test_shard_failed_error_survives_pickling(self):
        import pickle

        error = ShardFailedError(2, "worker exited with code -9")
        clone = pickle.loads(pickle.dumps(error))
        assert clone.shard_id == 2
        assert str(clone) == str(error)


class TestExecuteWorkloadSharded:
    def test_sharded_workload_matches_the_serial_path(
        self, materialized_setup
    ):
        _hierarchy, _column, catalog = materialized_setup
        workload = Workload(QUERIES)
        cut = select_cut_multi(catalog, workload).cut.node_ids
        serial_results, _serial_io = QueryExecutor(
            catalog, BufferPool(catalog.store)
        ).execute_workload(workload, cut)
        sharded_results, sharded_io = QueryExecutor(
            catalog, BufferPool(catalog.store)
        ).execute_workload(
            workload, cut, parallelism=2, shards=2
        )
        assert len(sharded_results) == len(serial_results)
        for ours, theirs in zip(
            sharded_results, serial_results
        ):
            assert (
                ours.answer.words == theirs.answer.words
            )
        assert sharded_io.bytes_read > 0

    def test_shards_below_one_are_rejected(
        self, materialized_setup
    ):
        _hierarchy, _column, catalog = materialized_setup
        with pytest.raises(ValueError):
            QueryExecutor(
                catalog, BufferPool(catalog.store)
            ).execute_workload(Workload(QUERIES), (), shards=0)


class TestReconstructColumn:
    def test_round_trips_the_indexed_column(
        self, materialized_setup
    ):
        _hierarchy, column, catalog = materialized_setup
        assert np.array_equal(
            catalog.reconstruct_column(), column
        )
