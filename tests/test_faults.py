"""Unit tests for deterministic fault injection, typed storage errors,
pool retry, and executor-level degradation."""

from __future__ import annotations

import pytest

from repro.bitmap.serialization import serialize_wah
from repro.bitmap.wah import WahBitmap
from repro.core.executor import QueryExecutor, scan_answer
from repro.errors import (
    BitmapDecodeError,
    FileMissingError,
    StorageError,
    StorageReadError,
    TransientStorageError,
    UnrecoverableReadError,
)
from repro.storage.cache import BufferPool
from repro.storage.catalog import MaterializedNodeCatalog, node_file_name
from repro.storage.faults import (
    FaultKind,
    FaultPolicy,
    RetryPolicy,
    get_default_fault_policy,
    set_default_fault_policy,
)
from repro.storage.filestore import BitmapFileStore
from repro.workload.query import RangeQuery


class TestFaultPolicy:
    def test_zero_rates_never_fault(self):
        policy = FaultPolicy(seed=7)
        payload = b"hello world"
        for _ in range(100):
            assert policy.filter_read("f", payload) == payload
        assert policy.total_injected == 0

    def test_same_seed_same_fault_sequence(self):
        def run(seed):
            policy = FaultPolicy(
                seed=seed, transient_rate=0.2, bitflip_rate=0.2
            )
            outcomes = []
            for _ in range(50):
                try:
                    outcomes.append(policy.filter_read("f", b"abcdef"))
                except TransientStorageError:
                    outcomes.append("transient")
            return outcomes

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_transient_raises_typed_error(self):
        policy = FaultPolicy(seed=0, transient_rate=1.0)
        with pytest.raises(TransientStorageError) as excinfo:
            policy.filter_read("node_3.wah", b"data")
        assert excinfo.value.file_name == "node_3.wah"

    def test_torn_read_truncates(self):
        policy = FaultPolicy(seed=1, torn_rate=1.0)
        payload = b"x" * 64
        torn = policy.filter_read("f", payload)
        assert len(torn) < len(payload)
        assert payload.startswith(torn)

    def test_bitflip_changes_exactly_one_bit(self):
        policy = FaultPolicy(seed=2, bitflip_rate=1.0)
        payload = bytes(range(32))
        flipped = policy.filter_read("f", payload)
        assert len(flipped) == len(payload)
        diff = [
            a ^ b for a, b in zip(payload, flipped) if a != b
        ]
        assert len(diff) == 1
        assert diff[0].bit_count() == 1

    def test_slow_read_sleeps_and_returns_payload(self):
        delays = []
        policy = FaultPolicy(
            seed=3,
            slow_rate=1.0,
            slow_delay_s=0.25,
            sleep=delays.append,
        )
        assert policy.filter_read("f", b"ok") == b"ok"
        assert delays == [0.25]
        assert policy.injected[FaultKind.SLOW] == 1

    def test_consecutive_cap_forces_clean_read(self):
        policy = FaultPolicy(
            seed=4, transient_rate=1.0, max_consecutive_per_name=2
        )
        for _ in range(2):
            with pytest.raises(TransientStorageError):
                policy.filter_read("f", b"data")
        # Third read of the same name is forced clean.
        assert policy.filter_read("f", b"data") == b"data"

    def test_sticky_corruption_is_identical_every_read(self):
        policy = FaultPolicy(seed=5, sticky_corrupt_names={"bad"})
        payload = b"q" * 100
        first = policy.filter_read("bad", payload)
        assert first != payload
        for _ in range(5):
            assert policy.filter_read("bad", payload) == first
        assert policy.filter_read("good", payload) == payload

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPolicy(transient_rate=1.5)
        with pytest.raises(ValueError):
            FaultPolicy(transient_rate=0.6, torn_rate=0.6)
        with pytest.raises(ValueError):
            FaultPolicy.uniform(-0.1)

    def test_uniform_splits_rate(self):
        policy = FaultPolicy.uniform(0.3, seed=9)
        hits = 0
        for _ in range(2000):
            try:
                if policy.filter_read("f", b"p" * 16) != b"p" * 16:
                    hits += 1
            except TransientStorageError:
                hits += 1
        # ~0.3 overall, generously bracketed (the consecutive cap
        # slightly depresses the realized rate).
        assert 0.15 < hits / 2000 < 0.45


class TestTypedStoreErrors:
    @pytest.fixture(params=["memory", "directory"])
    def store(self, request, tmp_path) -> BitmapFileStore:
        if request.param == "memory":
            return BitmapFileStore()
        return BitmapFileStore(tmp_path / "bitmaps")

    def test_read_missing_raises_file_missing(self, store):
        with pytest.raises(FileMissingError) as excinfo:
            store.read("ghost")
        assert excinfo.value.file_name == "ghost"
        assert excinfo.value.offset == 0
        assert isinstance(excinfo.value, StorageReadError)
        assert isinstance(excinfo.value, StorageError)

    def test_size_bytes_missing_raises_file_missing(self, store):
        with pytest.raises(FileMissingError) as excinfo:
            store.size_bytes("ghost")
        assert excinfo.value.file_name == "ghost"

    def test_fault_policy_attaches_and_clears(self, store):
        store.write("f", b"data")
        policy = FaultPolicy(seed=0, transient_rate=1.0)
        store.set_fault_policy(policy)
        assert store.fault_policy is policy
        with pytest.raises(TransientStorageError):
            store.read("f")
        store.set_fault_policy(None)
        assert store.read("f") == b"data"

    def test_default_policy_adopted_by_new_stores(self):
        policy = FaultPolicy(seed=0, transient_rate=1.0)
        set_default_fault_policy(policy)
        try:
            store = BitmapFileStore()
            assert store.fault_policy is policy
        finally:
            set_default_fault_policy(None)
        assert get_default_fault_policy() is None
        assert BitmapFileStore().fault_policy is None


class TestPoolRetry:
    def test_transient_faults_absorbed_by_retry(self):
        store = BitmapFileStore(
            fault_policy=FaultPolicy(
                seed=1, transient_rate=0.5, max_consecutive_per_name=2
            )
        )
        store.write("f", b"payload")
        pool = BufferPool(
            store, retry_policy=RetryPolicy(max_attempts=4)
        )
        for _ in range(20):
            pool.clear()
            assert pool.get("f") == b"payload"
        assert pool.accountant.retry_count > 0

    def test_retry_exhaustion_propagates_transient(self):
        store = BitmapFileStore(
            fault_policy=FaultPolicy(
                seed=1,
                transient_rate=1.0,
                max_consecutive_per_name=50,
            )
        )
        store.write("f", b"payload")
        pool = BufferPool(
            store, retry_policy=RetryPolicy(max_attempts=3)
        )
        with pytest.raises(TransientStorageError):
            pool.get("f")
        assert pool.accountant.retry_count == 3
        assert pool.accountant.bytes_read == 0

    def test_retry_backoff_sleeps_growing_delays(self):
        delays = []
        store = BitmapFileStore(
            fault_policy=FaultPolicy(
                seed=1,
                transient_rate=1.0,
                max_consecutive_per_name=50,
            )
        )
        store.write("f", b"payload")
        pool = BufferPool(
            store,
            retry_policy=RetryPolicy(
                max_attempts=3,
                backoff_s=0.1,
                backoff_multiplier=2.0,
                sleep=delays.append,
            ),
        )
        with pytest.raises(TransientStorageError):
            pool.get("f")
        assert delays == [0.1, 0.2]

    def test_reload_replaces_pinned_payload(self):
        store = BitmapFileStore()
        store.write("f", b"version-one")
        pool = BufferPool(store)
        pool.pin(["f"])
        store.write("f", b"version-two!")
        assert pool.get("f") == b"version-one"
        assert pool.reload("f") == b"version-two!"
        # Still pinned, with the new bytes accounted.
        assert pool.contains("f")
        assert pool.pinned_bytes == len(b"version-two!")

    def test_invalidate_unpinned_then_get_refetches(self):
        store = BitmapFileStore()
        store.write("f", b"abc")
        pool = BufferPool(store)
        pool.get("f")
        assert pool.accountant.read_count == 1
        assert pool.invalidate("f") is False
        pool.get("f")
        assert pool.accountant.read_count == 2


@pytest.fixture
def tiny_executor_setup(materialized_setup):
    hierarchy, column, catalog = materialized_setup
    return hierarchy, column, catalog


class TestExecutorDegradation:
    def test_sticky_internal_node_recovers_from_children(
        self, tiny_executor_setup
    ):
        hierarchy, column, catalog = tiny_executor_setup
        victim = hierarchy.internal_children(hierarchy.root_id)[0]
        policy = FaultPolicy(
            seed=0,
            sticky_corrupt_names={node_file_name(victim)},
        )
        catalog.store.set_fault_policy(policy)
        try:
            executor = QueryExecutor(catalog)
            query = RangeQuery([(0, hierarchy.num_leaves - 1)])
            result = executor.execute_query(query, [victim])
            assert result.answer == scan_answer(column, query)
            assert result.degraded
            event = result.degraded_reads[-1]
            assert event.node_id == victim
            assert event.recovered_from == tuple(
                hierarchy.node(victim).children
            )
            assert executor.pool.accountant.discard_count > 0
        finally:
            catalog.store.set_fault_policy(None)

    def test_sticky_leaf_is_unrecoverable(self, tiny_executor_setup):
        hierarchy, _column, catalog = tiny_executor_setup
        leaf = hierarchy.leaf_node_id(0)
        policy = FaultPolicy(
            seed=0, sticky_corrupt_names={node_file_name(leaf)}
        )
        catalog.store.set_fault_policy(policy)
        try:
            executor = QueryExecutor(catalog)
            with pytest.raises(UnrecoverableReadError):
                executor.execute_query(RangeQuery([(0, 0)]))
        finally:
            catalog.store.set_fault_policy(None)

    def test_allow_degraded_false_raises(self, tiny_executor_setup):
        hierarchy, _column, catalog = tiny_executor_setup
        victim = hierarchy.internal_children(hierarchy.root_id)[0]
        policy = FaultPolicy(
            seed=0, sticky_corrupt_names={node_file_name(victim)}
        )
        catalog.store.set_fault_policy(policy)
        try:
            executor = QueryExecutor(catalog, allow_degraded=False)
            query = RangeQuery([(0, hierarchy.num_leaves - 1)])
            with pytest.raises(BitmapDecodeError):
                executor.execute_query(query, [victim])
        finally:
            catalog.store.set_fault_policy(None)

    def test_missing_internal_file_degrades(self, tmp_path):
        # A deleted internal-node file (not just a corrupt one) also
        # recovers via the descendant union.
        from repro.hierarchy.tree import Hierarchy
        from repro.workload import (
            sample_column,
            tpch_acctbal_leaf_probabilities,
        )

        hierarchy = Hierarchy.from_nested([[2, 2], [3]])
        probabilities = tpch_acctbal_leaf_probabilities(
            hierarchy.num_leaves, seed=1
        )
        column = sample_column(
            probabilities, num_rows=5_000, seed=2
        )
        catalog = MaterializedNodeCatalog(hierarchy, column)
        victim = hierarchy.internal_children(hierarchy.root_id)[0]
        name = node_file_name(victim)
        # Simulate at-rest loss of the node's file.
        catalog.store.delete(name)
        executor = QueryExecutor(catalog)
        query = RangeQuery([(0, hierarchy.num_leaves - 1)])
        result = executor.execute_query(query, [victim])
        assert result.answer == scan_answer(column, query)
        assert result.degraded
        assert "FileMissingError" in result.degraded_reads[-1].error


def test_wah_roundtrip_survives_pool(tmp_path):
    """Framed WAH payloads written/read through a real directory."""
    store = BitmapFileStore(tmp_path)
    bitmap = WahBitmap.from_positions([1, 5, 77, 1000], 2048)
    store.write("x.wah", serialize_wah(bitmap))
    pool = BufferPool(store)
    from repro.bitmap.serialization import deserialize_wah

    assert deserialize_wah(pool.get("x.wah")) == bitmap
