"""Tests for OLAP aggregation over bitmap-selected rows."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.executor import QueryExecutor
from repro.core.opnodes import leaf_only_plan
from repro.core.single import hybrid_cut
from repro.core.opnodes import build_query_plan
from repro.workload.query import RangeQuery


@pytest.fixture
def measure(materialized_setup) -> np.ndarray:
    _hierarchy, column, _catalog = materialized_setup
    rng = np.random.default_rng(99)
    return rng.uniform(0.0, 100.0, size=column.size)


class TestAggregates:
    @pytest.mark.parametrize(
        "agg,reducer",
        [
            ("count", lambda values: float(values.size)),
            ("sum", lambda values: float(values.sum())),
            ("avg", lambda values: float(values.mean())),
            ("min", lambda values: float(values.min())),
            ("max", lambda values: float(values.max())),
        ],
    )
    def test_matches_numpy_over_scan(
        self, materialized_setup, measure, agg, reducer
    ):
        _hierarchy, column, catalog = materialized_setup
        query = RangeQuery([(3, 11)])
        executor = QueryExecutor(catalog)
        value, _result = executor.aggregate(
            leaf_only_plan(catalog, query), measure, agg
        )
        mask = (column >= 3) & (column <= 11)
        assert value == pytest.approx(reducer(measure[mask]))

    def test_same_result_under_any_plan(
        self, materialized_setup, measure
    ):
        _hierarchy, column, catalog = materialized_setup
        query = RangeQuery([(1, 13)])
        selection = hybrid_cut(catalog, query)
        plan = build_query_plan(
            catalog,
            query,
            selection.cut.node_ids,
            labels=selection.labels,
        )
        executor = QueryExecutor(catalog)
        via_cut, _ = executor.aggregate(plan, measure, "sum")
        via_leaves, _ = executor.aggregate(
            leaf_only_plan(catalog, query), measure, "sum"
        )
        assert via_cut == pytest.approx(via_leaves)

    def test_empty_selection(self):
        from repro.hierarchy.tree import Hierarchy
        from repro.storage.catalog import MaterializedNodeCatalog

        hierarchy = Hierarchy.from_nested([2, 2])
        # Leaf value 3 never occurs in the column.
        column = np.array([0, 1, 2, 0, 1], dtype=np.int64)
        catalog = MaterializedNodeCatalog(hierarchy, column)
        measure = np.arange(column.size, dtype=float)
        leaf = 3
        query = RangeQuery([(leaf, leaf)])
        executor = QueryExecutor(catalog)
        count, _ = executor.aggregate(
            leaf_only_plan(catalog, query), measure, "count"
        )
        assert count == 0.0
        total, _ = executor.aggregate(
            leaf_only_plan(catalog, query), measure, "sum"
        )
        assert total == 0.0
        avg, _ = executor.aggregate(
            leaf_only_plan(catalog, query), measure, "avg"
        )
        assert np.isnan(avg)

    def test_validation(self, materialized_setup, measure):
        _hierarchy, _column, catalog = materialized_setup
        query = RangeQuery([(0, 1)])
        executor = QueryExecutor(catalog)
        plan = leaf_only_plan(catalog, query)
        with pytest.raises(ValueError):
            executor.aggregate(plan, measure, "median")
        with pytest.raises(ValueError):
            executor.aggregate(plan, measure[:-1], "sum")

    def test_returns_execution_result(
        self, materialized_setup, measure
    ):
        _hierarchy, _column, catalog = materialized_setup
        query = RangeQuery([(0, 5)])
        executor = QueryExecutor(catalog)
        _value, result = executor.aggregate(
            leaf_only_plan(catalog, query), measure, "count"
        )
        assert result.io_bytes > 0
        assert result.query == query
