"""Tests for the concurrent batch executor (``repro.serve``).

Everything the serial loop guarantees must survive the thread fan-out:
answers, ordering, per-query IO attribution, trace determinism, and
exact reconciliation with the shared accountant.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.executor import QueryExecutor, scan_answer
from repro.core.multi import select_cut_multi
from repro.serve import BatchExecutor
from repro.storage.cache import BufferPool
from repro.workload.query import RangeQuery, Workload

QUERIES = [
    RangeQuery([(0, 2)]),
    RangeQuery([(3, 11)]),
    RangeQuery([(0, 15)]),
    RangeQuery([(2, 9), (12, 14)]),
    RangeQuery([(7, 7)]),
    RangeQuery([(1, 13)]),
]


def _cut_for(catalog, queries):
    return select_cut_multi(
        catalog, Workload(queries)
    ).cut.node_ids


def _fresh_executor(catalog) -> QueryExecutor:
    return QueryExecutor(catalog, BufferPool(catalog.store))


class TestBatchCorrectness:
    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_answers_match_the_column_scan(
        self, materialized_setup, workers
    ):
        _hierarchy, column, catalog = materialized_setup
        cut = _cut_for(catalog, QUERIES)
        report = BatchExecutor(
            _fresh_executor(catalog), max_workers=workers
        ).run(QUERIES, cut)
        for query, result in zip(QUERIES, report.results):
            assert result.answer == scan_answer(column, query)

    def test_outcomes_come_back_in_query_order(
        self, materialized_setup
    ):
        _hierarchy, _column, catalog = materialized_setup
        cut = _cut_for(catalog, QUERIES)
        report = BatchExecutor(
            _fresh_executor(catalog), max_workers=4
        ).run(QUERIES, cut)
        assert [o.index for o in report.outcomes] == list(
            range(len(QUERIES))
        )

    def test_concurrent_results_match_the_serial_oracle(
        self, materialized_setup
    ):
        _hierarchy, _column, catalog = materialized_setup
        cut = _cut_for(catalog, QUERIES)
        serial = BatchExecutor(
            _fresh_executor(catalog), max_workers=1
        ).run(QUERIES, cut)
        concurrent = BatchExecutor(
            _fresh_executor(catalog), max_workers=8
        ).run(QUERIES, cut)
        for ours, theirs in zip(
            concurrent.outcomes, serial.outcomes
        ):
            assert (
                ours.result.answer.words
                == theirs.result.answer.words
            )

    def test_empty_batch(self, materialized_setup):
        _hierarchy, _column, catalog = materialized_setup
        report = BatchExecutor(
            _fresh_executor(catalog), max_workers=4
        ).run([])
        assert report.outcomes == ()
        assert report.reconciles()

    def test_max_workers_validated(self, materialized_setup):
        _hierarchy, _column, catalog = materialized_setup
        with pytest.raises(ValueError):
            BatchExecutor(_fresh_executor(catalog), max_workers=0)


class TestAttribution:
    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_io_reconciles_exactly(
        self, materialized_setup, workers
    ):
        _hierarchy, _column, catalog = materialized_setup
        cut = _cut_for(catalog, QUERIES)
        report = BatchExecutor(
            _fresh_executor(catalog), max_workers=workers
        ).run(QUERIES, cut)
        assert report.reconciles()
        assert (
            report.pin_io.bytes_read + report.attributed_bytes
            == report.io.bytes_read
        )

    def test_singleflight_never_reads_more_than_serial(
        self, materialized_setup
    ):
        _hierarchy, _column, catalog = materialized_setup
        cut = _cut_for(catalog, QUERIES)
        serial = BatchExecutor(
            _fresh_executor(catalog), max_workers=1
        ).run(QUERIES, cut)
        concurrent = BatchExecutor(
            _fresh_executor(catalog), max_workers=8
        ).run(QUERIES, cut)
        assert (
            concurrent.io.bytes_read <= serial.io.bytes_read
        )
        assert (
            concurrent.io.read_count <= serial.io.read_count
        )

    def test_per_query_io_matches_a_solo_run(
        self, materialized_setup
    ):
        """Each outcome's attributed IO equals what the same query
        costs alone on an identically-warmed pool."""
        _hierarchy, _column, catalog = materialized_setup
        cut = _cut_for(catalog, QUERIES)
        batch = BatchExecutor(
            _fresh_executor(catalog), max_workers=1
        ).run(QUERIES, cut)
        for query, outcome in zip(QUERIES, batch.outcomes):
            executor = _fresh_executor(catalog)
            executor.pin_cut(cut)
            solo = BatchExecutor(executor, max_workers=1).run(
                [query], cut, pin=False, node_is_cached=True
            )
            # The serial batch warms the pool's unbounded LRU as it
            # goes, so later queries may read strictly less than a
            # solo cold run — never more.
            assert (
                outcome.io.bytes_read
                <= solo.outcomes[0].io.bytes_read
            )


class TestTraceDeterminism:
    def test_serial_merged_events_identical_across_runs(
        self, materialized_setup
    ):
        """The 1-worker merge is a byte-identical replay oracle."""
        _hierarchy, _column, catalog = materialized_setup
        cut = _cut_for(catalog, QUERIES)

        def run_once():
            report = BatchExecutor(
                _fresh_executor(catalog), max_workers=1
            ).run(QUERIES, cut)
            return [
                (event.seq, event.kind, event.name, event.attrs)
                for event in report.merged_events()
            ]

        assert run_once() == run_once()

    def test_concurrent_merge_is_query_ordered_and_dense(
        self, materialized_setup
    ):
        """Which query wins a single-flight race varies run to run, so
        the concurrent streams are not byte-stable — but the merge
        contract is: all of query i's events precede query i+1's, and
        sequence numbers re-number densely from 0."""
        _hierarchy, _column, catalog = materialized_setup
        cut = _cut_for(catalog, QUERIES)
        report = BatchExecutor(
            _fresh_executor(catalog), max_workers=8
        ).run(QUERIES, cut)
        merged = report.merged_events()
        assert [event.seq for event in merged] == list(
            range(len(merged))
        )
        per_query_lengths = [
            len(outcome.events) for outcome in report.outcomes
        ]
        offset = 0
        for outcome, length in zip(
            report.outcomes, per_query_lengths
        ):
            window = merged[offset : offset + length]
            assert [
                (event.kind, event.name) for event in window
            ] == [
                (event.kind, event.name)
                for event in outcome.events
            ]
            offset += length
        assert offset == len(merged)


class TestExplainAnalyzeConcurrency:
    def test_parallel_explain_analyze_streams_stay_private(
        self, materialized_setup
    ):
        """explain_analyze calls racing on ONE executor must not leak
        events or bytes into each other's reports: per-report IO sums
        to the shared pool's delta, and answers stay correct."""
        _hierarchy, column, catalog = materialized_setup
        executor = _fresh_executor(catalog)
        queries = [QUERIES[0], QUERIES[2], QUERIES[3], QUERIES[5]]
        before = executor.pool.accountant.snapshot()
        with ThreadPoolExecutor(max_workers=4) as tpe:
            racing = list(
                tpe.map(executor.explain_analyze, queries)
            )
        delta = executor.pool.accountant.diff_since(before)
        assert (
            sum(report.io.bytes_read for report in racing)
            == delta.bytes_read
        )
        assert (
            sum(report.io.read_count for report in racing)
            == delta.read_count
        )
        for query, report in zip(queries, racing):
            assert report.answer_count == scan_answer(
                column, query
            ).count()

    def test_private_reports_match_solo_runs_on_cold_pools(
        self, materialized_setup
    ):
        """A report produced under racing on a *private* pool is
        byte-identical to the same query explained alone."""
        _hierarchy, _column, catalog = materialized_setup
        queries = [QUERIES[0], QUERIES[2]]
        solo_reports = [
            _fresh_executor(catalog).explain_analyze(query)
            for query in queries
        ]
        with ThreadPoolExecutor(max_workers=2) as tpe:
            racing = list(
                tpe.map(
                    lambda query: _fresh_executor(
                        catalog
                    ).explain_analyze(query),
                    queries,
                )
            )
        for solo, raced in zip(solo_reports, racing):
            assert raced.measured_bytes == solo.measured_bytes
            assert len(raced.events) == len(solo.events)


class TestExecuteWorkloadParallel:
    @pytest.mark.parametrize("parallelism", [2, 8])
    def test_parallel_workload_matches_serial(
        self, materialized_setup, parallelism
    ):
        _hierarchy, _column, catalog = materialized_setup
        workload = Workload(QUERIES)
        cut = _cut_for(catalog, QUERIES)
        serial_results, serial_io = _fresh_executor(
            catalog
        ).execute_workload(workload, cut)
        parallel_results, parallel_io = _fresh_executor(
            catalog
        ).execute_workload(workload, cut, parallelism=parallelism)
        assert len(parallel_results) == len(serial_results)
        for ours, theirs in zip(parallel_results, serial_results):
            assert ours.answer.words == theirs.answer.words
        assert parallel_io.bytes_read <= serial_io.bytes_read

    def test_parallelism_validated(self, materialized_setup):
        _hierarchy, _column, catalog = materialized_setup
        with pytest.raises(ValueError):
            _fresh_executor(catalog).execute_workload(
                Workload(QUERIES), parallelism=0
            )
