"""Tests for the concurrent batch executor (``repro.serve``).

Everything the serial loop guarantees must survive the thread fan-out:
answers, ordering, per-query IO attribution, trace determinism, and
exact reconciliation with the shared accountant.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.executor import QueryExecutor, scan_answer
from repro.core.multi import select_cut_multi
from repro.errors import QueryFailedError
from repro.serve import BatchExecutor
from repro.storage.accounting import IOSnapshot
from repro.storage.cache import BufferPool
from repro.workload.query import RangeQuery, Workload

QUERIES = [
    RangeQuery([(0, 2)]),
    RangeQuery([(3, 11)]),
    RangeQuery([(0, 15)]),
    RangeQuery([(2, 9), (12, 14)]),
    RangeQuery([(7, 7)]),
    RangeQuery([(1, 13)]),
]


def _cut_for(catalog, queries):
    return select_cut_multi(
        catalog, Workload(queries)
    ).cut.node_ids


def _fresh_executor(catalog) -> QueryExecutor:
    return QueryExecutor(catalog, BufferPool(catalog.store))


class TestBatchCorrectness:
    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_answers_match_the_column_scan(
        self, materialized_setup, workers
    ):
        _hierarchy, column, catalog = materialized_setup
        cut = _cut_for(catalog, QUERIES)
        report = BatchExecutor(
            _fresh_executor(catalog), max_workers=workers
        ).run(QUERIES, cut)
        for query, result in zip(QUERIES, report.results):
            assert result.answer == scan_answer(column, query)

    def test_outcomes_come_back_in_query_order(
        self, materialized_setup
    ):
        _hierarchy, _column, catalog = materialized_setup
        cut = _cut_for(catalog, QUERIES)
        report = BatchExecutor(
            _fresh_executor(catalog), max_workers=4
        ).run(QUERIES, cut)
        assert [o.index for o in report.outcomes] == list(
            range(len(QUERIES))
        )

    def test_concurrent_results_match_the_serial_oracle(
        self, materialized_setup
    ):
        _hierarchy, _column, catalog = materialized_setup
        cut = _cut_for(catalog, QUERIES)
        serial = BatchExecutor(
            _fresh_executor(catalog), max_workers=1
        ).run(QUERIES, cut)
        concurrent = BatchExecutor(
            _fresh_executor(catalog), max_workers=8
        ).run(QUERIES, cut)
        for ours, theirs in zip(
            concurrent.outcomes, serial.outcomes
        ):
            assert (
                ours.result.answer.words
                == theirs.result.answer.words
            )

    def test_empty_batch(self, materialized_setup):
        _hierarchy, _column, catalog = materialized_setup
        report = BatchExecutor(
            _fresh_executor(catalog), max_workers=4
        ).run([])
        assert report.outcomes == ()
        assert report.reconciles()

    def test_max_workers_validated(self, materialized_setup):
        _hierarchy, _column, catalog = materialized_setup
        with pytest.raises(ValueError):
            BatchExecutor(_fresh_executor(catalog), max_workers=0)


class TestWorkersReporting:
    """``BatchReport.workers`` is the count actually used, not the
    configured maximum (regression: it used to echo ``max_workers``)."""

    def test_workers_clamped_to_batch_size(
        self, materialized_setup
    ):
        _hierarchy, _column, catalog = materialized_setup
        cut = _cut_for(catalog, QUERIES)
        report = BatchExecutor(
            _fresh_executor(catalog), max_workers=32
        ).run(QUERIES, cut)
        assert report.workers == len(QUERIES)

    def test_serial_degeneration_reports_one_worker(
        self, materialized_setup
    ):
        _hierarchy, _column, catalog = materialized_setup
        cut = _cut_for(catalog, QUERIES)
        single = BatchExecutor(
            _fresh_executor(catalog), max_workers=8
        ).run(QUERIES[:1], cut)
        assert single.workers == 1
        empty = BatchExecutor(
            _fresh_executor(catalog), max_workers=8
        ).run([])
        assert empty.workers == 1

    def test_workers_reported_when_pool_smaller_than_batch(
        self, materialized_setup
    ):
        _hierarchy, _column, catalog = materialized_setup
        cut = _cut_for(catalog, QUERIES)
        report = BatchExecutor(
            _fresh_executor(catalog), max_workers=4
        ).run(QUERIES, cut)
        assert report.workers == 4


class _FailingExecutor(QueryExecutor):
    """Raises for queries whose label marks them as poisoned."""

    def execute_query(self, query, cut_node_ids=(), **kwargs):
        if query.label == "poison":
            raise ValueError("injected query failure")
        return super().execute_query(
            query, cut_node_ids, **kwargs
        )


class TestFailureIsolation:
    """One raising query must not abort its siblings (regression:
    ``tpe.map`` used to propagate the first exception and discard
    every other outcome)."""

    @pytest.mark.parametrize("workers", [1, 4])
    def test_healthy_queries_survive_a_failing_sibling(
        self, materialized_setup, workers
    ):
        _hierarchy, column, catalog = materialized_setup
        cut = _cut_for(catalog, QUERIES)
        batch = list(QUERIES)
        batch.insert(2, RangeQuery([(0, 3)], label="poison"))
        report = BatchExecutor(
            _FailingExecutor(catalog, BufferPool(catalog.store)),
            max_workers=workers,
        ).run(batch, cut)
        assert len(report.outcomes) == len(batch)
        assert not report.ok
        assert len(report.errors) == 1
        failed = report.outcomes[2]
        assert failed.result is None
        assert not failed.ok
        assert isinstance(failed.error, QueryFailedError)
        assert failed.error.query_index == 2
        assert failed.error.error_type == "ValueError"
        for index, outcome in enumerate(report.outcomes):
            if index == 2:
                continue
            assert outcome.ok
            assert outcome.result.answer == scan_answer(
                column, batch[index]
            )
        assert report.reconciles()

    def test_results_raises_the_first_failure(
        self, materialized_setup
    ):
        _hierarchy, _column, catalog = materialized_setup
        batch = [
            QUERIES[0],
            RangeQuery([(0, 3)], label="poison"),
        ]
        report = BatchExecutor(
            _FailingExecutor(catalog, BufferPool(catalog.store)),
            max_workers=2,
        ).run(batch)
        with pytest.raises(QueryFailedError) as excinfo:
            report.results
        assert excinfo.value.query_index == 1

    def test_query_failed_error_survives_pickling(self):
        import pickle

        error = QueryFailedError(
            3, "ChecksumError", "payload mismatch", shard_id=1
        )
        clone = pickle.loads(pickle.dumps(error))
        assert clone.query_index == 3
        assert clone.error_type == "ChecksumError"
        assert clone.shard_id == 1
        assert str(clone) == str(error)


class TestReconcileFaultCounters:
    """``reconciles()`` must balance the fault path, not just useful
    bytes (regression: a retry charged to the wrong accountant used to
    pass)."""

    @staticmethod
    def _snapshot(**overrides) -> IOSnapshot:
        base = dict(
            bytes_read=0,
            read_count=0,
            reads_by_name={},
            retry_count=0,
            discarded_bytes=0,
            discard_count=0,
            bytes_by_name={},
        )
        base.update(overrides)
        return IOSnapshot(**base)

    def _report(self, pin_io, outcome_io, total_io):
        from repro.serve import BatchReport, QueryOutcome

        outcome = QueryOutcome(
            index=0,
            result=None,
            io=outcome_io,
            events=(),
            wall_seconds=0.0,
        )
        return BatchReport(
            outcomes=(outcome,),
            pin_io=pin_io,
            io=total_io,
            wall_seconds=0.0,
            workers=1,
        )

    def test_unattributed_retry_fails_reconciliation(self):
        report = self._report(
            self._snapshot(),
            self._snapshot(),
            self._snapshot(retry_count=1),
        )
        assert not report.reconciles()

    def test_unattributed_discard_fails_reconciliation(self):
        report = self._report(
            self._snapshot(),
            self._snapshot(),
            self._snapshot(discarded_bytes=64, discard_count=1),
        )
        assert not report.reconciles()

    def test_balanced_fault_counters_reconcile(self):
        report = self._report(
            self._snapshot(retry_count=1),
            self._snapshot(
                retry_count=2, discarded_bytes=64, discard_count=1
            ),
            self._snapshot(
                retry_count=3, discarded_bytes=64, discard_count=1
            ),
        )
        assert report.reconciles()


class TestAttribution:
    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_io_reconciles_exactly(
        self, materialized_setup, workers
    ):
        _hierarchy, _column, catalog = materialized_setup
        cut = _cut_for(catalog, QUERIES)
        report = BatchExecutor(
            _fresh_executor(catalog), max_workers=workers
        ).run(QUERIES, cut)
        assert report.reconciles()
        assert (
            report.pin_io.bytes_read + report.attributed_bytes
            == report.io.bytes_read
        )

    def test_singleflight_never_reads_more_than_serial(
        self, materialized_setup
    ):
        _hierarchy, _column, catalog = materialized_setup
        cut = _cut_for(catalog, QUERIES)
        serial = BatchExecutor(
            _fresh_executor(catalog), max_workers=1
        ).run(QUERIES, cut)
        concurrent = BatchExecutor(
            _fresh_executor(catalog), max_workers=8
        ).run(QUERIES, cut)
        assert (
            concurrent.io.bytes_read <= serial.io.bytes_read
        )
        assert (
            concurrent.io.read_count <= serial.io.read_count
        )

    def test_per_query_io_matches_a_solo_run(
        self, materialized_setup
    ):
        """Each outcome's attributed IO equals what the same query
        costs alone on an identically-warmed pool."""
        _hierarchy, _column, catalog = materialized_setup
        cut = _cut_for(catalog, QUERIES)
        batch = BatchExecutor(
            _fresh_executor(catalog), max_workers=1
        ).run(QUERIES, cut)
        for query, outcome in zip(QUERIES, batch.outcomes):
            executor = _fresh_executor(catalog)
            executor.pin_cut(cut)
            solo = BatchExecutor(executor, max_workers=1).run(
                [query], cut, pin=False, node_is_cached=True
            )
            # The serial batch warms the pool's unbounded LRU as it
            # goes, so later queries may read strictly less than a
            # solo cold run — never more.
            assert (
                outcome.io.bytes_read
                <= solo.outcomes[0].io.bytes_read
            )


class TestTraceDeterminism:
    def test_serial_merged_events_identical_across_runs(
        self, materialized_setup
    ):
        """The 1-worker merge is a byte-identical replay oracle."""
        _hierarchy, _column, catalog = materialized_setup
        cut = _cut_for(catalog, QUERIES)

        def run_once():
            report = BatchExecutor(
                _fresh_executor(catalog), max_workers=1
            ).run(QUERIES, cut)
            return [
                (event.seq, event.kind, event.name, event.attrs)
                for event in report.merged_events()
            ]

        assert run_once() == run_once()

    def test_concurrent_merge_is_query_ordered_and_dense(
        self, materialized_setup
    ):
        """Which query wins a single-flight race varies run to run, so
        the concurrent streams are not byte-stable — but the merge
        contract is: all of query i's events precede query i+1's, and
        sequence numbers re-number densely from 0."""
        _hierarchy, _column, catalog = materialized_setup
        cut = _cut_for(catalog, QUERIES)
        report = BatchExecutor(
            _fresh_executor(catalog), max_workers=8
        ).run(QUERIES, cut)
        merged = report.merged_events()
        assert [event.seq for event in merged] == list(
            range(len(merged))
        )
        per_query_lengths = [
            len(outcome.events) for outcome in report.outcomes
        ]
        offset = 0
        for outcome, length in zip(
            report.outcomes, per_query_lengths
        ):
            window = merged[offset : offset + length]
            assert [
                (event.kind, event.name) for event in window
            ] == [
                (event.kind, event.name)
                for event in outcome.events
            ]
            offset += length
        assert offset == len(merged)


class TestExplainAnalyzeConcurrency:
    def test_parallel_explain_analyze_streams_stay_private(
        self, materialized_setup
    ):
        """explain_analyze calls racing on ONE executor must not leak
        events or bytes into each other's reports: per-report IO sums
        to the shared pool's delta, and answers stay correct."""
        _hierarchy, column, catalog = materialized_setup
        executor = _fresh_executor(catalog)
        queries = [QUERIES[0], QUERIES[2], QUERIES[3], QUERIES[5]]
        before = executor.pool.accountant.snapshot()
        with ThreadPoolExecutor(max_workers=4) as tpe:
            racing = list(
                tpe.map(executor.explain_analyze, queries)
            )
        delta = executor.pool.accountant.diff_since(before)
        assert (
            sum(report.io.bytes_read for report in racing)
            == delta.bytes_read
        )
        assert (
            sum(report.io.read_count for report in racing)
            == delta.read_count
        )
        for query, report in zip(queries, racing):
            assert report.answer_count == scan_answer(
                column, query
            ).count()

    def test_private_reports_match_solo_runs_on_cold_pools(
        self, materialized_setup
    ):
        """A report produced under racing on a *private* pool is
        byte-identical to the same query explained alone."""
        _hierarchy, _column, catalog = materialized_setup
        queries = [QUERIES[0], QUERIES[2]]
        solo_reports = [
            _fresh_executor(catalog).explain_analyze(query)
            for query in queries
        ]
        with ThreadPoolExecutor(max_workers=2) as tpe:
            racing = list(
                tpe.map(
                    lambda query: _fresh_executor(
                        catalog
                    ).explain_analyze(query),
                    queries,
                )
            )
        for solo, raced in zip(solo_reports, racing):
            assert raced.measured_bytes == solo.measured_bytes
            assert len(raced.events) == len(solo.events)


class TestExecuteWorkloadParallel:
    @pytest.mark.parametrize("parallelism", [2, 8])
    def test_parallel_workload_matches_serial(
        self, materialized_setup, parallelism
    ):
        _hierarchy, _column, catalog = materialized_setup
        workload = Workload(QUERIES)
        cut = _cut_for(catalog, QUERIES)
        serial_results, serial_io = _fresh_executor(
            catalog
        ).execute_workload(workload, cut)
        parallel_results, parallel_io = _fresh_executor(
            catalog
        ).execute_workload(workload, cut, parallelism=parallelism)
        assert len(parallel_results) == len(serial_results)
        for ours, theirs in zip(parallel_results, serial_results):
            assert ours.answer.words == theirs.answer.words
        assert parallel_io.bytes_read <= serial_io.bytes_read

    def test_parallelism_validated(self, materialized_setup):
        _hierarchy, _column, catalog = materialized_setup
        with pytest.raises(ValueError):
            _fresh_executor(catalog).execute_workload(
                Workload(QUERIES), parallelism=0
            )
