"""Tests for the Roaring-style chunked bitmap."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmap.plain import PlainBitmap
from repro.bitmap.roaring import (
    ARRAY_CONTAINER_LIMIT,
    CHUNK_BITS,
    RoaringBitmap,
)
from repro.errors import BitmapLengthMismatchError


class TestConstruction:
    def test_zeros_and_ones(self):
        zeros = RoaringBitmap.zeros(100)
        assert zeros.count() == 0
        assert zeros.num_chunks == 0
        ones = RoaringBitmap.ones(100)
        assert ones.count() == 100

    def test_from_positions(self):
        positions = [0, 7, CHUNK_BITS - 1, CHUNK_BITS, CHUNK_BITS + 5]
        bitmap = RoaringBitmap.from_positions(
            positions, 2 * CHUNK_BITS
        )
        assert bitmap.to_positions().tolist() == positions
        assert bitmap.num_chunks == 2

    def test_from_positions_validation(self):
        with pytest.raises(ValueError):
            RoaringBitmap.from_positions([5], 5)
        with pytest.raises(ValueError):
            RoaringBitmap.zeros(-1)

    def test_from_dense(self):
        dense = np.zeros(300, dtype=bool)
        dense[[0, 150, 299]] = True
        bitmap = RoaringBitmap.from_dense(dense)
        assert bitmap.to_positions().tolist() == [0, 150, 299]


class TestContainers:
    def test_sparse_chunk_uses_array_container(self):
        bitmap = RoaringBitmap.from_positions(
            range(100), CHUNK_BITS
        )
        assert bitmap.container_kinds() == {"array": 1, "bitmap": 0}

    def test_dense_chunk_uses_bitmap_container(self):
        bitmap = RoaringBitmap.from_positions(
            range(ARRAY_CONTAINER_LIMIT + 1), CHUNK_BITS
        )
        assert bitmap.container_kinds() == {"array": 0, "bitmap": 1}

    def test_ops_renormalize_containers(self):
        dense = RoaringBitmap.from_positions(
            range(ARRAY_CONTAINER_LIMIT + 100), CHUNK_BITS
        )
        sparse = RoaringBitmap.from_positions(
            range(50), CHUNK_BITS
        )
        intersection = dense & sparse
        assert intersection.count() == 50
        assert intersection.container_kinds()["array"] == 1

    def test_array_container_size_accounting(self):
        bitmap = RoaringBitmap.from_positions(
            range(100), CHUNK_BITS
        )
        assert bitmap.serialized_size_bytes == 8 + 2 * 100

    def test_bitmap_container_size_accounting(self):
        bitmap = RoaringBitmap.from_positions(
            range(ARRAY_CONTAINER_LIMIT + 1), CHUNK_BITS
        )
        assert bitmap.serialized_size_bytes == 8 + CHUNK_BITS // 8


class TestGet:
    def test_get_across_container_kinds(self):
        sparse_positions = [3, 1000]
        dense_positions = list(
            range(CHUNK_BITS, CHUNK_BITS + ARRAY_CONTAINER_LIMIT + 10)
        )
        bitmap = RoaringBitmap.from_positions(
            sparse_positions + dense_positions, 2 * CHUNK_BITS
        )
        assert bitmap.get(3)
        assert not bitmap.get(4)
        assert bitmap.get(CHUNK_BITS + 5)
        assert not bitmap.get(2 * CHUNK_BITS - 1)
        with pytest.raises(IndexError):
            bitmap.get(2 * CHUNK_BITS)


@st.composite
def roaring_pair(draw):
    num_bits = draw(st.integers(min_value=1, max_value=1500))
    positions = st.lists(
        st.integers(min_value=0, max_value=num_bits - 1),
        max_size=200,
    )
    return num_bits, draw(positions), draw(positions)


class TestAgainstOracle:
    @given(roaring_pair())
    @settings(max_examples=150)
    def test_binary_ops_match_reference(self, data):
        num_bits, left_positions, right_positions = data
        roaring_a = RoaringBitmap.from_positions(
            left_positions, num_bits
        )
        roaring_b = RoaringBitmap.from_positions(
            right_positions, num_bits
        )
        plain_a = PlainBitmap.from_positions(left_positions, num_bits)
        plain_b = PlainBitmap.from_positions(
            right_positions, num_bits
        )
        pairs = [
            (roaring_a & roaring_b, plain_a & plain_b),
            (roaring_a | roaring_b, plain_a | plain_b),
            (roaring_a ^ roaring_b, plain_a ^ plain_b),
            (roaring_a.andnot(roaring_b), plain_a.andnot(plain_b)),
            (~roaring_a, ~plain_a),
        ]
        for roaring_result, plain_result in pairs:
            assert (
                roaring_result.to_positions().tolist()
                == plain_result.to_positions().tolist()
            )

    @given(roaring_pair())
    @settings(max_examples=50)
    def test_count_and_density(self, data):
        num_bits, positions, _other = data
        bitmap = RoaringBitmap.from_positions(positions, num_bits)
        assert bitmap.count() == len(set(positions))
        assert bitmap.density() == pytest.approx(
            len(set(positions)) / num_bits
        )

    def test_cross_chunk_threshold_ops(self):
        """Operations straddling the array/bitmap threshold."""
        rng = np.random.default_rng(3)
        a_positions = rng.choice(
            CHUNK_BITS, size=ARRAY_CONTAINER_LIMIT + 500,
            replace=False,
        )
        b_positions = rng.choice(
            CHUNK_BITS, size=200, replace=False
        )
        a = RoaringBitmap.from_positions(a_positions, CHUNK_BITS)
        b = RoaringBitmap.from_positions(b_positions, CHUNK_BITS)
        expected = set(a_positions.tolist()) | set(
            b_positions.tolist()
        )
        assert (a | b).count() == len(expected)
        expected_and = set(a_positions.tolist()) & set(
            b_positions.tolist()
        )
        assert (a & b).count() == len(expected_and)


class TestDunder:
    def test_length_mismatch(self):
        with pytest.raises(BitmapLengthMismatchError):
            _ = RoaringBitmap.zeros(5) | RoaringBitmap.zeros(6)

    def test_equality(self):
        a = RoaringBitmap.from_positions([1, 2], 10)
        b = RoaringBitmap.from_positions([2, 1], 10)
        assert a == b
        assert hash(a) == hash(b)
        assert a != RoaringBitmap.from_positions([1], 10)
        assert a != RoaringBitmap.from_positions([1, 2], 11)
        assert a != object()

    def test_len_and_repr(self):
        bitmap = RoaringBitmap.from_positions([1], 10)
        assert len(bitmap) == 10
        assert "chunks=1" in repr(bitmap)


class TestCompressionComparison:
    def test_roaring_beats_wah_on_very_sparse_data(self):
        from repro.bitmap.wah import WahBitmap

        num_bits = 2_000_000
        rng = np.random.default_rng(0)
        positions = rng.choice(num_bits, size=200, replace=False)
        roaring = RoaringBitmap.from_positions(positions, num_bits)
        wah = WahBitmap.from_positions(positions, num_bits)
        assert (
            roaring.serialized_size_bytes
            < wah.serialized_size_bytes
        )

    def test_both_schemes_bounded_on_dense_random_data(self):
        from repro.bitmap.wah import WahBitmap

        num_bits = 500_000
        rng = np.random.default_rng(1)
        positions = rng.choice(
            num_bits, size=num_bits // 2, replace=False
        )
        roaring = RoaringBitmap.from_positions(positions, num_bits)
        wah = WahBitmap.from_positions(positions, num_bits)
        raw = num_bits / 8
        assert roaring.serialized_size_bytes <= 1.2 * raw
        assert wah.serialized_size_bytes <= 1.2 * raw * (32 / 31) + 64
