"""Tests for range specifications, queries, and workloads."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workload.query import RangeQuery, RangeSpec, Workload


class TestRangeSpec:
    def test_basic_properties(self):
        spec = RangeSpec(3, 7)
        assert spec.num_leaves == 5
        assert spec.contains(3) and spec.contains(7)
        assert not spec.contains(2) and not spec.contains(8)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            RangeSpec(-1, 3)
        with pytest.raises(WorkloadError):
            RangeSpec(5, 4)

    def test_overlap(self):
        spec = RangeSpec(10, 20)
        assert spec.overlap(0, 9) == 0
        assert spec.overlap(15, 25) == 6
        assert spec.overlap(0, 100) == 11
        assert spec.overlap(12, 14) == 3

    def test_clipped(self):
        spec = RangeSpec(10, 20)
        assert spec.clipped(15, 30) == RangeSpec(15, 20)
        assert spec.clipped(0, 9) is None
        assert spec.clipped(10, 20) == spec

    def test_ordering(self):
        assert RangeSpec(1, 5) < RangeSpec(2, 3)


class TestRangeQueryNormalization:
    def test_sorts_specs(self):
        query = RangeQuery([(10, 12), (0, 2)])
        assert query.specs == (RangeSpec(0, 2), RangeSpec(10, 12))

    def test_merges_overlapping(self):
        query = RangeQuery([(0, 5), (3, 9)])
        assert query.specs == (RangeSpec(0, 9),)

    def test_merges_adjacent(self):
        query = RangeQuery([(0, 4), (5, 9)])
        assert query.specs == (RangeSpec(0, 9),)

    def test_keeps_disjoint(self):
        query = RangeQuery([(0, 2), (4, 6)])
        assert len(query.specs) == 2

    def test_accepts_spec_objects_and_tuples(self):
        query = RangeQuery([RangeSpec(0, 1), (3, 4)])
        assert query.num_range_leaves == 4

    def test_needs_at_least_one_spec(self):
        with pytest.raises(WorkloadError):
            RangeQuery([])

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 50), st.integers(0, 50)
            ).map(lambda pair: (min(pair), max(pair))),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=150)
    def test_normalization_preserves_leaf_set(self, raw_specs):
        query = RangeQuery(raw_specs)
        expected = set()
        for start, end in raw_specs:
            expected.update(range(start, end + 1))
        assert set(query.range_leaves()) == expected
        assert query.num_range_leaves == len(expected)
        # Normalized specs are sorted, disjoint, non-adjacent.
        for left, right in zip(query.specs, query.specs[1:]):
            assert left.end + 1 < right.start


class TestRangeQueryApi:
    def test_is_range_leaf(self):
        query = RangeQuery([(2, 4), (8, 9)])
        assert query.is_range_leaf(3)
        assert query.is_range_leaf(8)
        assert not query.is_range_leaf(5)

    def test_range_count_in_span(self):
        query = RangeQuery([(2, 4), (8, 9)])
        assert query.range_count_in_span(0, 10) == 5
        assert query.range_count_in_span(3, 8) == 3
        assert query.range_count_in_span(5, 7) == 0

    def test_clipped_specs(self):
        query = RangeQuery([(2, 4), (8, 9)])
        assert query.clipped_specs(3, 8) == [
            RangeSpec(3, 4),
            RangeSpec(8, 8),
        ]

    def test_equality_and_hash(self):
        assert RangeQuery([(0, 5), (3, 9)]) == RangeQuery([(0, 9)])
        assert hash(RangeQuery([(0, 9)])) == hash(
            RangeQuery([(0, 5), (6, 9)])
        )

    def test_label_and_repr(self):
        query = RangeQuery([(0, 1)], label="q0")
        assert query.label == "q0"
        assert "q0" in repr(query)


class TestWorkload:
    def test_sequence_protocol(self):
        queries = [RangeQuery([(0, 1)]), RangeQuery([(2, 3)])]
        workload = Workload(queries)
        assert len(workload) == 2
        assert workload[0] == queries[0]
        assert list(workload) == queries

    def test_needs_queries(self):
        with pytest.raises(WorkloadError):
            Workload([])

    def test_union_is_range_leaf(self):
        workload = Workload(
            [RangeQuery([(0, 1)]), RangeQuery([(5, 6)])]
        )
        assert workload.union_is_range_leaf(5)
        assert not workload.union_is_range_leaf(3)

    def test_repr(self):
        workload = Workload([RangeQuery([(0, 1)])])
        assert "1 queries" in repr(workload)
