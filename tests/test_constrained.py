"""Tests for Case-3 cut selection (Algs. 4-5 and τ auto-stop)."""

from __future__ import annotations

import math

import pytest

from repro.core.baselines import exhaustive_constrained_optimum
from repro.core.constrained import (
    auto_k_cut_selection,
    c_node_cost,
    candidate_nodes,
    k_cut_selection,
    one_cut_selection,
)
from repro.core.workload_cost import WorkloadNodeStats, case3_cut_cost
from repro.hierarchy.enumeration import max_weight_complete_cut
from repro.workload.generator import fraction_workload


@pytest.fixture
def workload100():
    return fraction_workload(100, 0.5, 15, seed=5)


@pytest.fixture
def stats100(tpch_catalog100, workload100):
    return WorkloadNodeStats(tpch_catalog100, workload100)


def _max_cut_size(catalog) -> float:
    size, _ = max_weight_complete_cut(
        catalog.hierarchy, catalog.size_array()
    )
    return size


class TestCandidateRanking:
    def test_candidates_sorted_by_cnode_cost(
        self, tpch_catalog100, stats100
    ):
        budget = _max_cut_size(tpch_catalog100)
        candidates = candidate_nodes(stats100, budget)
        costs = [
            c_node_cost(stats100, node_id) for node_id in candidates
        ]
        assert costs == sorted(costs)

    def test_unused_nodes_excluded(self, tpch_catalog100, stats100):
        budget = _max_cut_size(tpch_catalog100)
        candidates = set(candidate_nodes(stats100, budget))
        for node_id in (
            tpch_catalog100.hierarchy.internal_ids_postorder()
        ):
            if stats100.case3_saving[node_id] <= 0:
                assert node_id not in candidates

    def test_oversized_nodes_excluded(
        self, tpch_catalog100, stats100
    ):
        # Only zero-size bitmaps (fully-compressed density-0/1 nodes,
        # e.g. the root) can fit a zero budget.
        candidates = candidate_nodes(stats100, budget_mb=0.0)
        assert all(
            tpch_catalog100.size_mb(node_id) == 0.0
            for node_id in candidates
        )

    def test_cnode_cost_is_saving_shifted_by_constant(
        self, tpch_catalog100, stats100
    ):
        total = stats100.total_sum_range_cost
        for node_id in (
            tpch_catalog100.hierarchy.internal_ids_postorder()
        ):
            expected = total - float(
                stats100.case3_saving[node_id]
            )
            assert c_node_cost(stats100, node_id) == pytest.approx(
                expected
            )


class TestOneCut:
    def test_budget_respected(
        self, tpch_catalog100, workload100, stats100
    ):
        for fraction in (0.1, 0.3, 0.7):
            budget = fraction * _max_cut_size(tpch_catalog100)
            result = one_cut_selection(
                tpch_catalog100, workload100, budget, stats100
            )
            used = sum(
                tpch_catalog100.size_mb(member)
                for member in result.cut.node_ids
            )
            assert used <= budget + 1e-9
            assert result.used_mb == pytest.approx(used)

    def test_zero_budget_uses_only_free_bitmaps(
        self, tpch_catalog100, workload100, stats100
    ):
        """A zero budget admits only zero-size bitmaps (the fully
        compressed density-1 root), which still help exclusive plans."""
        result = one_cut_selection(
            tpch_catalog100, workload100, 0.0, stats100
        )
        assert result.used_mb == pytest.approx(0.0)
        assert all(
            tpch_catalog100.size_mb(member) == 0.0
            for member in result.cut.node_ids
        )
        assert (
            result.cost <= stats100.leaf_only_cost_case3() + 1e-9
        )

    def test_cut_is_antichain(
        self, tpch_catalog100, workload100, stats100
    ):
        budget = _max_cut_size(tpch_catalog100)
        result = one_cut_selection(
            tpch_catalog100, workload100, budget, stats100
        )
        members = sorted(result.cut.node_ids)
        hierarchy = tpch_catalog100.hierarchy
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                assert not hierarchy.on_same_root_leaf_path(a, b)

    def test_never_worse_than_leaf_only(
        self, tpch_catalog100, workload100, stats100
    ):
        for fraction in (0.1, 0.5, 0.9):
            budget = fraction * _max_cut_size(tpch_catalog100)
            result = one_cut_selection(
                tpch_catalog100, workload100, budget, stats100
            )
            assert (
                result.cost
                <= stats100.leaf_only_cost_case3() + 1e-9
            )

    def test_optimal_under_tight_memory(
        self, tpch_catalog100, workload100, stats100
    ):
        """§4.3: with strict memory limits 1-Cut is (near) optimal."""
        budget = 0.1 * _max_cut_size(tpch_catalog100)
        greedy = one_cut_selection(
            tpch_catalog100, workload100, budget, stats100
        ).cost
        optimum = exhaustive_constrained_optimum(
            tpch_catalog100, workload100, budget, stats100
        ).cost
        assert greedy <= optimum * 1.05 + 1e-9

    def test_negative_budget_rejected(
        self, tpch_catalog100, workload100
    ):
        with pytest.raises(ValueError):
            one_cut_selection(tpch_catalog100, workload100, -1.0)

    def test_cost_matches_evaluator(
        self, tpch_catalog100, workload100, stats100
    ):
        budget = 0.5 * _max_cut_size(tpch_catalog100)
        result = one_cut_selection(
            tpch_catalog100, workload100, budget, stats100
        )
        assert result.cost == pytest.approx(
            case3_cut_cost(stats100, result.cut.node_ids)
        )


class TestKCut:
    def test_k_must_be_positive(
        self, tpch_catalog100, workload100
    ):
        with pytest.raises(ValueError):
            k_cut_selection(tpch_catalog100, workload100, 10.0, 0)

    def test_k10_never_worse_than_one_cut(
        self, tpch_catalog100, workload100, stats100
    ):
        for fraction in (0.1, 0.3, 0.5, 0.7, 0.9):
            budget = fraction * _max_cut_size(tpch_catalog100)
            one = one_cut_selection(
                tpch_catalog100, workload100, budget, stats100
            ).cost
            ten = k_cut_selection(
                tpch_catalog100, workload100, budget, 10, stats100
            ).cost
            assert ten <= one + 1e-9

    def test_budget_respected(
        self, tpch_catalog100, workload100, stats100
    ):
        budget = 0.5 * _max_cut_size(tpch_catalog100)
        result = k_cut_selection(
            tpch_catalog100, workload100, budget, 10, stats100
        )
        used = sum(
            tpch_catalog100.size_mb(member)
            for member in result.cut.node_ids
        )
        assert used <= budget + 1e-9

    def test_never_worse_than_exhaustive_times_margin(
        self, tpch_catalog100, workload100, stats100
    ):
        """k-cut stays within a small factor of optimal (Fig. 7)."""
        for fraction in (0.1, 0.5, 0.9):
            budget = fraction * _max_cut_size(tpch_catalog100)
            ten = k_cut_selection(
                tpch_catalog100, workload100, budget, 10, stats100
            ).cost
            optimum = exhaustive_constrained_optimum(
                tpch_catalog100, workload100, budget, stats100
            ).cost
            assert ten <= optimum * 2.0 + 1e-9
            assert ten >= optimum - 1e-9

    def test_monotone_in_k(
        self, tpch_catalog100, workload100, stats100
    ):
        """§3.3.3: more candidate cuts never hurt (l-greedy <=
        m-greedy for l > m)."""
        budget = 0.7 * _max_cut_size(tpch_catalog100)
        costs = [
            k_cut_selection(
                tpch_catalog100, workload100, budget, k, stats100
            ).cost
            for k in (1, 2, 5, 10, 20)
        ]
        for smaller_k, larger_k in zip(costs, costs[1:]):
            assert larger_k <= smaller_k + 1e-9

    def test_result_metadata(
        self, tpch_catalog100, workload100, stats100
    ):
        budget = 0.5 * _max_cut_size(tpch_catalog100)
        result = k_cut_selection(
            tpch_catalog100, workload100, budget, 7, stats100
        )
        assert result.k == 7
        assert result.budget_mb == pytest.approx(budget)


class TestPolish:
    def test_polish_never_worsens(
        self, tpch_catalog100, workload100, stats100
    ):
        for fraction in (0.1, 0.3, 0.5, 0.7, 0.9):
            budget = fraction * _max_cut_size(tpch_catalog100)
            plain = k_cut_selection(
                tpch_catalog100, workload100, budget, 10, stats100
            ).cost
            polished = k_cut_selection(
                tpch_catalog100,
                workload100,
                budget,
                10,
                stats100,
                polish=True,
            ).cost
            assert polished <= plain + 1e-9

    def test_polished_cut_respects_budget_and_validity(
        self, tpch_catalog100, workload100, stats100
    ):
        budget = 0.9 * _max_cut_size(tpch_catalog100)
        result = k_cut_selection(
            tpch_catalog100,
            workload100,
            budget,
            10,
            stats100,
            polish=True,
        )
        used = sum(
            tpch_catalog100.size_mb(member)
            for member in result.cut.node_ids
        )
        assert used <= budget + 1e-9
        assert result.used_mb == pytest.approx(used)
        # Cut construction would raise on a non-antichain.
        assert result.cut is not None

    def test_polish_closes_most_of_the_high_memory_gap(
        self, tpch_catalog100, workload100, stats100
    ):
        budget = 0.9 * _max_cut_size(tpch_catalog100)
        optimum = exhaustive_constrained_optimum(
            tpch_catalog100, workload100, budget, stats100
        ).cost
        polished = k_cut_selection(
            tpch_catalog100,
            workload100,
            budget,
            10,
            stats100,
            polish=True,
        ).cost
        assert polished <= optimum * 1.25 + 1e-9

    def test_polish_cut_direct_call(
        self, tpch_catalog100, workload100, stats100
    ):
        from repro.core.constrained import polish_cut

        budget = 0.9 * _max_cut_size(tpch_catalog100)
        greedy = one_cut_selection(
            tpch_catalog100, workload100, budget, stats100
        )
        polished = polish_cut(
            tpch_catalog100,
            stats100,
            greedy.cut.node_ids,
            budget,
        )
        before = case3_cut_cost(stats100, greedy.cut.node_ids)
        after = case3_cut_cost(stats100, polished)
        assert after <= before + 1e-9


class TestAutoStop:
    def test_auto_stop_between_one_and_max(
        self, tpch_catalog100, workload100, stats100
    ):
        budget = 0.7 * _max_cut_size(tpch_catalog100)
        one = one_cut_selection(
            tpch_catalog100, workload100, budget, stats100
        ).cost
        auto = auto_k_cut_selection(
            tpch_catalog100, workload100, budget, stats=stats100
        )
        assert auto.cost <= one + 1e-9
        assert auto.k is not None and auto.k >= 1

    def test_tau_and_max_k_validated(
        self, tpch_catalog100, workload100
    ):
        with pytest.raises(ValueError):
            auto_k_cut_selection(
                tpch_catalog100, workload100, 10.0, tau=-1.0
            )
        with pytest.raises(ValueError):
            auto_k_cut_selection(
                tpch_catalog100, workload100, 10.0, max_k=0
            )

    def test_large_tau_stops_immediately(
        self, tpch_catalog100, workload100, stats100
    ):
        budget = 0.9 * _max_cut_size(tpch_catalog100)
        result = auto_k_cut_selection(
            tpch_catalog100,
            workload100,
            budget,
            tau=math.inf,
            stats=stats100,
        )
        assert result.k in (1, 2)
