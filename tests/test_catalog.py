"""Tests for the modeled and materialized node catalogs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.catalog import (
    MaterializedNodeCatalog,
    ModeledNodeCatalog,
    node_file_name,
)
from repro.storage.costmodel import MB, CostModel


class TestModeledCatalog:
    def test_node_density_is_subtree_probability_mass(
        self, small_hierarchy, paper_cost_model
    ):
        num_leaves = small_hierarchy.num_leaves
        probabilities = np.arange(1, num_leaves + 1, dtype=float)
        probabilities /= probabilities.sum()
        catalog = ModeledNodeCatalog(
            small_hierarchy, probabilities, paper_cost_model, 10**6
        )
        for node in small_hierarchy:
            expected = probabilities[
                node.leaf_lo:node.leaf_hi + 1
            ].sum()
            assert catalog.density(node.node_id) == pytest.approx(
                expected
            )
        assert catalog.density(
            small_hierarchy.root_id
        ) == pytest.approx(1.0)

    def test_read_cost_follows_model(
        self, small_hierarchy, paper_cost_model
    ):
        num_leaves = small_hierarchy.num_leaves
        probabilities = np.full(num_leaves, 1.0 / num_leaves)
        catalog = ModeledNodeCatalog(
            small_hierarchy, probabilities, paper_cost_model, 10**6
        )
        for node in small_hierarchy:
            expected = paper_cost_model.read_cost_mb(
                catalog.density(node.node_id)
            )
            assert catalog.read_cost_mb(node.node_id) == expected
            assert catalog.size_mb(node.node_id) == expected

    def test_root_bitmap_is_free(self, uniform_catalog100):
        """Density-1 bitmaps compress to nothing (§2.2.1)."""
        root = uniform_catalog100.hierarchy.root_id
        assert uniform_catalog100.read_cost_mb(root) == 0.0

    def test_leaf_range_cost_prefix_sums(self, uniform_catalog100):
        leaf_ids = uniform_catalog100.hierarchy.leaf_ids()
        direct = sum(
            uniform_catalog100.read_cost_mb(leaf_ids[value])
            for value in range(10, 20)
        )
        assert uniform_catalog100.leaf_range_cost(
            10, 19
        ) == pytest.approx(direct)
        assert uniform_catalog100.leaf_range_cost(5, 4) == 0.0

    def test_subtree_leaf_cost(self, uniform_catalog100):
        hierarchy = uniform_catalog100.hierarchy
        root = hierarchy.root_id
        assert uniform_catalog100.subtree_leaf_cost(
            root
        ) == pytest.approx(
            uniform_catalog100.leaf_range_cost(
                0, hierarchy.num_leaves - 1
            )
        )

    def test_from_leaf_counts(self, small_hierarchy, paper_cost_model):
        counts = np.full(small_hierarchy.num_leaves, 25)
        catalog = ModeledNodeCatalog.from_leaf_counts(
            small_hierarchy, counts, paper_cost_model
        )
        assert catalog.num_rows == counts.sum()
        assert catalog.density(
            small_hierarchy.leaf_ids()[0]
        ) == pytest.approx(1.0 / small_hierarchy.num_leaves)

    def test_validation(self, small_hierarchy, paper_cost_model):
        wrong_size = np.full(3, 1 / 3)
        with pytest.raises(ValueError):
            ModeledNodeCatalog(
                small_hierarchy, wrong_size, paper_cost_model, 10
            )
        bad_sum = np.full(small_hierarchy.num_leaves, 0.5)
        with pytest.raises(ValueError):
            ModeledNodeCatalog(
                small_hierarchy, bad_sum, paper_cost_model, 10
            )
        negative = np.full(
            small_hierarchy.num_leaves,
            1.0 / small_hierarchy.num_leaves,
        )
        negative[0] = -negative[0]
        with pytest.raises(ValueError):
            ModeledNodeCatalog(
                small_hierarchy, negative, paper_cost_model, 10
            )

    def test_read_only_views(self, uniform_catalog100):
        with pytest.raises(ValueError):
            uniform_catalog100.read_cost_array()[0] = 1.0
        with pytest.raises(ValueError):
            uniform_catalog100.size_array()[0] = 1.0
        with pytest.raises(ValueError):
            uniform_catalog100.leaf_probabilities[0] = 1.0


class TestMaterializedCatalog:
    def test_sizes_match_stored_files(self, materialized_setup):
        _hierarchy, _column, catalog = materialized_setup
        for node in catalog.hierarchy:
            name = node_file_name(node.node_id)
            stored = catalog.store.size_bytes(name)
            assert catalog.size_mb(node.node_id) == pytest.approx(
                stored / MB
            )
            assert catalog.read_cost_mb(
                node.node_id
            ) == catalog.size_mb(node.node_id)

    def test_densities_match_column(self, materialized_setup):
        _hierarchy, column, catalog = materialized_setup
        for node in catalog.hierarchy:
            mask = (column >= node.leaf_lo) & (column <= node.leaf_hi)
            expected = mask.sum() / column.size
            assert catalog.density(node.node_id) == pytest.approx(
                expected
            )

    def test_bitmaps_roundtrip(self, materialized_setup):
        _hierarchy, column, catalog = materialized_setup
        leaf_id = catalog.hierarchy.leaf_ids()[0]
        bitmap = catalog.bitmap(leaf_id)
        expected = np.flatnonzero(column == 0).tolist()
        assert bitmap.to_positions().tolist() == expected

    def test_missing_bitmap_raises(self, materialized_setup):
        _hierarchy, _column, catalog = materialized_setup
        with pytest.raises(StorageError):
            catalog.bitmap(10_000)

    def test_internal_bitmap_is_union_of_leaves(
        self, materialized_setup
    ):
        hierarchy, _column, catalog = materialized_setup
        root_child = hierarchy.internal_children(hierarchy.root_id)[0]
        node = hierarchy.node(root_child)
        union = catalog.bitmap(
            hierarchy.leaf_node_id(node.leaf_lo)
        )
        for value in range(node.leaf_lo + 1, node.leaf_hi + 1):
            union = union | catalog.bitmap(
                hierarchy.leaf_node_id(value)
            )
        assert catalog.bitmap(root_child) == union
