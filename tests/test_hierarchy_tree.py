"""Tests for hierarchy construction and navigation."""

from __future__ import annotations

import pytest

from repro.errors import HierarchyError
from repro.hierarchy.node import ROOT_LEVEL, Node
from repro.hierarchy.tree import Hierarchy, paper_hierarchy


class TestFromNested:
    def test_single_leaf_parent(self):
        hierarchy = Hierarchy.from_nested(3)
        assert hierarchy.num_leaves == 3
        assert hierarchy.num_internal == 1
        assert hierarchy.height == 2

    def test_paper_20_leaf_shape(self):
        hierarchy = Hierarchy.from_nested([[3, 3, 3], [3, 3, 3, 2]])
        assert hierarchy.num_leaves == 20
        assert hierarchy.height == 4
        root_children = hierarchy.internal_children(hierarchy.root_id)
        assert len(root_children) == 2

    def test_leaf_values_are_left_to_right(self):
        hierarchy = Hierarchy.from_nested([[2], [2]])
        leaf_ids = hierarchy.leaf_ids()
        values = [hierarchy.node(i).leaf_lo for i in leaf_ids]
        assert values == [0, 1, 2, 3]

    def test_rejects_bad_specs(self):
        with pytest.raises(HierarchyError):
            Hierarchy.from_nested(0)
        with pytest.raises(HierarchyError):
            Hierarchy.from_nested([])
        with pytest.raises(HierarchyError):
            Hierarchy.from_nested([2, "x"])  # type: ignore[list-item]

    def test_names_flag(self):
        hierarchy = Hierarchy.from_nested([2, 2], names=True)
        assert hierarchy.node(hierarchy.root_id).name == "n0"
        assert hierarchy.node_by_name("leaf0").is_leaf


class TestBalanced:
    @pytest.mark.parametrize(
        "num_leaves,height",
        [(20, 4), (50, 5), (100, 4), (7, 3), (1000, 4), (2, 2)],
    )
    def test_balanced_shapes(self, num_leaves, height):
        hierarchy = Hierarchy.balanced(num_leaves, height)
        assert hierarchy.num_leaves == num_leaves
        assert hierarchy.height == height
        levels = {
            hierarchy.node(i).level for i in hierarchy.leaf_ids()
        }
        assert levels == {height}

    def test_explicit_fanout(self):
        hierarchy = Hierarchy.balanced(27, 4, fanout=3)
        for node_id in hierarchy.internal_ids_postorder():
            assert len(hierarchy.node(node_id).children) == 3

    def test_bad_parameters(self):
        with pytest.raises(HierarchyError):
            Hierarchy.balanced(10, 1)
        with pytest.raises(HierarchyError):
            Hierarchy.balanced(0, 3)


class TestFromNamed:
    def test_us_example(self, us_hierarchy):
        assert us_hierarchy.num_leaves == 6
        assert us_hierarchy.root.name == "U.S."
        ca = us_hierarchy.node_by_name("CA")
        assert ca.leaf_span == (0, 2)
        assert us_hierarchy.leaf_value("PHX") == 3

    def test_unknown_name(self, us_hierarchy):
        with pytest.raises(HierarchyError):
            us_hierarchy.node_by_name("NY")

    def test_leaf_value_of_internal_node(self, us_hierarchy):
        with pytest.raises(HierarchyError):
            us_hierarchy.leaf_value("CA")

    def test_rejects_invalid_spec(self):
        with pytest.raises(HierarchyError):
            Hierarchy.from_named({"A": 5})  # type: ignore[dict-item]
        with pytest.raises(HierarchyError):
            Hierarchy.from_named({"A": {}})


class TestNavigation:
    def test_internal_and_leaf_children(self, small_hierarchy):
        root = small_hierarchy.root_id
        assert len(small_hierarchy.internal_children(root)) == 3
        assert small_hierarchy.leaf_children(root) == []
        leaf_parent = small_hierarchy.internal_children(
            small_hierarchy.internal_children(root)[0]
        )[0]
        assert small_hierarchy.internal_children(leaf_parent) == []
        assert len(small_hierarchy.leaf_children(leaf_parent)) == 2

    def test_postorder_visits_children_first(self, small_hierarchy):
        order = small_hierarchy.internal_ids_postorder()
        seen = set()
        for node_id in order:
            for child in small_hierarchy.internal_children(node_id):
                assert child in seen
            seen.add(node_id)
        assert order[-1] == small_hierarchy.root_id

    def test_ancestry(self, small_hierarchy):
        root = small_hierarchy.root_id
        some_leaf = small_hierarchy.leaf_ids()[0]
        assert small_hierarchy.is_strict_ancestor(root, some_leaf)
        assert not small_hierarchy.is_strict_ancestor(some_leaf, root)
        assert small_hierarchy.on_same_root_leaf_path(root, some_leaf)
        assert small_hierarchy.on_same_root_leaf_path(root, root)
        assert root in small_hierarchy.ancestors(some_leaf)

    def test_descendants_count(self, small_hierarchy):
        root = small_hierarchy.root_id
        assert (
            len(small_hierarchy.descendants(root))
            == small_hierarchy.num_nodes - 1
        )

    def test_leaf_node_id_bounds(self, small_hierarchy):
        with pytest.raises(HierarchyError):
            small_hierarchy.leaf_node_id(small_hierarchy.num_leaves)
        with pytest.raises(HierarchyError):
            small_hierarchy.leaf_node_id(-1)

    def test_leaf_values_under(self, small_hierarchy):
        root = small_hierarchy.root_id
        values = small_hierarchy.leaf_values_under(root)
        assert list(values) == list(
            range(small_hierarchy.num_leaves)
        )

    def test_iteration_and_len(self, small_hierarchy):
        assert len(small_hierarchy) == small_hierarchy.num_nodes
        assert (
            len(list(small_hierarchy)) == small_hierarchy.num_nodes
        )


class TestValidation:
    def test_child_level_must_increment(self):
        nodes = [
            Node(0, None, (1,), ROOT_LEVEL, 0, 0),
            Node(1, 0, (), ROOT_LEVEL + 2, 0, 0),
        ]
        with pytest.raises(HierarchyError):
            Hierarchy(nodes)

    def test_children_must_tile_span(self):
        nodes = [
            Node(0, None, (1, 2), 1, 0, 1),
            Node(1, 0, (), 2, 0, 0),
            Node(2, 0, (), 2, 0, 0),  # duplicates leaf 0
        ]
        with pytest.raises(HierarchyError):
            Hierarchy(nodes)

    def test_empty_node_list_rejected(self):
        with pytest.raises(HierarchyError):
            Hierarchy([])


class TestPaperHierarchies:
    @pytest.mark.parametrize(
        "num_leaves,height", [(20, 4), (50, 5), (100, 4)]
    )
    def test_shapes(self, num_leaves, height):
        hierarchy = paper_hierarchy(num_leaves)
        assert hierarchy.num_leaves == num_leaves
        assert hierarchy.height == height

    def test_unknown_size_rejected(self):
        with pytest.raises(HierarchyError):
            paper_hierarchy(42)


class TestNode:
    def test_properties(self):
        node = Node(3, 1, (), 4, 7, 7, name="leaf7")
        assert node.is_leaf
        assert not node.is_root
        assert node.num_leaves == 1
        assert node.covers_leaf(7)
        assert not node.covers_leaf(8)
        assert "leaf" in repr(node)
