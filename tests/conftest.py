"""Shared fixtures for the test suite."""

from __future__ import annotations

import sys
import zlib

import numpy as np
import pytest

from repro import (
    CostModel,
    Hierarchy,
    MaterializedNodeCatalog,
    ModeledNodeCatalog,
)
from repro.hierarchy import paper_hierarchy
from repro.workload import (
    sample_column,
    tpch_acctbal_leaf_probabilities,
    uniform_leaf_probabilities,
)


@pytest.fixture
def us_hierarchy() -> Hierarchy:
    """The paper's running example (§2.2.2): U.S. / CA-AZ / cities."""
    return Hierarchy.from_named(
        {
            "CA": ["SFO", "L.A.", "S.D."],
            "AZ": ["PHX", "Tempe", "Tucson"],
        },
        root_name="U.S.",
    )


@pytest.fixture
def small_hierarchy() -> Hierarchy:
    """A 12-leaf, height-4 hierarchy handy for exhaustive checks."""
    return Hierarchy.from_nested([[2, 2], [3, 2], [3]])


@pytest.fixture
def hierarchy100() -> Hierarchy:
    """The paper's 100-leaf evaluation hierarchy."""
    return paper_hierarchy(100)


@pytest.fixture
def paper_cost_model() -> CostModel:
    return CostModel.paper_2014()


@pytest.fixture
def uniform_catalog100(hierarchy100, paper_cost_model):
    """Uniform data over the 100-leaf paper hierarchy, 150M rows."""
    return ModeledNodeCatalog(
        hierarchy100,
        uniform_leaf_probabilities(100),
        paper_cost_model,
        num_rows=150_000_000,
    )


@pytest.fixture
def tpch_catalog100(hierarchy100, paper_cost_model):
    """TPC-H-like data over the 100-leaf paper hierarchy."""
    return ModeledNodeCatalog(
        hierarchy100,
        tpch_acctbal_leaf_probabilities(100),
        paper_cost_model,
        num_rows=150_000_000,
    )


@pytest.fixture
def small_catalog(small_hierarchy, paper_cost_model):
    """TPC-H-like data over the 12-leaf hierarchy."""
    return ModeledNodeCatalog(
        small_hierarchy,
        tpch_acctbal_leaf_probabilities(small_hierarchy.num_leaves),
        paper_cost_model,
        num_rows=150_000_000,
    )


@pytest.fixture(scope="session")
def materialized_setup():
    """A small real-bitmap setup: hierarchy, column, catalog.

    Session-scoped because bitmap materialization is the slowest fixture.
    """
    hierarchy = Hierarchy.from_nested([[3, 3], [2, 4], [4]])
    probabilities = tpch_acctbal_leaf_probabilities(
        hierarchy.num_leaves, seed=3
    )
    column = sample_column(probabilities, num_rows=40_000, seed=11)
    catalog = MaterializedNodeCatalog(hierarchy, column)
    return hierarchy, column, catalog


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def chaos_seed(request) -> int:
    """A seed derived from the test's node id.

    Stable across runs and machines (so every chaos failure is
    reproducible from the test name alone) yet distinct per test (so
    parametrized sweeps explore different fault sequences).
    """
    return zlib.crc32(request.node.nodeid.encode())


@pytest.fixture
def chaos_rng(chaos_seed) -> np.random.Generator:
    """Seeded RNG for chaos tests; see :func:`chaos_seed`."""
    return np.random.default_rng(chaos_seed)


@pytest.fixture(autouse=True)
def _stress_switch_interval(request):
    """Shrink the thread switch interval for ``stress``-marked tests.

    A 1µs interval forces the interpreter to switch threads between
    nearly every bytecode, surfacing interleaving bugs that the default
    5ms interval hides behind accidental atomicity.
    """
    if request.node.get_closest_marker("stress") is None:
        yield
        return
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    try:
        yield
    finally:
        sys.setswitchinterval(previous)
