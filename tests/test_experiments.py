"""Tests for the experiment modules: each figure runs (with small
parameters) and reproduces the paper's qualitative claims."""

from __future__ import annotations

import pytest

from repro.experiments import (
    fig01_costmodel,
    fig02_case1_strategies,
    fig03_case1_optimality,
    fig04_label_distribution,
    fig05_case2_multi,
    fig06_case3_memory,
    fig07_k_sweep,
    fig08_case3_ranges,
    fig09_case3_queries,
    fig10_case3_sizes,
    fig11_opt_time_hierarchy,
    fig12_opt_time_queries,
    table_incomplete_cuts,
)
from repro.experiments.common import ExperimentResult
from repro.experiments.runner import EXPERIMENTS, run_experiment


class TestExperimentResultTable:
    def test_to_text_renders_rows_and_notes(self):
        result = ExperimentResult(
            title="demo", columns=["a", "b"], notes=["note"]
        )
        result.add_row(a=1, b=2.5)
        text = result.to_text()
        assert "demo" in text
        assert "2.50" in text
        assert "# note" in text
        assert result.column("a") == [1]


class TestFig1:
    def test_model_tracks_measurements(self):
        result = fig01_costmodel.run(num_bits=300_000)
        errors = result.column("relative_error")
        assert max(errors) < 0.6
        assert sum(errors) / len(errors) < 0.25


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig02_case1_strategies.run(
            runs=2, hierarchy_sizes=(20, 100)
        )

    def test_hybrid_never_worse(self, result):
        for row in result.rows:
            assert (
                row["hybrid_mb"] <= row["inclusive_mb"] + 1e-9
            )
            assert (
                row["hybrid_mb"] <= row["exclusive_mb"] + 1e-9
            )
            assert (
                row["hybrid_mb"] <= row["leaf_only_mb"] + 1e-9
            )

    def test_exclusive_wins_at_90_percent(self, result):
        for row in result.rows:
            if row["range_pct"] == 90:
                assert row["exclusive_mb"] < row["inclusive_mb"]

    def test_covers_both_datasets(self, result):
        assert set(result.column("dataset")) == {"normal", "tpch"}


class TestFig3:
    def test_hybrid_equals_exhaustive(self):
        result = fig03_case1_optimality.run(runs=2)
        for row in result.rows:
            assert row["hybrid_mb"] == pytest.approx(
                row["exhaustive_mb"]
            )
            assert row["exhaustive_mb"] <= row["average_mb"] + 1e-9
            assert row["average_mb"] <= row["worst_mb"] + 1e-9


class TestFig4:
    def test_fractions_sum_to_one_and_follow_regimes(self):
        result = fig04_label_distribution.run(runs=2)
        by_range = {row["range_pct"]: row for row in result.rows}
        for row in result.rows:
            total = (
                row["inclusive_preferred"]
                + row["exclusive_preferred"]
                + row["empty"]
            )
            assert total == pytest.approx(1.0)
        # Small ranges: exclusive rare; large ranges: exclusive wins.
        assert (
            by_range[10]["exclusive_preferred"]
            <= by_range[90]["exclusive_preferred"]
        )
        assert by_range[10]["empty"] > by_range[90]["empty"]


class TestFig5:
    def test_hybrid_is_optimal_for_workloads(self):
        result = fig05_case2_multi.run(
            runs=1, query_counts=(5, 15)
        )
        for row in result.rows:
            assert row["hybrid_mb"] == pytest.approx(
                row["optimal_mb"]
            )
            assert row["optimal_mb"] <= row["average_mb"] + 1e-9
            assert row["optimal_mb"] <= row["leaf_only_mb"] + 1e-9


class TestFig6:
    def test_greedy_tracks_optimum_under_tight_memory(self):
        result = fig06_case3_memory.run(
            runs=1,
            range_fractions=(0.5,),
            memory_fractions=(0.1, 0.9),
        )
        by_memory = {
            row["memory_pct"]: row for row in result.rows
        }
        tight = by_memory[10]
        assert tight["one_cut_mb"] <= tight[
            "exhaustive_mb"
        ] * 1.1 + 1e-9
        for row in result.rows:
            assert (
                row["exhaustive_mb"] <= row["k_cut_mb"] + 1e-9
            )
            assert (
                row["k_cut_mb"] <= row["one_cut_mb"] + 1e-9
            )
            assert (
                row["average_mb"] <= row["worst_mb"] + 1e-9
            )


class TestFig7:
    def test_ratios_at_least_one_and_k_helps(self):
        result = fig07_k_sweep.run(
            runs=1, memory_fractions=(0.1, 0.5, 0.9)
        )
        for row in result.rows:
            assert row["ratio_1_cut"] >= 1.0 - 1e-9
            assert (
                row["ratio_10_cut"]
                <= row["ratio_1_cut"] + 1e-9
            )
            assert (
                row["ratio_auto_stop"]
                <= row["ratio_1_cut"] + 1e-9
            )


class TestFigs8To10:
    def test_fig8_k_cut_tracks_optimum(self):
        result = fig08_case3_ranges.run(runs=1)
        for row in result.rows:
            assert (
                row["exhaustive_mb"] <= row["k_cut_mb"] + 1e-9
            )
            assert row["k_cut_mb"] <= row["average_mb"] + 1e-9

    def test_fig9_rows(self):
        result = fig09_case3_queries.run(
            runs=1, query_counts=(5, 15)
        )
        assert result.column("num_queries") == [5, 15]
        for row in result.rows:
            assert (
                row["exhaustive_mb"] <= row["worst_mb"] + 1e-9
            )

    def test_fig10_rows(self):
        result = fig10_case3_sizes.run(
            runs=1, hierarchy_sizes=(20, 100)
        )
        assert result.column("num_leaves") == [20, 100]


class TestTimingFigures:
    def test_fig11_roughly_linear(self):
        result = fig11_opt_time_hierarchy.run(
            hierarchy_sizes=(200, 800), num_queries=30
        )
        small, large = result.column("time_ms")
        assert large <= 4 * 8 * small + 50  # loose linearity bound

    def test_fig12_increases_with_queries(self):
        result = fig12_opt_time_queries.run(
            num_leaves=300, query_counts=(20, 80)
        )
        small, large = result.column("time_ms")
        assert large > small * 0.5


class TestTable:
    def test_counts_match_paper(self):
        result = table_incomplete_cuts.run()
        for row in result.rows:
            assert (
                row["incomplete_cuts"] == row["paper_reported"]
            )


class TestRunner:
    def test_registry_covers_all_figures(self):
        expected = {f"fig{i}" for i in range(1, 13)} | {
            "compression",
            "table-cuts",
            "ablation-strategies",
            "ablation-costmodel",
            "ablation-kcut",
            "serve",
            "gateway",
        }
        assert set(EXPERIMENTS) == expected

    def test_run_experiment_fast(self):
        result = run_experiment("table-cuts", fast=True)
        assert result.rows

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            run_experiment("fig99")
