"""Tests for the workload-level cost evaluators (Eqs. 3-4)."""

from __future__ import annotations

import pytest

from repro.core.workload_cost import (
    WorkloadNodeStats,
    case2_cut_cost,
    case3_cut_cost,
    single_query_cut_cost,
)
from repro.workload.query import RangeQuery, Workload


@pytest.fixture
def workload():
    return Workload(
        [
            RangeQuery([(0, 5)]),
            RangeQuery([(3, 9)]),
            RangeQuery([(8, 11)]),
        ]
    )


@pytest.fixture
def wstats(small_catalog, workload):
    return WorkloadNodeStats(small_catalog, workload)


class TestWorkloadNodeStats:
    def test_union_query_merges_specs(self, wstats):
        assert wstats.union_query.specs[0].start == 0
        assert wstats.union_query.specs[0].end == 11
        assert len(wstats.union_query.specs) == 1

    def test_sum_range_cost_adds_per_query(
        self, small_catalog, workload, wstats
    ):
        root = small_catalog.hierarchy.root_id
        expected = sum(
            small_catalog.leaf_range_cost(
                spec.start, spec.end
            )
            for query in workload
            for spec in query.specs
        )
        assert wstats.sum_range_cost[root] == pytest.approx(expected)
        assert wstats.total_sum_range_cost == pytest.approx(expected)

    def test_union_cost_leq_sum(self, wstats):
        assert (
            wstats.total_union_range_cost
            <= wstats.total_sum_range_cost + 1e-9
        )

    def test_untouched_node_contributes_nothing(
        self, small_catalog
    ):
        workload = Workload([RangeQuery([(0, 1)])])
        stats = WorkloadNodeStats(small_catalog, workload)
        hierarchy = small_catalog.hierarchy
        third_child = hierarchy.internal_children(
            hierarchy.root_id
        )[2]
        assert not stats.touched[third_child]
        assert stats.case2_contrib[third_child] == 0.0
        assert stats.case3_contrib[third_child] == 0.0
        assert stats.case3_saving[third_child] == 0.0

    def test_complete_node_saving_is_full_range_cost(
        self, small_catalog
    ):
        hierarchy = small_catalog.hierarchy
        second_child = hierarchy.internal_children(
            hierarchy.root_id
        )[1]
        node = hierarchy.node(second_child)
        workload = Workload(
            [RangeQuery([(node.leaf_lo, node.leaf_hi)])]
        )
        stats = WorkloadNodeStats(small_catalog, workload)
        expected = small_catalog.leaf_range_cost(
            node.leaf_lo, node.leaf_hi
        ) - small_catalog.read_cost_mb(second_child)
        assert stats.case3_saving[second_child] == pytest.approx(
            expected
        )
        assert stats.node_read[second_child]


class TestCase2Evaluator:
    def test_empty_cut_is_leaf_only_union(self, wstats):
        assert case2_cut_cost(wstats, []) == pytest.approx(
            wstats.leaf_only_cost_case2()
        )

    def test_root_cut(self, small_catalog, wstats):
        root = small_catalog.hierarchy.root_id
        cost = case2_cut_cost(wstats, [root])
        assert cost == pytest.approx(
            float(wstats.case2_contrib[root])
        )

    def test_cut_with_untouched_member_adds_nothing(
        self, small_catalog
    ):
        workload = Workload([RangeQuery([(0, 1)])])
        stats = WorkloadNodeStats(small_catalog, workload)
        hierarchy = small_catalog.hierarchy
        children = hierarchy.internal_children(hierarchy.root_id)
        with_empty = case2_cut_cost(stats, children)
        without = case2_cut_cost(stats, children[:1])
        assert with_empty == pytest.approx(without)


class TestCase3Evaluator:
    def test_empty_cut_is_per_query_leaf_cost(self, wstats):
        assert case3_cut_cost(wstats, []) == pytest.approx(
            wstats.leaf_only_cost_case3()
        )

    def test_cost_decomposes_by_savings(self, small_catalog, wstats):
        hierarchy = small_catalog.hierarchy
        children = hierarchy.internal_children(hierarchy.root_id)
        expected = wstats.total_sum_range_cost - sum(
            float(wstats.case3_saving[child]) for child in children
        )
        assert case3_cut_cost(wstats, children) == pytest.approx(
            expected
        )

    def test_case3_geq_case2_for_same_cut(
        self, small_catalog, wstats
    ):
        """No cross-query caching can only cost more."""
        hierarchy = small_catalog.hierarchy
        for members in ([], [hierarchy.root_id]):
            assert (
                case3_cut_cost(wstats, members)
                >= case2_cut_cost(wstats, members) - 1e-9
            )


class TestSingleQueryEvaluator:
    def test_empty_cut_is_leaf_only(self, small_catalog):
        query = RangeQuery([(2, 8)])
        cost = single_query_cut_cost(small_catalog, query, [])
        assert cost == pytest.approx(
            small_catalog.leaf_range_cost(2, 8)
        )

    def test_empty_member_ignored(self, small_catalog):
        hierarchy = small_catalog.hierarchy
        query = RangeQuery([(0, 1)])
        third_child = hierarchy.internal_children(
            hierarchy.root_id
        )[2]
        with_member = single_query_cut_cost(
            small_catalog, query, [third_child]
        )
        without = single_query_cut_cost(small_catalog, query, [])
        assert with_member == pytest.approx(without)
