"""Unit tests for the observability layer (repro.obs).

Covers the deterministic trace recorder (sequence numbering, span
nesting, the disabled fast path), the metrics registry (counters,
histograms, labels, rendering), and the unified event schema shared by
measured IO and the workload simulator.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.obs import (
    NULL_METRICS,
    NULL_RECORDER,
    HistogramSummary,
    MetricsRegistry,
    NullMetrics,
    NullRecorder,
    TraceCollector,
    TraceEvent,
    collecting_metrics,
    get_metrics,
    get_recorder,
    record,
    recording,
    set_metrics,
    set_recorder,
    span,
)


class TestTraceCollector:
    def test_seq_numbers_are_dense_and_ordered(self):
        collector = TraceCollector()
        for index in range(5):
            collector.emit("test.kind", f"name{index}")
        assert [e.seq for e in collector.events] == [0, 1, 2, 3, 4]
        assert [e.name for e in collector.events] == [
            f"name{i}" for i in range(5)
        ]

    def test_attrs_are_captured(self):
        collector = TraceCollector()
        collector.emit("storage.read", "n7.bm", nbytes=1024)
        event = collector.events[0]
        assert event.kind == "storage.read"
        assert event.attrs == {"nbytes": 1024}

    def test_span_nesting_tracks_depth(self):
        collector = TraceCollector()
        with recording(collector):
            with span("outer"):
                record("mid.event", "x")
                with span("inner"):
                    record("deep.event", "y")
        kinds = [(e.kind, e.name, e.depth) for e in collector.events]
        assert kinds == [
            ("span.start", "outer", 0),
            ("mid.event", "x", 1),
            ("span.start", "inner", 1),
            ("deep.event", "y", 2),
            ("span.end", "inner", 1),
            ("span.end", "outer", 0),
        ]

    def test_span_annotate_attaches_to_end_event(self):
        collector = TraceCollector()
        with recording(collector):
            with span("work", tries=3) as sp:
                sp.annotate(cost_mb=1.5)
        start, end = collector.events
        assert start.attrs == {"tries": 3}
        assert end.attrs == {"cost_mb": 1.5}

    def test_span_records_error_type_on_exception(self):
        collector = TraceCollector()
        with recording(collector):
            with pytest.raises(ValueError):
                with span("work"):
                    raise ValueError("boom")
        end = collector.events[-1]
        assert end.kind == "span.end"
        assert end.attrs["error"] == "ValueError"

    def test_limit_drops_but_keeps_counting(self):
        collector = TraceCollector(limit=2)
        for index in range(5):
            collector.emit("k", f"n{index}")
        assert len(collector.events) == 2
        assert collector.dropped == 3

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            TraceCollector(limit=-1)

    def test_counts_and_filter(self):
        collector = TraceCollector()
        collector.emit("a.x", "1")
        collector.emit("b.y", "2")
        collector.emit("a.x", "3")
        assert collector.counts_by_kind() == {"a.x": 2, "b.y": 1}
        assert [e.name for e in collector.filter("a.x")] == ["1", "3"]

    def test_to_jsonl_round_trips(self):
        collector = TraceCollector()
        collector.emit("storage.read", "n1.bm", nbytes=7)
        lines = collector.to_jsonl().splitlines()
        assert len(lines) == 1
        parsed = json.loads(lines[0])
        assert parsed["kind"] == "storage.read"
        assert parsed["attrs"] == {"nbytes": 7}

    def test_clear_restarts_numbering(self):
        collector = TraceCollector()
        collector.emit("k", "a")
        collector.clear()
        collector.emit("k", "b")
        assert collector.events[0].seq == 0
        assert len(collector) == 1


class TestAmbientRecorder:
    def test_default_is_null_and_disabled(self):
        assert get_recorder() is NULL_RECORDER
        assert not NullRecorder.enabled
        # A no-op recorder swallows everything without error.
        record("any.kind", "name", payload=1)
        with span("untraced"):
            pass

    def test_recording_installs_and_restores(self):
        before = get_recorder()
        with recording() as collector:
            assert get_recorder() is collector
            record("k", "n")
        assert get_recorder() is before
        assert len(collector.events) == 1

    def test_recording_restores_on_exception(self):
        before = get_recorder()
        with pytest.raises(RuntimeError):
            with recording():
                raise RuntimeError
        assert get_recorder() is before

    def test_set_recorder_returns_previous(self):
        collector = TraceCollector()
        previous = set_recorder(collector)
        try:
            assert get_recorder() is collector
        finally:
            assert set_recorder(previous) is collector
        assert get_recorder() is previous

    def test_event_str_renders_seq_and_attrs(self):
        event = TraceEvent(
            seq=3, kind="cache.hit", name="n1.bm", attrs={"tier": "lru"}
        )
        rendered = str(event)
        assert "[0003]" in rendered
        assert "cache.hit" in rendered
        assert "tier='lru'" in rendered


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        metrics = MetricsRegistry()
        metrics.inc("reads_total")
        metrics.inc("reads_total", 4)
        assert metrics.counter("reads_total") == 5

    def test_labels_partition_counters(self):
        metrics = MetricsRegistry()
        metrics.inc("hits_total", tier="lru")
        metrics.inc("hits_total", tier="pinned")
        metrics.inc("hits_total", tier="lru")
        assert metrics.counter("hits_total", tier="lru") == 2
        assert metrics.counter("hits_total", tier="pinned") == 1
        assert metrics.counter("hits_total") == 0

    def test_histograms_summarize(self):
        metrics = MetricsRegistry()
        for value in (1.0, 3.0, 2.0):
            metrics.observe("width", value)
        summary = metrics.histogram("width")
        assert summary.count == 3
        assert summary.min == 1.0
        assert summary.max == 3.0
        assert summary.mean == pytest.approx(2.0)

    def test_empty_histogram_reads_safely(self):
        summary = MetricsRegistry().histogram("never")
        assert summary.count == 0
        assert math.isnan(summary.mean)
        assert summary.to_dict()["mean"] == 0.0

    def test_to_dict_is_deterministic_and_prometheus_styled(self):
        metrics = MetricsRegistry()
        metrics.inc("b_total", codec="wah")
        metrics.inc("a_total")
        metrics.observe("lat_seconds", 0.5, algorithm="hcs")
        data = metrics.to_dict()
        assert list(data["counters"]) == ["a_total", "b_total{codec=wah}"]
        assert list(data["histograms"]) == ["lat_seconds{algorithm=hcs}"]
        # Serializes cleanly.
        json.dumps(data)

    def test_to_text_mentions_each_metric(self):
        metrics = MetricsRegistry()
        metrics.inc("reads_total", 3)
        metrics.observe("lat_seconds", 0.25)
        text = metrics.to_text()
        assert "reads_total" in text
        assert "lat_seconds" in text
        assert MetricsRegistry().to_text() == "(no metrics recorded)"

    def test_reset_clears_everything(self):
        metrics = MetricsRegistry()
        metrics.inc("c")
        metrics.observe("h", 1.0)
        metrics.reset()
        assert metrics.to_dict() == {"counters": {}, "histograms": {}}

    def test_histogram_summary_observe(self):
        summary = HistogramSummary()
        summary.observe(2.0)
        summary.observe(4.0)
        assert summary.total == 6.0
        assert summary.mean == 3.0


class TestAmbientMetrics:
    def test_default_is_null_and_discards(self):
        assert get_metrics() is NULL_METRICS
        assert not NullMetrics.enabled
        get_metrics().inc("ignored_total")
        assert NULL_METRICS.counter("ignored_total") == 0

    def test_collecting_metrics_installs_and_restores(self):
        before = get_metrics()
        with collecting_metrics() as metrics:
            assert get_metrics() is metrics
            get_metrics().inc("seen_total")
        assert get_metrics() is before
        assert metrics.counter("seen_total") == 1

    def test_set_metrics_returns_previous(self):
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            assert get_metrics() is registry
        finally:
            assert set_metrics(previous) is registry


class TestUnifiedEventSchema:
    """Simulated and measured IO share one event schema and pricer."""

    @pytest.fixture
    def sim(self, small_catalog):
        from repro.core.simulate import simulate_workload
        from repro.workload.query import RangeQuery, Workload

        workload = Workload(
            [
                RangeQuery([(0, 3)], label="q0"),
                RangeQuery([(2, 7)], label="q1"),
            ]
        )
        return simulate_workload(
            small_catalog,
            workload,
            cut_node_ids=[small_catalog.hierarchy.root_id],
        )

    def test_to_events_shape(self, sim):
        events = sim.to_events()
        assert [e.kind for e in events] == [
            "sim.pin",
            "sim.query",
            "sim.query",
        ]
        assert [e.seq for e in events] == [0, 1, 2]
        assert events[1].name == "q0"
        assert events[1].attrs["reads"] == sim.traces[0].fetched_nodes

    def test_event_pricing_matches_estimated_seconds(self, sim):
        from repro.storage.diskmodel import (
            DiskProfile,
            estimate_seconds_from_events,
        )

        profile = DiskProfile.sata_7200()
        assert estimate_seconds_from_events(
            sim.to_events(), profile
        ) == pytest.approx(sim.estimated_seconds(profile), rel=1e-9)

    def test_measured_storage_reads_price_like_snapshot(
        self, materialized_setup
    ):
        from repro.core.executor import QueryExecutor
        from repro.storage.cache import BufferPool
        from repro.storage.diskmodel import (
            DiskProfile,
            estimate_seconds,
            estimate_seconds_from_events,
        )
        from repro.workload.query import RangeQuery

        _hierarchy, _column, catalog = materialized_setup
        executor = QueryExecutor(
            catalog, BufferPool(catalog.store, budget_bytes=0)
        )
        with recording() as collector:
            executor.execute_query(RangeQuery([(0, 5)]))
        profile = DiskProfile.nvme()
        snapshot = executor.pool.accountant.snapshot()
        assert estimate_seconds_from_events(
            collector.events, profile
        ) == pytest.approx(
            estimate_seconds(snapshot, profile), rel=1e-9
        )

    def test_non_io_events_are_ignored(self):
        from repro.storage.diskmodel import (
            DiskProfile,
            estimate_seconds_from_events,
        )

        events = [
            TraceEvent(seq=0, kind="span.start", name="x"),
            TraceEvent(
                seq=1,
                kind="storage.read",
                name="n1.bm",
                attrs={"nbytes": 2 * (1 << 20)},
            ),
            TraceEvent(seq=2, kind="cache.hit", name="n1.bm"),
        ]
        profile = DiskProfile("flat", seek_ms=0.0, bandwidth_mb_per_s=1.0)
        assert estimate_seconds_from_events(
            events, profile
        ) == pytest.approx(2.0)
