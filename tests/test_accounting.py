"""Tests for IO accounting."""

from __future__ import annotations

import pytest

from repro.storage.accounting import IOAccountant
from repro.storage.costmodel import MB


class TestAccountant:
    def test_records_reads(self):
        accountant = IOAccountant()
        accountant.record_read("a", 100)
        accountant.record_read("a", 100)
        accountant.record_read("b", 50)
        assert accountant.bytes_read == 250
        assert accountant.read_count == 3
        assert accountant.reads_by_name["a"] == 2
        assert accountant.bytes_by_name["b"] == 50

    def test_mb_property(self):
        accountant = IOAccountant()
        accountant.record_read("a", int(2 * MB))
        assert accountant.mb_read == pytest.approx(2.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            IOAccountant().record_read("a", -1)

    def test_reset(self):
        accountant = IOAccountant()
        accountant.record_read("a", 10)
        accountant.reset()
        assert accountant.bytes_read == 0
        assert accountant.read_count == 0
        assert not accountant.reads_by_name

    def test_snapshot_is_immutable_copy(self):
        accountant = IOAccountant()
        accountant.record_read("a", 10)
        snapshot = accountant.snapshot()
        accountant.record_read("a", 10)
        assert snapshot.bytes_read == 10
        assert snapshot.reads_by_name == {"a": 1}
        assert snapshot.mb_read == pytest.approx(10 / MB)

    def test_repr(self):
        assert "bytes_read=0" in repr(IOAccountant())


class TestSnapshotDiff:
    """Per-query attribution via snapshot()/diff() — no reset needed."""

    def test_diff_isolates_the_window(self):
        accountant = IOAccountant()
        accountant.record_read("a", 100)
        before = accountant.snapshot()
        accountant.record_read("a", 100)
        accountant.record_read("b", 50)
        accountant.record_retry("b")
        accountant.record_discard("b", 50)
        delta = accountant.snapshot().diff(before)
        assert delta.bytes_read == 150
        assert delta.read_count == 2
        assert delta.reads_by_name == {"a": 1, "b": 1}
        assert delta.bytes_by_name == {"a": 100, "b": 50}
        assert delta.retry_count == 1
        assert delta.discard_count == 1
        assert delta.discarded_bytes == 50

    def test_diff_omits_untouched_names(self):
        accountant = IOAccountant()
        accountant.record_read("quiet", 10)
        before = accountant.snapshot()
        accountant.record_read("busy", 20)
        delta = accountant.snapshot().diff(before)
        assert "quiet" not in delta.reads_by_name
        assert "quiet" not in delta.bytes_by_name

    def test_diff_since_convenience(self):
        accountant = IOAccountant()
        before = accountant.snapshot()
        accountant.record_read("a", 7)
        assert accountant.diff_since(before).bytes_read == 7

    def test_diff_rejects_reset_in_between(self):
        accountant = IOAccountant()
        accountant.record_read("a", 100)
        before = accountant.snapshot()
        accountant.reset()
        with pytest.raises(ValueError):
            accountant.diff_since(before)

    def test_empty_diff_is_all_zero(self):
        accountant = IOAccountant()
        accountant.record_read("a", 5)
        before = accountant.snapshot()
        delta = accountant.diff_since(before)
        assert delta.bytes_read == 0
        assert delta.read_count == 0
        assert delta.reads_by_name == {}
        assert delta.bytes_by_name == {}
