"""Tests for IO accounting."""

from __future__ import annotations

import pytest

from repro.storage.accounting import IOAccountant
from repro.storage.costmodel import MB


class TestAccountant:
    def test_records_reads(self):
        accountant = IOAccountant()
        accountant.record_read("a", 100)
        accountant.record_read("a", 100)
        accountant.record_read("b", 50)
        assert accountant.bytes_read == 250
        assert accountant.read_count == 3
        assert accountant.reads_by_name["a"] == 2
        assert accountant.bytes_by_name["b"] == 50

    def test_mb_property(self):
        accountant = IOAccountant()
        accountant.record_read("a", int(2 * MB))
        assert accountant.mb_read == pytest.approx(2.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            IOAccountant().record_read("a", -1)

    def test_reset(self):
        accountant = IOAccountant()
        accountant.record_read("a", 10)
        accountant.reset()
        assert accountant.bytes_read == 0
        assert accountant.read_count == 0
        assert not accountant.reads_by_name

    def test_snapshot_is_immutable_copy(self):
        accountant = IOAccountant()
        accountant.record_read("a", 10)
        snapshot = accountant.snapshot()
        accountant.record_read("a", 10)
        assert snapshot.bytes_read == 10
        assert snapshot.reads_by_name == {"a": 1}
        assert snapshot.mb_read == pytest.approx(10 / MB)

    def test_repr(self):
        assert "bytes_read=0" in repr(IOAccountant())
