"""Unit tests for the WAH compressed bitmap."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitmap.wah import (
    LITERAL_PAYLOAD_MASK,
    WORD_PAYLOAD_BITS,
    WahBitmap,
)
from repro.errors import BitmapLengthMismatchError


class TestConstructors:
    def test_zeros_has_no_set_bits(self):
        bitmap = WahBitmap.zeros(1000)
        assert bitmap.count() == 0
        assert bitmap.density() == 0.0
        assert bitmap.num_bits == 1000

    def test_zeros_compresses_to_one_fill_word(self):
        bitmap = WahBitmap.zeros(10_000_000)
        assert bitmap.num_words == 1

    def test_ones_has_all_bits_set(self):
        bitmap = WahBitmap.ones(1000)
        assert bitmap.count() == 1000
        assert bitmap.density() == 1.0

    def test_ones_with_partial_tail_group(self):
        num_bits = WORD_PAYLOAD_BITS * 3 + 7
        bitmap = WahBitmap.ones(num_bits)
        assert bitmap.count() == num_bits
        assert bitmap.get(num_bits - 1)

    def test_ones_exact_group_boundary(self):
        bitmap = WahBitmap.ones(WORD_PAYLOAD_BITS * 4)
        assert bitmap.count() == WORD_PAYLOAD_BITS * 4
        assert bitmap.num_words == 1

    def test_empty_bitmap(self):
        bitmap = WahBitmap.zeros(0)
        assert bitmap.count() == 0
        assert bitmap.num_bits == 0
        assert bitmap.density() == 0.0

    def test_from_positions(self):
        positions = [0, 5, 31, 62, 999]
        bitmap = WahBitmap.from_positions(positions, 1000)
        assert bitmap.count() == len(positions)
        assert bitmap.to_positions().tolist() == positions

    def test_from_positions_unsorted_and_duplicated(self):
        bitmap = WahBitmap.from_positions([9, 3, 3, 9, 1], 16)
        assert bitmap.to_positions().tolist() == [1, 3, 9]

    def test_from_positions_out_of_range(self):
        with pytest.raises(ValueError):
            WahBitmap.from_positions([10], 10)
        with pytest.raises(ValueError):
            WahBitmap.from_positions([-1], 10)

    def test_from_positions_empty(self):
        bitmap = WahBitmap.from_positions([], 77)
        assert bitmap.count() == 0
        assert bitmap.num_bits == 77

    def test_from_dense(self):
        dense = np.zeros(200, dtype=bool)
        dense[[0, 63, 100, 199]] = True
        bitmap = WahBitmap.from_dense(dense)
        assert bitmap.to_positions().tolist() == [0, 63, 100, 199]
        np.testing.assert_array_equal(bitmap.to_dense(), dense)

    def test_from_runs(self):
        bitmap = WahBitmap.from_runs([(0, 10), (50, 62)], 100)
        expected = list(range(0, 10)) + list(range(50, 62))
        assert bitmap.to_positions().tolist() == expected

    def test_from_runs_rejects_overlap(self):
        with pytest.raises(ValueError):
            WahBitmap.from_runs([(0, 10), (5, 15)], 100)

    def test_from_runs_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            WahBitmap.from_runs([(90, 101)], 100)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            WahBitmap.zeros(-1)


class TestCompression:
    def test_long_one_run_compresses(self):
        bitmap = WahBitmap.from_runs([(0, 31 * 1000)], 31 * 1000)
        assert bitmap.num_words <= 2

    def test_sparse_bitmap_is_small(self):
        bitmap = WahBitmap.from_positions([500_000], 1_000_000)
        assert bitmap.num_words <= 3

    def test_alternating_bits_stay_literal(self):
        positions = np.arange(0, 310, 2)
        bitmap = WahBitmap.from_positions(positions, 310)
        assert bitmap.num_words == 10  # all literal groups

    def test_canonical_encoding_no_adjacent_same_fills(self):
        bitmap = WahBitmap.from_positions([100, 200, 300], 1000)
        runs = list(bitmap.iter_runs())
        for left, right in zip(runs, runs[1:]):
            if left[0] and right[0]:  # both fills
                assert left[1] != right[1]


class TestAccessors:
    def test_get(self):
        bitmap = WahBitmap.from_positions([0, 40, 99], 100)
        assert bitmap.get(0)
        assert bitmap.get(40)
        assert bitmap.get(99)
        assert not bitmap.get(1)
        assert not bitmap.get(98)

    def test_get_out_of_range(self):
        bitmap = WahBitmap.zeros(10)
        with pytest.raises(IndexError):
            bitmap.get(10)
        with pytest.raises(IndexError):
            bitmap.get(-1)

    def test_density(self):
        bitmap = WahBitmap.from_positions(range(25), 100)
        assert bitmap.density() == pytest.approx(0.25)

    def test_len(self):
        assert len(WahBitmap.zeros(42)) == 42

    def test_repr_mentions_counts(self):
        text = repr(WahBitmap.from_positions([1], 10))
        assert "count=1" in text


class TestLogicalOps:
    def test_and(self):
        a = WahBitmap.from_positions([1, 2, 3, 100], 200)
        b = WahBitmap.from_positions([2, 3, 4, 150], 200)
        assert (a & b).to_positions().tolist() == [2, 3]

    def test_or(self):
        a = WahBitmap.from_positions([1, 100], 200)
        b = WahBitmap.from_positions([2, 150], 200)
        assert (a | b).to_positions().tolist() == [1, 2, 100, 150]

    def test_xor(self):
        a = WahBitmap.from_positions([1, 2], 64)
        b = WahBitmap.from_positions([2, 3], 64)
        assert (a ^ b).to_positions().tolist() == [1, 3]

    def test_andnot(self):
        a = WahBitmap.from_positions([1, 2, 3], 64)
        b = WahBitmap.from_positions([2], 64)
        assert a.andnot(b).to_positions().tolist() == [1, 3]

    def test_invert(self):
        bitmap = WahBitmap.from_positions([0, 2], 5)
        assert (~bitmap).to_positions().tolist() == [1, 3, 4]

    def test_invert_keeps_padding_clear(self):
        bitmap = WahBitmap.zeros(40)  # 40 % 31 != 0
        flipped = ~bitmap
        assert flipped.count() == 40
        assert flipped.to_positions().tolist() == list(range(40))

    def test_double_invert_roundtrip(self):
        bitmap = WahBitmap.from_positions([0, 17, 62, 63], 70)
        assert ~~bitmap == bitmap

    def test_ops_with_fills_spanning_boundaries(self):
        a = WahBitmap.from_runs([(0, 310)], 620)
        b = WahBitmap.from_runs([(155, 465)], 620)
        expected = list(range(155, 310))
        assert (a & b).to_positions().tolist() == expected

    def test_length_mismatch_raises(self):
        a = WahBitmap.zeros(10)
        b = WahBitmap.zeros(11)
        with pytest.raises(BitmapLengthMismatchError):
            _ = a & b

    def test_union_all(self):
        bitmaps = [
            WahBitmap.from_positions([i], 50) for i in (3, 7, 11)
        ]
        union = WahBitmap.union_all(bitmaps)
        assert union.to_positions().tolist() == [3, 7, 11]

    def test_union_all_empty_needs_num_bits(self):
        with pytest.raises(ValueError):
            WahBitmap.union_all([])
        assert WahBitmap.union_all([], num_bits=9).count() == 0

    def test_and_with_ones_is_identity(self):
        bitmap = WahBitmap.from_positions([5, 36, 68], 70)
        assert (bitmap & WahBitmap.ones(70)) == bitmap

    def test_or_with_zeros_is_identity(self):
        bitmap = WahBitmap.from_positions([5, 36, 68], 70)
        assert (bitmap | WahBitmap.zeros(70)) == bitmap


class TestEqualityAndHash:
    def test_equal_bitmaps_share_hash(self):
        a = WahBitmap.from_positions([1, 2, 64], 100)
        b = WahBitmap.from_positions([64, 2, 1], 100)
        assert a == b
        assert hash(a) == hash(b)

    def test_different_lengths_not_equal(self):
        assert WahBitmap.zeros(10) != WahBitmap.zeros(11)

    def test_not_equal_to_other_types(self):
        assert WahBitmap.zeros(10) != "bitmap"


def test_literal_payload_constants():
    assert LITERAL_PAYLOAD_MASK == (1 << WORD_PAYLOAD_BITS) - 1
    assert WORD_PAYLOAD_BITS == 31
