"""CRC32 framing tests: round trips for all four codecs, plus rejection
of truncated and single-bit-flipped payloads."""

from __future__ import annotations

import pytest

from repro.bitmap.plain import PlainBitmap
from repro.bitmap.plwah import PlwahBitmap
from repro.bitmap.roaring import RoaringBitmap
from repro.bitmap.serialization import (
    CODEC_PLAIN,
    CODEC_PLWAH,
    CODEC_ROARING,
    CODEC_WAH,
    deserialize_bitmap,
    deserialize_plain,
    deserialize_plwah,
    deserialize_roaring,
    deserialize_wah,
    payload_codec,
    serialize_bitmap,
    serialize_plain,
    serialize_plwah,
    serialize_roaring,
    serialize_wah,
    verify_frame,
)
from repro.bitmap.wah import WahBitmap
from repro.errors import BitmapDecodeError, ChecksumError

POSITIONS = [0, 3, 64, 65, 1000, 4095, 9999]
NUM_BITS = 10_000

CODECS = {
    "wah": (
        lambda: WahBitmap.from_positions(POSITIONS, NUM_BITS),
        serialize_wah,
        deserialize_wah,
        CODEC_WAH,
    ),
    "plwah": (
        lambda: PlwahBitmap.from_positions(POSITIONS, NUM_BITS),
        serialize_plwah,
        deserialize_plwah,
        CODEC_PLWAH,
    ),
    "roaring": (
        lambda: RoaringBitmap.from_positions(POSITIONS, NUM_BITS),
        serialize_roaring,
        deserialize_roaring,
        CODEC_ROARING,
    ),
    "plain": (
        lambda: PlainBitmap.from_positions(POSITIONS, NUM_BITS),
        serialize_plain,
        deserialize_plain,
        CODEC_PLAIN,
    ),
}


@pytest.fixture(params=sorted(CODECS), ids=sorted(CODECS))
def codec(request):
    return request.param


class TestRoundTrip:
    def test_roundtrip_preserves_bitmap(self, codec):
        build, serialize, deserialize, _ = CODECS[codec]
        bitmap = build()
        restored = deserialize(serialize(bitmap))
        assert restored == bitmap
        assert list(restored.to_positions()) == POSITIONS

    def test_empty_bitmap_roundtrip(self, codec):
        build, serialize, deserialize, _ = CODECS[codec]
        cls = type(build())
        empty = cls.zeros(512)
        assert deserialize(serialize(empty)) == empty

    def test_frame_reports_codec(self, codec):
        build, serialize, _, codec_id = CODECS[codec]
        payload = serialize(build())
        assert payload_codec(payload) == codec_id
        assert verify_frame(payload) == codec_id

    def test_generic_dispatch_roundtrip(self, codec):
        build, _, _, _ = CODECS[codec]
        bitmap = build()
        restored = deserialize_bitmap(serialize_bitmap(bitmap))
        assert type(restored) is type(bitmap)
        assert restored == bitmap

    def test_wrong_codec_rejected(self, codec):
        build, serialize, _, _ = CODECS[codec]
        payload = serialize(build())
        others = [
            CODECS[name][2] for name in sorted(CODECS) if name != codec
        ]
        for deserialize_other in others:
            with pytest.raises(BitmapDecodeError):
                deserialize_other(payload)


class TestCorruptionRejection:
    def test_every_truncation_rejected(self, codec):
        build, serialize, deserialize, _ = CODECS[codec]
        payload = serialize(build())
        for cut in range(len(payload)):
            with pytest.raises(BitmapDecodeError):
                deserialize(payload[:cut])

    def test_every_single_bit_flip_rejected(self, codec):
        """CRC32 detects any single-bit error by construction."""
        build, serialize, deserialize, _ = CODECS[codec]
        payload = serialize(build())
        for position in range(len(payload) * 8):
            corrupted = bytearray(payload)
            corrupted[position // 8] ^= 1 << (position % 8)
            with pytest.raises(BitmapDecodeError):
                deserialize(bytes(corrupted))

    def test_trailing_garbage_rejected(self, codec):
        build, serialize, deserialize, _ = CODECS[codec]
        payload = serialize(build())
        with pytest.raises(BitmapDecodeError):
            deserialize(payload + b"\x00")

    def test_payload_corruption_is_checksum_error(self, codec):
        """A flip in the body (past the length-checked header fields)
        surfaces as the typed ChecksumError, the executor's retry cue."""
        build, serialize, deserialize, _ = CODECS[codec]
        payload = bytearray(serialize(build()))
        payload[-5] ^= 0x10  # inside body, away from header/CRC trailer
        with pytest.raises(ChecksumError):
            deserialize(bytes(payload))
