"""End-to-end execution tests: plans run on real WAH bitmaps through
the buffer pool, answers checked against a column scan, and IO
accounting checked against the plan's prediction."""

from __future__ import annotations

import pytest

from repro.core.executor import QueryExecutor, scan_answer
from repro.core.opnodes import build_query_plan, leaf_only_plan
from repro.core.single import (
    exclusive_cut,
    hybrid_cut,
    inclusive_cut,
)
from repro.storage.cache import BufferPool
from repro.storage.catalog import node_file_name
from repro.storage.costmodel import MB
from repro.workload.query import RangeQuery, Workload


QUERIES = [
    RangeQuery([(0, 2)]),
    RangeQuery([(3, 11)]),
    RangeQuery([(0, 15)]),
    RangeQuery([(2, 9), (12, 14)]),
    RangeQuery([(7, 7)]),
]


class TestAnswerCorrectness:
    @pytest.mark.parametrize("query", QUERIES, ids=repr)
    def test_leaf_only_plan_matches_scan(
        self, materialized_setup, query
    ):
        _hierarchy, column, catalog = materialized_setup
        executor = QueryExecutor(catalog)
        result = executor.execute_plan(
            leaf_only_plan(catalog, query)
        )
        assert result.answer == scan_answer(column, query)

    @pytest.mark.parametrize(
        "strategy", [inclusive_cut, exclusive_cut, hybrid_cut]
    )
    @pytest.mark.parametrize("query", QUERIES, ids=repr)
    def test_selected_cut_plans_match_scan(
        self, materialized_setup, strategy, query
    ):
        _hierarchy, column, catalog = materialized_setup
        selection = strategy(catalog, query)
        plan = build_query_plan(
            catalog,
            query,
            selection.cut.node_ids,
            labels=selection.labels,
        )
        executor = QueryExecutor(catalog)
        result = executor.execute_plan(plan)
        assert result.answer == scan_answer(column, query)

    def test_incomplete_cut_still_answers_correctly(
        self, materialized_setup
    ):
        hierarchy, column, catalog = materialized_setup
        member = hierarchy.internal_children(hierarchy.root_id)[0]
        query = RangeQuery([(1, 12)])
        executor = QueryExecutor(catalog)
        result = executor.execute_query(query, [member])
        assert result.answer == scan_answer(column, query)


class TestIOAccounting:
    def test_io_matches_prediction_for_cold_execution(
        self, materialized_setup
    ):
        """With measured file sizes, predicted MB == actual bytes."""
        _hierarchy, column, catalog = materialized_setup
        for query in QUERIES:
            selection = hybrid_cut(catalog, query)
            plan = build_query_plan(
                catalog,
                query,
                selection.cut.node_ids,
                labels=selection.labels,
            )
            # A fresh pool that streams everything (budget 0): every
            # operation node is read exactly once by this single plan.
            executor = QueryExecutor(
                catalog,
                BufferPool(catalog.store, budget_bytes=0),
            )
            result = executor.execute_plan(plan)
            assert result.io_mb == pytest.approx(
                plan.predicted_cost_mb
            )

    def test_hybrid_io_never_exceeds_leaf_only(
        self, materialized_setup
    ):
        _hierarchy, _column, catalog = materialized_setup
        for query in QUERIES:
            selection = hybrid_cut(catalog, query)
            plan = build_query_plan(
                catalog,
                query,
                selection.cut.node_ids,
                labels=selection.labels,
            )
            cold = QueryExecutor(
                catalog, BufferPool(catalog.store, budget_bytes=0)
            )
            hybrid_io = cold.execute_plan(plan).io_bytes
            baseline = QueryExecutor(
                catalog, BufferPool(catalog.store, budget_bytes=0)
            )
            leaf_io = baseline.execute_plan(
                leaf_only_plan(catalog, query)
            ).io_bytes
            assert hybrid_io <= leaf_io

    def test_pinned_cut_charged_once_across_workload(
        self, materialized_setup
    ):
        hierarchy, column, catalog = materialized_setup
        workload = Workload(
            [RangeQuery([(0, 9)]), RangeQuery([(4, 13)])]
        )
        members = hierarchy.internal_children(hierarchy.root_id)
        pool = BufferPool(catalog.store, budget_bytes=None)
        executor = QueryExecutor(catalog, pool)
        results, snapshot = executor.execute_workload(
            workload, members
        )
        for result, query in zip(results, workload):
            assert result.answer == scan_answer(column, query)
        # Every file fetched at most once: unbounded pool caches all.
        assert all(
            count == 1
            for count in snapshot.reads_by_name.values()
        )

    def test_unpinned_workload_io_matches_uncached_prediction(
        self, materialized_setup
    ):
        """Regression: with ``pin=False`` the plans must not assume the
        cut is resident — measured IO equals the uncached (Eq. 1-style)
        prediction, not the Case-2/3 cached one."""
        hierarchy, column, catalog = materialized_setup
        workload = Workload(
            [RangeQuery([(0, 9)]), RangeQuery([(4, 13)])]
        )
        members = hierarchy.internal_children(hierarchy.root_id)
        pool = BufferPool(catalog.store, budget_bytes=0)
        executor = QueryExecutor(catalog, pool)
        results, snapshot = executor.execute_workload(
            workload, members, pin=False
        )
        for result, query in zip(results, workload):
            assert result.answer == scan_answer(column, query)
        predicted = sum(
            build_query_plan(
                catalog, query, members, node_is_cached=False
            ).predicted_cost_mb
            for query in workload
        )
        assert snapshot.mb_read == pytest.approx(predicted)
        # Per-query results carry the same uncached predictions.
        for result, query in zip(results, workload):
            plan = build_query_plan(
                catalog, query, members, node_is_cached=False
            )
            assert result.io_mb == pytest.approx(
                plan.predicted_cost_mb
            )

    def test_pinned_workload_io_matches_cached_prediction(
        self, materialized_setup
    ):
        """With ``pin=True`` measured IO is the one-time cut read plus
        the per-query Case-2/3 (cached-members) predictions."""
        hierarchy, column, catalog = materialized_setup
        workload = Workload(
            [RangeQuery([(0, 9)]), RangeQuery([(4, 13)])]
        )
        members = hierarchy.internal_children(hierarchy.root_id)
        pin_bytes = sum(
            catalog.store.size_bytes(node_file_name(node_id))
            for node_id in members
        )
        pool = BufferPool(
            catalog.store, budget_bytes=pin_bytes
        )
        executor = QueryExecutor(catalog, pool)
        results, snapshot = executor.execute_workload(
            workload, members, pin=True
        )
        for result, query in zip(results, workload):
            assert result.answer == scan_answer(column, query)
        predicted = sum(
            build_query_plan(
                catalog, query, members, node_is_cached=True
            ).predicted_cost_mb
            for query in workload
        )
        assert snapshot.mb_read == pytest.approx(
            predicted + pin_bytes / MB
        )

    def test_streaming_rereads_unpinned_files(
        self, materialized_setup
    ):
        hierarchy, _column, catalog = materialized_setup
        query = RangeQuery([(0, 3)])
        pool = BufferPool(catalog.store, budget_bytes=0)
        executor = QueryExecutor(catalog, pool)
        executor.execute_plan(leaf_only_plan(catalog, query))
        executor.execute_plan(leaf_only_plan(catalog, query))
        assert all(
            count == 2
            for count in pool.accountant.reads_by_name.values()
        )


class TestScanAnswer:
    def test_multi_spec_scan(self, materialized_setup):
        _hierarchy, column, _catalog = materialized_setup
        query = RangeQuery([(0, 1), (14, 15)])
        answer = scan_answer(column, query)
        expected = (
            (column <= 1) | (column >= 14)
        ).sum()
        assert answer.count() == expected
