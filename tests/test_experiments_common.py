"""Tests for the shared experiment infrastructure."""

from __future__ import annotations

import pytest

from repro.experiments.common import (
    ExperimentResult,
    average_over_runs,
    budget_for_fraction,
    catalog_for,
    hierarchy_for,
    leaf_probabilities_for,
)
from repro.hierarchy.enumeration import max_weight_complete_cut


class TestExperimentResult:
    def test_column_extraction(self):
        result = ExperimentResult(title="t", columns=["a", "b"])
        result.add_row(a=1, b=2)
        result.add_row(a=3, b=4)
        assert result.column("a") == [1, 3]
        assert result.column("missing") == [None, None]

    def test_text_alignment(self):
        result = ExperimentResult(
            title="t", columns=["name", "value"]
        )
        result.add_row(name="x", value=1.23456)
        text = str(result)
        assert "1.23" in text
        assert text.splitlines()[0] == "== t =="

    def test_empty_table_renders(self):
        result = ExperimentResult(title="empty", columns=["a"])
        assert "empty" in result.to_text()


class TestHierarchyFor:
    def test_paper_sizes_use_paper_shapes(self):
        from repro.hierarchy.enumeration import count_antichains

        assert count_antichains(hierarchy_for(20)) == 154

    def test_other_sizes_use_balanced(self):
        hierarchy = hierarchy_for(64, height=4)
        assert hierarchy.num_leaves == 64
        assert hierarchy.height == 4


class TestLeafProbabilities:
    @pytest.mark.parametrize(
        "dataset", ["normal", "tpch", "uniform"]
    )
    def test_known_datasets(self, dataset):
        probabilities = leaf_probabilities_for(dataset, 30)
        assert probabilities.shape == (30,)
        assert probabilities.sum() == pytest.approx(1.0)

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            leaf_probabilities_for("mystery", 30)


class TestCatalogFor:
    def test_defaults(self):
        catalog = catalog_for("tpch", 100)
        assert catalog.hierarchy.num_leaves == 100
        assert catalog.num_rows == 150_000_000
        assert catalog.cost_model.a == 1043.0


class TestBudgetForFraction:
    def test_scales_with_maximum_cut(self):
        catalog = catalog_for("tpch", 100)
        max_size, _ = max_weight_complete_cut(
            catalog.hierarchy, catalog.size_array()
        )
        assert budget_for_fraction(catalog, 0.5) == pytest.approx(
            0.5 * max_size
        )
        assert budget_for_fraction(catalog, 1.0) == pytest.approx(
            max_size
        )


class TestAverageOverRuns:
    def test_averages_each_metric(self):
        seen = []

        def measure(seed):
            seen.append(seed)
            return {"x": seed, "y": 2.0}

        averages = average_over_runs(3, 10, measure)
        assert seen == [10, 11, 12]
        assert averages["x"] == pytest.approx(11.0)
        assert averages["y"] == pytest.approx(2.0)

    def test_requires_positive_runs(self):
        with pytest.raises(ValueError):
            average_over_runs(0, 0, lambda seed: {})
