"""Tests for the per-node cost functions, including the paper's
running U.S./CA/AZ example (§2.2.2)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.costs import (
    StrategyLabel,
    cached_node_usage,
    node_caching_saving,
    node_exclusive_cost,
    node_hybrid_cost,
    node_inclusive_cost,
)
from repro.core.stats import QueryNodeStats
from repro.storage.catalog import ModeledNodeCatalog
from repro.storage.costmodel import CostModel
from repro.workload.query import RangeQuery


@pytest.fixture
def us_catalog(us_hierarchy, paper_cost_model):
    """Uneven leaf distribution over the six-city example."""
    probabilities = np.array(
        [0.25, 0.20, 0.05, 0.20, 0.15, 0.15]
    )
    return ModeledNodeCatalog(
        us_hierarchy, probabilities, paper_cost_model, 150_000_000
    )


@pytest.fixture
def us_query(us_hierarchy):
    """The paper's example query: [SFO, L.A., S.D., PHX]."""
    phx = us_hierarchy.leaf_value("PHX")
    return RangeQuery([(0, phx)])


class TestPaperExample:
    def test_ca_is_complete_and_costs_its_own_read(
        self, us_catalog, us_hierarchy, us_query
    ):
        stats = QueryNodeStats(us_catalog, us_query)
        ca = us_hierarchy.node_by_name("CA").node_id
        expected = us_catalog.read_cost_mb(ca)
        assert node_inclusive_cost(stats, ca) == pytest.approx(
            expected
        )
        assert node_exclusive_cost(stats, ca) == pytest.approx(
            expected
        )
        cost, label = node_hybrid_cost(stats, ca)
        assert cost == pytest.approx(expected)
        assert label is StrategyLabel.COMPLETE

    def test_az_partial_costs(
        self, us_catalog, us_hierarchy, us_query
    ):
        stats = QueryNodeStats(us_catalog, us_query)
        az = us_hierarchy.node_by_name("AZ").node_id
        phx = us_hierarchy.leaf_node_id(
            us_hierarchy.leaf_value("PHX")
        )
        tempe = us_hierarchy.leaf_node_id(
            us_hierarchy.leaf_value("Tempe")
        )
        tucson = us_hierarchy.leaf_node_id(
            us_hierarchy.leaf_value("Tucson")
        )
        inclusive = us_catalog.read_cost_mb(phx)
        exclusive = (
            us_catalog.read_cost_mb(az)
            + us_catalog.read_cost_mb(tempe)
            + us_catalog.read_cost_mb(tucson)
        )
        assert node_inclusive_cost(stats, az) == pytest.approx(
            inclusive
        )
        assert node_exclusive_cost(stats, az) == pytest.approx(
            exclusive
        )
        cost, _label = node_hybrid_cost(stats, az)
        assert cost == pytest.approx(min(inclusive, exclusive))

    def test_root_exclusive_plan_cost(
        self, us_catalog, us_hierarchy, us_query
    ):
        """U.S. ANDNOT (Tempe OR Tucson): read root + 2 leaves."""
        stats = QueryNodeStats(us_catalog, us_query)
        root = us_hierarchy.root_id
        exclusive = node_exclusive_cost(stats, root)
        leaves = [
            us_hierarchy.leaf_node_id(
                us_hierarchy.leaf_value(name)
            )
            for name in ("Tempe", "Tucson")
        ]
        expected = us_catalog.read_cost_mb(root) + sum(
            us_catalog.read_cost_mb(leaf) for leaf in leaves
        )
        assert exclusive == pytest.approx(expected)
        # The root has density 1, so its read is free and the
        # exclusive plan is very attractive for this 4-of-6 range.
        assert us_catalog.read_cost_mb(root) == 0.0


class TestEmptyNodes:
    def test_empty_node_costs_are_infinite(
        self, us_catalog, us_hierarchy
    ):
        query = RangeQuery([(0, 0)])  # SFO only
        stats = QueryNodeStats(us_catalog, query)
        az = us_hierarchy.node_by_name("AZ").node_id
        assert math.isinf(node_inclusive_cost(stats, az))
        assert math.isinf(node_exclusive_cost(stats, az))
        cost, label = node_hybrid_cost(stats, az)
        assert math.isinf(cost)
        assert label is StrategyLabel.EMPTY


class TestCachedUsage:
    def test_complete_node_is_free_when_cached(
        self, us_catalog, us_hierarchy, us_query
    ):
        stats = QueryNodeStats(us_catalog, us_query)
        ca = us_hierarchy.node_by_name("CA").node_id
        extra, label = cached_node_usage(stats, ca)
        assert extra == 0.0
        assert label is StrategyLabel.COMPLETE

    def test_partial_node_compares_leaf_sets_only(
        self, us_catalog, us_hierarchy, us_query
    ):
        stats = QueryNodeStats(us_catalog, us_query)
        az = us_hierarchy.node_by_name("AZ").node_id
        extra, _label = cached_node_usage(stats, az)
        range_cost = float(stats.range_leaf_cost[az])
        non_range = stats.non_range_leaf_cost(az)
        assert extra == pytest.approx(min(range_cost, non_range))

    def test_empty_node_free_and_ignored(
        self, us_catalog, us_hierarchy
    ):
        query = RangeQuery([(0, 0)])
        stats = QueryNodeStats(us_catalog, query)
        az = us_hierarchy.node_by_name("AZ").node_id
        extra, label = cached_node_usage(stats, az)
        assert extra == 0.0
        assert label is StrategyLabel.EMPTY

    def test_saving_is_nonnegative(
        self, us_catalog, us_hierarchy, us_query
    ):
        stats = QueryNodeStats(us_catalog, us_query)
        for node_id in us_hierarchy.internal_ids_postorder():
            assert node_caching_saving(stats, node_id) >= 0.0

    def test_saving_matches_definition(
        self, us_catalog, us_hierarchy, us_query
    ):
        stats = QueryNodeStats(us_catalog, us_query)
        ca = us_hierarchy.node_by_name("CA").node_id
        # Complete node: caching saves the whole range-leaf cost.
        assert node_caching_saving(stats, ca) == pytest.approx(
            float(stats.range_leaf_cost[ca])
        )


class TestTieBreaks:
    def test_hybrid_tie_goes_inclusive(self, small_catalog):
        """When inclusive == exclusive, the label is INCLUSIVE
        (Alg. 2 line 11 uses <=)."""
        hierarchy = small_catalog.hierarchy
        query = RangeQuery([(0, hierarchy.num_leaves - 1)])
        stats = QueryNodeStats(small_catalog, query)
        for node_id in hierarchy.internal_ids_postorder():
            _cost, label = node_hybrid_cost(stats, node_id)
            assert label in (
                StrategyLabel.COMPLETE,
                StrategyLabel.INCLUSIVE,
            )
