"""EXPLAIN ANALYZE acceptance tests.

The contract under test (from the cost model's central claim): on a
cold pool over healthy storage, the bytes measured for *every*
operation node equal the catalog's prediction exactly — and when
storage misbehaves, the report says where the extra bytes went.
"""

from __future__ import annotations

import json

import pytest

from repro.core.executor import QueryExecutor, scan_answer
from repro.core.opnodes import build_query_plan
from repro.core.single import hybrid_cut
from repro.storage.cache import BufferPool
from repro.storage.catalog import node_file_name
from repro.storage.faults import FaultPolicy, RetryPolicy
from repro.workload.query import RangeQuery

QUERIES = [
    RangeQuery([(0, 2)]),
    RangeQuery([(3, 11)]),
    RangeQuery([(0, 15)]),
    RangeQuery([(2, 9), (12, 14)]),
]


def _cold_executor(catalog, budget_bytes=0):
    """A fresh pool so nothing is resident before the report runs."""
    return QueryExecutor(
        catalog, BufferPool(catalog.store, budget_bytes=budget_bytes)
    )


class TestColdPredictions:
    """The acceptance criterion: measured == predicted, node by node."""

    @pytest.mark.parametrize("query", QUERIES, ids=repr)
    def test_every_node_matches_prediction(
        self, materialized_setup, query
    ):
        _hierarchy, column, catalog = materialized_setup
        selection = hybrid_cut(catalog, query)
        executor = _cold_executor(catalog)
        report = executor.explain_analyze(
            query, selection.cut.node_ids
        )
        assert report.nodes, "a non-empty plan must produce node rows"
        for node in report.nodes:
            assert node.matches_prediction, (
                f"{node.name}: predicted {node.predicted_bytes} B, "
                f"measured {node.measured_bytes} B"
            )
        assert report.matches_prediction
        assert report.measured_bytes == sum(
            node.measured_bytes for node in report.nodes
        )
        assert report.answer_count == scan_answer(
            column, query
        ).count()

    def test_totals_reconcile_with_plan_prediction(
        self, materialized_setup
    ):
        _hierarchy, _column, catalog = materialized_setup
        query = RangeQuery([(1, 12)])
        report = _cold_executor(catalog).explain_analyze(query)
        assert report.measured_mb == pytest.approx(
            report.predicted_mb
        )
        assert report.io.retry_count == 0
        assert report.io.discard_count == 0
        assert not report.degraded_reads

    def test_accepts_prebuilt_plan(self, materialized_setup):
        _hierarchy, _column, catalog = materialized_setup
        query = RangeQuery([(0, 7)])
        plan = build_query_plan(catalog, query, [])
        report = _cold_executor(catalog).explain_analyze(plan)
        assert report.plan is plan
        assert report.planner_seconds is None
        assert report.matches_prediction


class TestCachedExecution:
    def test_pinned_members_report_hits_and_zero_bytes(
        self, materialized_setup
    ):
        hierarchy, _column, catalog = materialized_setup
        last = hierarchy.num_leaves - 1
        query = RangeQuery([(0, last)])
        members = [hierarchy.root_id]
        executor = QueryExecutor(catalog)
        executor.pin_cut(members)
        report = executor.explain_analyze(
            query, members, node_is_cached=True
        )
        root_row = next(
            node
            for node in report.nodes
            if node.node_id == hierarchy.root_id
        )
        assert root_row.predicted_mb == 0.0
        assert root_row.measured_bytes == 0
        assert root_row.cache_hits >= 1
        assert root_row.matches_prediction
        assert node_file_name(hierarchy.root_id) in report.pre_cached

    def test_warm_rerun_measures_zero(self, materialized_setup):
        _hierarchy, _column, catalog = materialized_setup
        query = RangeQuery([(0, 5)])
        executor = QueryExecutor(catalog)  # default LRU budget
        executor.execute_query(query)
        report = executor.explain_analyze(query)
        assert report.measured_bytes == 0
        assert all(node.cache_hits >= 1 for node in report.nodes)


class TestFaultyExecution:
    def test_sticky_corruption_shows_up_per_node(
        self, materialized_setup
    ):
        hierarchy, column, catalog = materialized_setup
        last = hierarchy.num_leaves - 1
        query = RangeQuery([(0, last)])
        victim = hierarchy.root_id
        policy = FaultPolicy(
            sticky_corrupt_names={node_file_name(victim)}
        )
        executor = QueryExecutor(
            catalog,
            BufferPool(
                catalog.store,
                budget_bytes=0,
                retry_policy=RetryPolicy(max_attempts=4),
            ),
        )
        catalog.store.set_fault_policy(policy)
        try:
            report = executor.explain_analyze(query, [victim])
        finally:
            catalog.store.set_fault_policy(None)
        assert report.answer_count == scan_answer(
            column, query
        ).count()
        victim_row = next(
            node for node in report.nodes if node.node_id == victim
        )
        assert victim_row.degraded
        assert victim_row.discards >= 1
        assert not victim_row.matches_prediction
        assert not report.matches_prediction
        # Recovery reads (the descendants' bitmaps) get their own rows,
        # so every measured byte is itemized.
        recovery_rows = [
            node for node in report.nodes if node.role == "recovery"
        ]
        assert recovery_rows
        assert report.measured_bytes == sum(
            node.measured_bytes for node in report.nodes
        )
        assert len(report.degraded_reads) == 1
        assert report.degraded_reads[0].node_id == victim
        kinds = {event.kind for event in report.events}
        assert "executor.discard" in kinds
        assert "executor.degraded" in kinds
        assert "fault.injected" in kinds


class TestDeltaMergeRows:
    """Merge-on-read shows up as honestly-accounted delta rows."""

    def test_delta_reads_get_rows_but_do_not_fail_prediction(
        self, tmp_path
    ):
        import numpy as np

        from repro.hierarchy.tree import Hierarchy
        from repro.storage.catalog import MaterializedNodeCatalog
        from repro.storage.delta import DeltaAppender
        from repro.storage.manifest import (
            DurableBitmapStore,
            parse_delta_file_name,
        )

        hierarchy = Hierarchy.from_nested([[2, 2], [3, 2], [3]])
        rng = np.random.default_rng(19)
        column = rng.integers(
            0, hierarchy.num_leaves, size=800, dtype=np.int64
        )
        batch = rng.integers(
            0, hierarchy.num_leaves, size=45, dtype=np.int64
        )
        store = DurableBitmapStore(tmp_path / "store")
        MaterializedNodeCatalog(hierarchy, column, store)
        DeltaAppender(store, hierarchy).append(batch)

        catalog = MaterializedNodeCatalog.from_store(
            hierarchy, store
        )
        last = hierarchy.num_leaves - 1
        query = RangeQuery([(0, last)])
        report = _cold_executor(catalog).explain_analyze(query)

        delta_rows = [
            node
            for node in report.nodes
            if node.role == "delta-merge"
        ]
        assert delta_rows
        for row in delta_rows:
            parsed = parse_delta_file_name(row.file_name)
            assert parsed == (1, row.node_id)
            assert row.measured_bytes > 0
            # The cost model predicts base-generation IO only.
            assert row.predicted_bytes == 0
        assert report.delta_merge_bytes == sum(
            row.measured_bytes for row in delta_rows
        )
        # Base rows still match exactly; the expected delta extras do
        # not fail the report.
        assert report.matches_prediction
        assert report.measured_bytes == sum(
            node.measured_bytes for node in report.nodes
        )
        full = np.concatenate([column, batch])
        assert report.answer_count == scan_answer(
            full, query
        ).count()
        assert "delta-merge" in report.to_text(catalog)


class TestDeterminismAndSerialization:
    def test_identical_runs_yield_identical_event_streams(
        self, materialized_setup
    ):
        _hierarchy, _column, catalog = materialized_setup
        query = RangeQuery([(2, 9)])
        reports = [
            _cold_executor(catalog).explain_analyze(query)
            for _ in range(2)
        ]
        assert reports[0].events == reports[1].events
        assert reports[0].nodes == reports[1].nodes

    def test_events_carry_no_wallclock_data(self, materialized_setup):
        _hierarchy, _column, catalog = materialized_setup
        report = _cold_executor(catalog).explain_analyze(
            RangeQuery([(0, 3)])
        )
        for event in report.events:
            for key in event.attrs:
                assert "time" not in key and "seconds" not in key, (
                    f"event {event.kind} leaks timing attr {key!r}"
                )

    def test_to_json_round_trips(self, materialized_setup):
        _hierarchy, _column, catalog = materialized_setup
        report = _cold_executor(catalog).explain_analyze(
            RangeQuery([(0, 7)])
        )
        parsed = json.loads(report.to_json())
        assert parsed["totals"]["matches_prediction"] is True
        assert parsed["totals"]["measured_bytes"] == (
            report.measured_bytes
        )
        assert len(parsed["nodes"]) == len(report.nodes)
        assert len(parsed["events"]) == len(report.events)

    def test_to_text_renders_the_full_story(self, materialized_setup):
        _hierarchy, _column, catalog = materialized_setup
        report = _cold_executor(catalog).explain_analyze(
            RangeQuery([(0, 7)])
        )
        text = report.to_text(catalog)
        assert "EXPLAIN ANALYZE" in text
        assert "exact match" in text
        assert "answer:" in text
        assert "execute" in text  # timing line
