"""Tests for the hcs-experiments CLI."""

from __future__ import annotations

import pytest

from repro.experiments.runner import main, run_experiment


class TestMain:
    def test_no_args_lists_experiments(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert "table-cuts" in out

    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_runs_single_experiment(self, capsys):
        assert main(["table-cuts"]) == 0
        out = capsys.readouterr().out
        assert "1185922" in out
        assert "completed in" in out

    def test_fast_flag(self, capsys):
        assert main(["fig4", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "node-label distribution" in out

    def test_runs_override(self, capsys):
        assert main(["fig4", "--runs", "2"]) == 0
        assert "runs=2" in capsys.readouterr().out

    def test_unknown_name_exits(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    @pytest.mark.shard
    def test_serve_shards_flag_runs_the_shard_sweep(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--fast",
                    "--shards",
                    "2",
                    "--parallel",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "sharded" in out
        assert "completed in" in out


class TestRunExperiment:
    def test_runs_parameter_ignored_when_unsupported(self):
        # fig11 has no `runs` parameter; the override must not break it.
        result = run_experiment("table-cuts", runs=3)
        assert result.rows

    def test_fast_parameters_do_not_leak(self):
        # _FAST_OVERRIDES must not be mutated by the runs override.
        run_experiment("fig4", fast=True, runs=1)
        from repro.experiments.runner import _FAST_OVERRIDES

        assert "runs" not in _FAST_OVERRIDES["fig4"] or (
            _FAST_OVERRIDES["fig4"]["runs"] == 1
        )


class TestObservabilityFlags:
    def test_trace_prints_event_summary(self, capsys):
        assert main(["fig2", "--fast", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "# trace:" in out
        assert "span.start" in out

    def test_trace_recorder_is_restored(self):
        from repro.obs import NULL_RECORDER, get_recorder

        main(["fig4", "--fast", "--trace"])
        assert get_recorder() is NULL_RECORDER

    def test_metrics_out_writes_json(self, capsys, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        assert main(["fig2", "--fast", "--metrics-out", str(path)]) == 0
        assert "# metrics written to" in capsys.readouterr().out
        data = json.loads(path.read_text())
        assert set(data) == {"counters", "histograms"}
        assert any(
            key.startswith("planner_seconds")
            for key in data["histograms"]
        )

    def test_metrics_out_dash_prints_to_stdout(self, capsys):
        assert main(["fig4", "--fast", "--metrics-out", "-"]) == 0
        out = capsys.readouterr().out
        assert '"histograms"' in out

    def test_metrics_registry_is_restored(self, tmp_path):
        from repro.obs import NULL_METRICS, get_metrics

        main(["fig4", "--fast", "--metrics-out", str(tmp_path / "m.json")])
        assert get_metrics() is NULL_METRICS
