"""Tests for the hcs-experiments CLI."""

from __future__ import annotations

import pytest

from repro.experiments.runner import main, run_experiment


class TestMain:
    def test_no_args_lists_experiments(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert "table-cuts" in out

    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_runs_single_experiment(self, capsys):
        assert main(["table-cuts"]) == 0
        out = capsys.readouterr().out
        assert "1185922" in out
        assert "completed in" in out

    def test_fast_flag(self, capsys):
        assert main(["fig4", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "node-label distribution" in out

    def test_runs_override(self, capsys):
        assert main(["fig4", "--runs", "2"]) == 0
        assert "runs=2" in capsys.readouterr().out

    def test_unknown_name_exits(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    @pytest.mark.shard
    def test_serve_shards_flag_runs_the_shard_sweep(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--fast",
                    "--shards",
                    "2",
                    "--parallel",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "sharded" in out
        assert "completed in" in out


class TestRunExperiment:
    def test_runs_parameter_ignored_when_unsupported(self):
        # fig11 has no `runs` parameter; the override must not break it.
        result = run_experiment("table-cuts", runs=3)
        assert result.rows

    def test_fast_parameters_do_not_leak(self):
        # _FAST_OVERRIDES must not be mutated by the runs override.
        run_experiment("fig4", fast=True, runs=1)
        from repro.experiments.runner import _FAST_OVERRIDES

        assert "runs" not in _FAST_OVERRIDES["fig4"] or (
            _FAST_OVERRIDES["fig4"]["runs"] == 1
        )


class TestObservabilityFlags:
    def test_trace_prints_event_summary(self, capsys):
        assert main(["fig2", "--fast", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "# trace:" in out
        assert "span.start" in out

    def test_trace_recorder_is_restored(self):
        from repro.obs import NULL_RECORDER, get_recorder

        main(["fig4", "--fast", "--trace"])
        assert get_recorder() is NULL_RECORDER

    def test_metrics_out_writes_json(self, capsys, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        assert main(["fig2", "--fast", "--metrics-out", str(path)]) == 0
        assert "# metrics written to" in capsys.readouterr().out
        data = json.loads(path.read_text())
        assert set(data) == {"counters", "histograms"}
        assert any(
            key.startswith("planner_seconds")
            for key in data["histograms"]
        )

    def test_metrics_out_dash_prints_to_stdout(self, capsys):
        assert main(["fig4", "--fast", "--metrics-out", "-"]) == 0
        out = capsys.readouterr().out
        assert '"histograms"' in out

    def test_metrics_registry_is_restored(self, tmp_path):
        from repro.obs import NULL_METRICS, get_metrics

        main(["fig4", "--fast", "--metrics-out", str(tmp_path / "m.json")])
        assert get_metrics() is NULL_METRICS


class TestMaintenanceIngestCompact:
    """The delta-lifecycle maintenance commands: ingest and compact."""

    @pytest.fixture
    def durable_index(self, tmp_path):
        import numpy as np

        from repro.hierarchy.serialization import save_hierarchy
        from repro.hierarchy.tree import Hierarchy
        from repro.storage.catalog import MaterializedNodeCatalog
        from repro.storage.manifest import DurableBitmapStore

        hierarchy = Hierarchy.from_nested([[2, 2], [3], [2]])
        rng = np.random.default_rng(2)
        column = rng.integers(
            0, hierarchy.num_leaves, size=300, dtype=np.int64
        )
        store_dir = tmp_path / "index"
        store = DurableBitmapStore(store_dir)
        MaterializedNodeCatalog(hierarchy, column, store)
        hierarchy_path = tmp_path / "hierarchy.json"
        save_hierarchy(hierarchy, hierarchy_path)
        return store_dir, hierarchy_path

    def test_ingest_then_compact_round_trip(
        self, durable_index, capsys
    ):
        import json

        from repro.storage.manifest import DurableBitmapStore

        store_dir, hierarchy_path = durable_index
        assert main(
            [
                "ingest",
                "--store-dir", str(store_dir),
                "--hierarchy-json", str(hierarchy_path),
                "--ingest-rows", "40",
                "--ingest-seed", "9",
            ]
        ) == 0
        ingested = json.loads(capsys.readouterr().out)
        assert ingested["committed"] is True
        assert ingested["seq"] == 1
        assert ingested["num_rows"] == 40

        assert main(
            [
                "ingest",
                "--store-dir", str(store_dir),
                "--hierarchy-json", str(hierarchy_path),
                "--ingest-values", "0, 2, 5",
            ]
        ) == 0
        ingested = json.loads(capsys.readouterr().out)
        assert ingested["seq"] == 2
        assert ingested["num_rows"] == 3

        assert main(
            ["compact", "--store-dir", str(store_dir)]
        ) == 0
        compacted = json.loads(capsys.readouterr().out)
        assert compacted["did_work"] is True
        assert compacted["folded_seqs"] == [1, 2]
        assert compacted["folded_rows"] == 43

        store = DurableBitmapStore(store_dir)
        assert store.delta_manifests == ()
        assert store.manifest.num_rows == 343

        # and the folded index scrubs clean
        assert main(
            [
                "verify-index",
                "--store-dir", str(store_dir),
                "--hierarchy-json", str(hierarchy_path),
            ]
        ) == 0
        assert json.loads(capsys.readouterr().out)["clean"]

    def test_ingest_requires_hierarchy_json(
        self, durable_index, capsys
    ):
        import json

        store_dir, _hierarchy_path = durable_index
        assert main(
            [
                "ingest",
                "--store-dir", str(store_dir),
                "--ingest-rows", "5",
            ]
        ) == 2
        error = json.loads(capsys.readouterr().out)["error"]
        assert "--hierarchy-json" in error

    def test_ingest_requires_a_batch_specifier(
        self, durable_index, capsys
    ):
        import json

        store_dir, hierarchy_path = durable_index
        assert main(
            [
                "ingest",
                "--store-dir", str(store_dir),
                "--hierarchy-json", str(hierarchy_path),
            ]
        ) == 2
        error = json.loads(capsys.readouterr().out)["error"]
        assert "--ingest-values or --ingest-rows" in error

    def test_compact_on_missing_directory_fails(
        self, tmp_path, capsys
    ):
        import json

        assert main(
            ["compact", "--store-dir", str(tmp_path / "nope")]
        ) == 2
        assert "error" in json.loads(capsys.readouterr().out)
