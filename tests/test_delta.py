"""DeltaAppender / DeltaBuild: LSM-style ingest into a durable store.

Covers the write path of the delta lifecycle: append batches commit as
delta generations through the atomic manifest-swap protocol, readers
merge them on read bit-identically to a from-scratch rebuild, and the
manifest round-trips deltas losslessly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.executor import QueryExecutor, scan_answer
from repro.errors import StorageError, WorkloadError
from repro.hierarchy.tree import Hierarchy
from repro.obs import TraceCollector, collecting_metrics, recording
from repro.storage.cache import BufferPool
from repro.storage.catalog import MaterializedNodeCatalog
from repro.storage.delta import DeltaAppender
from repro.storage.filestore import BitmapFileStore
from repro.storage.manifest import (
    DurableBitmapStore,
    Manifest,
    delta_file_name,
    parse_delta_file_name,
)
from repro.workload.query import RangeQuery


@pytest.fixture
def hierarchy() -> Hierarchy:
    return Hierarchy.from_nested([[2, 2], [3, 2], [3]])


def _build(tmp_path, hierarchy, rows=500, seed=7):
    rng = np.random.default_rng(seed)
    column = rng.integers(
        0, hierarchy.num_leaves, size=rows, dtype=np.int64
    )
    store = DurableBitmapStore(tmp_path / "store")
    MaterializedNodeCatalog(hierarchy, column, store)
    return store, column


# ----------------------------------------------------------------------
# Naming
# ----------------------------------------------------------------------
def test_delta_file_name_round_trip():
    assert parse_delta_file_name(delta_file_name(3, 17)) == (3, 17)
    assert parse_delta_file_name("node_3.wah") is None
    assert parse_delta_file_name("delta_0001-node_2.bin") is None
    assert parse_delta_file_name("delta_x-node_2.wah") is None
    assert parse_delta_file_name("MANIFEST") is None


# ----------------------------------------------------------------------
# Commit path
# ----------------------------------------------------------------------
def test_append_commits_one_delta_generation(tmp_path, hierarchy):
    store, _ = _build(tmp_path, hierarchy)
    base_rows = store.manifest.num_rows
    appender = DeltaAppender(store, hierarchy)
    batch = np.array([0, 3, 3, 11], dtype=np.int64)

    result = appender.append(batch)

    assert result.committed
    assert result.seq == 1
    assert result.num_rows == batch.size
    assert result.files_written == hierarchy.num_nodes
    assert len(store.delta_manifests) == 1
    delta = store.delta_manifests[0]
    assert delta.seq == 1
    assert delta.num_rows == batch.size
    assert store.manifest.num_rows == base_rows  # base untouched
    assert store.total_num_rows == base_rows + batch.size


def test_appends_get_monotonic_seqs(tmp_path, hierarchy):
    store, _ = _build(tmp_path, hierarchy)
    appender = DeltaAppender(store, hierarchy)
    seqs = [
        appender.append(np.array([i], dtype=np.int64)).seq
        for i in range(4)
    ]
    assert seqs == [1, 2, 3, 4]
    assert store.manifest.delta_seq == 4


def test_empty_append_is_a_no_op(tmp_path, hierarchy):
    store, _ = _build(tmp_path, hierarchy)
    generation = store.generation
    result = DeltaAppender(store, hierarchy).append(
        np.array([], dtype=np.int64)
    )
    assert not result.committed
    assert result.seq == 0
    assert store.generation == generation
    assert store.delta_manifests == ()


def test_delta_entries_are_readable_and_named(tmp_path, hierarchy):
    store, _ = _build(tmp_path, hierarchy)
    DeltaAppender(store, hierarchy).append(
        np.array([5, 6], dtype=np.int64)
    )
    for node in hierarchy:
        name = delta_file_name(1, node.node_id)
        assert store.exists(name)
        payload = store.read(name)
        assert payload  # CRC-framed WAH bytes
        assert name in store.names()


def test_delta_survives_reopen_without_gc(tmp_path, hierarchy):
    """Satellite: delta physicals are referenced by the manifest, so
    reopen-time orphan GC must not reclaim them."""
    store, _ = _build(tmp_path, hierarchy)
    DeltaAppender(store, hierarchy).append(
        np.array([1, 2, 3], dtype=np.int64)
    )
    before = {name: store.read(name) for name in store.names()}

    reopened = DurableBitmapStore(tmp_path / "store")

    assert len(reopened.delta_manifests) == 1
    assert reopened.total_num_rows == store.total_num_rows
    assert {
        name: reopened.read(name) for name in reopened.names()
    } == before


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def test_appender_rejects_non_durable_store(hierarchy):
    with pytest.raises(StorageError, match="DurableBitmapStore"):
        DeltaAppender(BitmapFileStore(), hierarchy)


def test_appender_rejects_empty_store(tmp_path, hierarchy):
    store = DurableBitmapStore(tmp_path)
    with pytest.raises(StorageError, match="empty store"):
        DeltaAppender(store, hierarchy)


def test_appender_rejects_wrong_hierarchy(tmp_path, hierarchy):
    store, _ = _build(tmp_path, hierarchy)
    other = Hierarchy.from_nested([[3, 3], [2]])
    with pytest.raises(StorageError):
        DeltaAppender(store, other)


@pytest.mark.parametrize(
    "values,match",
    [
        (np.zeros((2, 2), dtype=np.int64), "1-D"),
        (np.array([0.5, 1.5]), "integral"),
        (np.array([-1], dtype=np.int64), "lie in"),
        (np.array([10**6], dtype=np.int64), "lie in"),
    ],
)
def test_append_rejects_bad_batches(tmp_path, hierarchy, values, match):
    store, _ = _build(tmp_path, hierarchy)
    appender = DeltaAppender(store, hierarchy)
    with pytest.raises(WorkloadError, match=match):
        appender.append(values)
    assert store.delta_manifests == ()


def test_stale_delta_build_commit_is_rejected(tmp_path, hierarchy):
    """Two builds racing the same seq: the loser's commit raises
    instead of silently aliasing delta file names."""
    store, _ = _build(tmp_path, hierarchy)
    first = store.begin_delta(2)
    second = store.begin_delta(3)
    assert first.seq == second.seq  # both claimed seq 1
    from repro.bitmap.serialization import serialize_wah
    from repro.bitmap.wah import WahBitmap

    payload2 = serialize_wah(WahBitmap.from_positions([0], 2))
    payload3 = serialize_wah(WahBitmap.from_positions([1], 3))
    for node in hierarchy:
        first.add(node.node_id, payload2)
        second.add(node.node_id, payload3)
    first.commit()
    with pytest.raises(StorageError, match="serialize appends"):
        second.commit()
    second.abort()
    assert [d.seq for d in store.delta_manifests] == [1]


# ----------------------------------------------------------------------
# Manifest round-trip
# ----------------------------------------------------------------------
def test_manifest_round_trips_deltas(tmp_path, hierarchy):
    store, _ = _build(tmp_path, hierarchy)
    appender = DeltaAppender(store, hierarchy)
    appender.append(np.array([0, 1], dtype=np.int64))
    appender.append(np.array([2], dtype=np.int64))
    manifest = store.manifest
    restored = Manifest.from_bytes(manifest.to_bytes())
    assert restored.deltas == manifest.deltas
    assert restored.delta_seq == manifest.delta_seq
    assert restored.total_rows == manifest.total_rows


def test_manifest_without_deltas_serializes_compactly():
    """Pre-delta byte compatibility: trivial delta fields are omitted."""
    manifest = Manifest(generation=1, entries={}, num_rows=0)
    assert b"delta" not in manifest.to_bytes()
    restored = Manifest.from_bytes(manifest.to_bytes())
    assert restored.deltas == ()
    assert restored.delta_seq == 0


# ----------------------------------------------------------------------
# Merge-on-read
# ----------------------------------------------------------------------
def _queries(hierarchy):
    last = hierarchy.num_leaves - 1
    return [
        RangeQuery([(0, 2)]),
        RangeQuery([(1, last - 1)]),
        RangeQuery([(0, last)]),
        RangeQuery([(0, 1), (4, last)]),
    ]


def test_merge_on_read_matches_full_rebuild(tmp_path, hierarchy):
    store, column = _build(tmp_path, hierarchy)
    rng = np.random.default_rng(11)
    batches = [
        rng.integers(0, hierarchy.num_leaves, size=size, dtype=np.int64)
        for size in (17, 1, 40)
    ]
    appender = DeltaAppender(store, hierarchy)
    for batch in batches:
        appender.append(batch)
    full = np.concatenate([column, *batches])

    oracle_store = DurableBitmapStore(tmp_path / "oracle")
    oracle_catalog = MaterializedNodeCatalog(
        hierarchy, full, oracle_store
    )
    oracle = QueryExecutor(oracle_catalog, BufferPool(oracle_store))

    catalog = MaterializedNodeCatalog.from_store(hierarchy, store)
    executor = QueryExecutor(catalog, BufferPool(store))
    internal_cut = hierarchy.node(hierarchy.root_id).children
    for query in _queries(hierarchy):
        expected = scan_answer(full, query)
        for cut in ((), internal_cut):
            answer = executor.execute_query(
                query, cut_node_ids=cut
            ).answer
            # Word-identical canonical WAH, not just same positions.
            assert answer == oracle.execute_query(
                query, cut_node_ids=cut
            ).answer
            assert (
                answer.to_positions().tolist()
                == expected.to_positions().tolist()
            )


def test_merge_on_read_emits_delta_merge_trace(tmp_path, hierarchy):
    store, _ = _build(tmp_path, hierarchy)
    DeltaAppender(store, hierarchy).append(
        np.array([0, 1, 2], dtype=np.int64)
    )
    catalog = MaterializedNodeCatalog.from_store(hierarchy, store)
    executor = QueryExecutor(catalog, BufferPool(store))
    collector = TraceCollector()
    with recording(collector), collecting_metrics() as metrics:
        executor.execute_query(RangeQuery([(0, 2)]))
    assert collector.counts_by_kind().get("delta.merge", 0) >= 1
    assert metrics.counter("delta_merges_total") >= 1


def test_append_emits_events_and_metrics(tmp_path, hierarchy):
    store, _ = _build(tmp_path, hierarchy)
    collector = TraceCollector()
    with recording(collector), collecting_metrics() as metrics:
        DeltaAppender(store, hierarchy).append(
            np.array([4, 4, 9], dtype=np.int64)
        )
    assert collector.counts_by_kind().get("delta.append") == 1
    assert metrics.counter("delta_rows_appended_total") == 3
