"""Tests for the adaptive cut maintainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveCutMaintainer
from repro.core.multi import select_cut_multi
from repro.core.workload_cost import WorkloadNodeStats, case2_cut_cost
from repro.workload.generator import range_query_of_fraction
from repro.workload.query import RangeQuery, Workload


def _stream(num_leaves, fraction, count, rng, region=None):
    """Queries of one range size, optionally confined to a region."""
    queries = []
    for _ in range(count):
        if region is None:
            queries.append(
                range_query_of_fraction(num_leaves, fraction, rng)
            )
        else:
            lo, hi = region
            length = max(1, round(fraction * (hi - lo + 1)))
            start = int(rng.integers(lo, hi - length + 2))
            queries.append(
                RangeQuery([(start, start + length - 1)])
            )
    return queries


class TestBasics:
    def test_validation(self, tpch_catalog100):
        with pytest.raises(ValueError):
            AdaptiveCutMaintainer(tpch_catalog100, window=0)
        with pytest.raises(ValueError):
            AdaptiveCutMaintainer(tpch_catalog100, check_every=0)
        with pytest.raises(ValueError):
            AdaptiveCutMaintainer(tpch_catalog100, threshold=-1)

    def test_checks_run_on_schedule(self, tpch_catalog100, rng):
        maintainer = AdaptiveCutMaintainer(
            tpch_catalog100, check_every=5
        )
        decisions = [
            maintainer.observe(
                range_query_of_fraction(100, 0.5, rng)
            )
            for _ in range(20)
        ]
        ran = [d for d in decisions if d is not None]
        assert len(ran) == 4
        assert maintainer.queries_seen == 20
        assert len(maintainer.history) == 4

    def test_first_check_adopts_a_cut(self, tpch_catalog100, rng):
        maintainer = AdaptiveCutMaintainer(
            tpch_catalog100, check_every=5
        )
        for _ in range(5):
            maintainer.observe(
                range_query_of_fraction(100, 0.5, rng)
            )
        assert maintainer.current_cut
        assert maintainer.reselections == 1


class TestStationaryStream:
    def test_few_reselections_when_stable(
        self, tpch_catalog100
    ):
        rng = np.random.default_rng(0)
        maintainer = AdaptiveCutMaintainer(
            tpch_catalog100,
            window=30,
            check_every=10,
            threshold=0.05,
        )
        for query in _stream(100, 0.5, 100, rng):
            maintainer.observe(query)
        # After warm-up the cut should mostly stay put.
        assert maintainer.reselections <= 4


class TestDriftingStream:
    def test_drift_triggers_reselection_and_recovers_cost(
        self, tpch_catalog100
    ):
        rng = np.random.default_rng(1)
        maintainer = AdaptiveCutMaintainer(
            tpch_catalog100,
            window=20,
            check_every=10,
            threshold=0.05,
        )
        # Phase 1: queries confined to the left fifth of the domain.
        for query in _stream(100, 0.6, 40, rng, region=(0, 19)):
            maintainer.observe(query)
        # Phase 2: the workload jumps to the right fifth.
        phase2 = _stream(100, 0.6, 40, rng, region=(80, 99))
        for query in phase2:
            maintainer.observe(query)
        # Whether or not a swap was needed (a complete cut selected
        # for phase 1 may happen to serve phase 2 too), the maintained
        # cut must now be near-optimal for the new regime.
        window = Workload(phase2[-20:])
        stats = WorkloadNodeStats(tpch_catalog100, window)
        maintained = case2_cut_cost(
            stats, maintainer.current_cut
        )
        optimal = select_cut_multi(
            tpch_catalog100, window, stats
        ).cost
        assert maintained <= optimal * 1.10 + 1e-9

    def test_budgeted_mode_respects_budget(self, tpch_catalog100):
        rng = np.random.default_rng(2)
        maintainer = AdaptiveCutMaintainer(
            tpch_catalog100,
            window=20,
            check_every=10,
            budget_mb=60.0,
        )
        for query in _stream(100, 0.5, 40, rng):
            maintainer.observe(query)
        used = sum(
            tpch_catalog100.size_mb(member)
            for member in maintainer.current_cut
        )
        assert used <= 60.0 + 1e-9

    def test_repr(self, tpch_catalog100):
        maintainer = AdaptiveCutMaintainer(tpch_catalog100)
        assert "seen=0" in repr(maintainer)
