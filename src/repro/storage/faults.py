"""Deterministic fault injection for the simulated secondary storage.

The paper's premise is that cut selection minimizes *disk* IO (§2.2.1) —
and disks misbehave.  This module lets tests and experiments make the
simulated storage misbehave on purpose, reproducibly:

* **transient errors** — :class:`~repro.errors.TransientStorageError`
  raised instead of returning data (cleared by retrying);
* **torn reads** — the payload comes back truncated at a random offset;
* **bit flips** — one bit of the payload is inverted in flight;
* **slow reads** — the read completes but only after a delay;
* **sticky corruption** — specific files always come back with the same
  deterministic bit flipped, modelling at-rest corruption that no retry
  can clear (the executor recovers by unioning the node's descendants).

The policy also covers the **write path**, which is how the durable
index lifecycle (:mod:`repro.storage.manifest`) proves its commit
protocol crash-safe:

* **crash points** — the store and the manifest commit protocol call
  :meth:`FaultPolicy.crash_point` at every named protocol step (before
  any bytes land, between write and rename, before the manifest
  replace, during GC, ...); a ``crash_plan`` maps a label to the
  occurrence at which :class:`~repro.errors.SimulatedCrashError` is
  raised, leaving the filesystem exactly as a real crash would;
* **torn writes / crash-after-N-bytes** —
  :meth:`FaultPolicy.torn_write_prefix` tells the store to persist only
  a prefix of the payload before crashing, modelling a write cut short
  by power loss mid-flush.

Every random choice comes from one seeded ``random.Random``, so a fixed
seed plus a fixed read sequence reproduces the exact same fault
sequence.  ``max_consecutive_per_name`` bounds how many times in a row
one file can fault, which makes retry loops provably terminating:
transient and in-flight faults always clear within that many attempts.

:class:`RetryPolicy` is the matching consumer-side knob: how many
attempts the buffer pool / executor make and how they back off between
them.  Backoff sleeps go through an injectable ``sleep`` so tests run
at full speed.
"""

from __future__ import annotations

import random
import threading
import time
import zlib
from collections import Counter
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field
from enum import Enum

from ..errors import SimulatedCrashError, TransientStorageError
from ..obs import get_metrics, record

__all__ = [
    "FaultKind",
    "FaultPolicy",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "set_default_fault_policy",
    "get_default_fault_policy",
]


class FaultKind(Enum):
    """The kinds of read misbehavior the policy can inject."""

    TRANSIENT = "transient"
    TORN = "torn"
    BITFLIP = "bitflip"
    SLOW = "slow"
    STICKY = "sticky"
    CRASH = "crash"
    TORN_WRITE = "torn-write"


class FaultPolicy:
    """Seeded, injectable read-fault generator for a file store.

    Args:
        seed: seeds the fault RNG; same seed + same read sequence =>
            same faults.
        transient_rate: probability a read raises
            :class:`TransientStorageError`.
        torn_rate: probability a read returns a truncated payload.
        bitflip_rate: probability a read returns the payload with one
            bit inverted.
        slow_rate: probability a read sleeps ``slow_delay_s`` first.
        slow_delay_s: delay injected for slow reads.
        max_consecutive_per_name: after this many consecutive faulted
            reads of one file, the next read of it is forced clean —
            transient/in-flight faults always clear within this many
            retries.  Sticky corruption ignores the cap.
        sticky_corrupt_names: files whose payload always comes back
            with one deterministic bit flipped (position derived from
            the name and seed, so every read is identically corrupt).
        sleep: the sleep function slow reads use.
        crash_plan: write-path crash schedule — maps a crash-point
            label (e.g. ``"write.rename"``, ``"commit.manifest.rename"``)
            to the 1-based occurrence at which
            :class:`~repro.errors.SimulatedCrashError` is raised.  The
            label ``"write.torn"`` instead tears the write: only a
            prefix of the payload is persisted before the crash.
        torn_write_fraction: fraction of the payload persisted when a
            planned torn write fires (default half, rounded down).
    """

    def __init__(
        self,
        seed: int = 0,
        transient_rate: float = 0.0,
        torn_rate: float = 0.0,
        bitflip_rate: float = 0.0,
        slow_rate: float = 0.0,
        slow_delay_s: float = 0.0,
        max_consecutive_per_name: int = 3,
        sticky_corrupt_names: Iterable[str] = (),
        sleep: Callable[[float], None] = time.sleep,
        crash_plan: dict[str, int] | None = None,
        torn_write_fraction: float = 0.5,
    ):
        rates = {
            FaultKind.TRANSIENT: transient_rate,
            FaultKind.TORN: torn_rate,
            FaultKind.BITFLIP: bitflip_rate,
            FaultKind.SLOW: slow_rate,
        }
        for kind, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"{kind.value}_rate must be in [0, 1], got {rate}"
                )
        if sum(rates.values()) > 1.0:
            raise ValueError(
                f"fault rates must sum to <= 1, got {sum(rates.values())}"
            )
        if max_consecutive_per_name < 1:
            raise ValueError(
                "max_consecutive_per_name must be >= 1, got "
                f"{max_consecutive_per_name}"
            )
        if crash_plan is not None:
            for label, occurrence in crash_plan.items():
                if occurrence < 1:
                    raise ValueError(
                        f"crash_plan occurrences are 1-based, got "
                        f"{label!r}: {occurrence}"
                    )
        if not 0.0 <= torn_write_fraction <= 1.0:
            raise ValueError(
                f"torn_write_fraction must be in [0, 1], got "
                f"{torn_write_fraction}"
            )
        self._seed = seed
        self._rng = random.Random(seed)
        self._rates = rates
        self._crash_plan = dict(crash_plan or {})
        self._crash_counts: Counter[str] = Counter()
        self._torn_write_fraction = torn_write_fraction
        self._slow_delay_s = slow_delay_s
        self._max_consecutive = max_consecutive_per_name
        self.sticky_corrupt_names = set(sticky_corrupt_names)
        self._sleep = sleep
        self._consecutive: Counter[str] = Counter()
        # Serializes the RNG draws and fault tallies so concurrent
        # readers keep the counters exact; the slow-read sleep happens
        # *outside* this lock so injected latency still overlaps across
        # threads (the whole point of the concurrent serving layer).
        self._lock = threading.Lock()
        #: Faults injected so far, by kind (observability + tests).
        self.injected: Counter[FaultKind] = Counter()

    @classmethod
    def uniform(cls, rate: float, seed: int = 0, **kwargs) -> "FaultPolicy":
        """A policy spreading ``rate`` evenly over the three data-path
        faults (transient / torn / bit flip); slow reads disabled."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        return cls(
            seed=seed,
            transient_rate=rate / 3,
            torn_rate=rate / 3,
            bitflip_rate=rate / 3,
            **kwargs,
        )

    @property
    def seed(self) -> int:
        """The seed the fault RNG was created with."""
        return self._seed

    @property
    def total_injected(self) -> int:
        """Total number of faults injected so far."""
        return sum(self.injected.values())

    def _sticky_flip_position(self, name: str, nbits: int) -> int:
        # Derived from (seed, name) only: every read of a sticky file
        # is corrupted identically, so retries can never mask it.
        return zlib.crc32(f"{self._seed}:{name}".encode()) % nbits

    def _draw_kind(self) -> FaultKind | None:
        roll = self._rng.random()
        cumulative = 0.0
        for kind, rate in self._rates.items():
            cumulative += rate
            if roll < cumulative:
                return kind
        return None

    def _draw_fault(
        self, name: str, payload: bytes
    ) -> tuple[FaultKind | None, int]:
        """Draw the fault (if any) for one read, under the lock.

        Returns ``(kind, position)``: every RNG draw and counter update
        happens here atomically, while the *enactment* (sleeping,
        raising, corrupting bytes) happens lock-free in
        :meth:`filter_read`.  ``position`` is the torn-read cut offset
        or the bit index to flip (0 when unused).
        """
        if name in self.sticky_corrupt_names and payload:
            self._record_injection(name, FaultKind.STICKY)
            return FaultKind.STICKY, self._sticky_flip_position(
                name, len(payload) * 8
            )
        if self._consecutive[name] >= self._max_consecutive:
            self._consecutive[name] = 0
            return None, 0
        kind = self._draw_kind()
        if kind is None:
            self._consecutive[name] = 0
            return None, 0
        if kind is FaultKind.SLOW:
            # A slow read still succeeds; it does not count toward the
            # consecutive-failure cap.
            self._record_injection(name, kind)
            self._consecutive[name] = 0
            return kind, 0
        if kind is not FaultKind.TRANSIENT and not payload:
            # Nothing to corrupt in an empty payload.
            self._consecutive[name] = 0
            return None, 0
        self._consecutive[name] += 1
        self._record_injection(name, kind)
        if kind is FaultKind.TORN:
            return kind, self._rng.randrange(len(payload))
        if kind is FaultKind.BITFLIP:
            return kind, self._rng.randrange(len(payload) * 8)
        return kind, 0

    def filter_read(self, name: str, payload: bytes) -> bytes:
        """Pass one read through the policy.

        Returns the (possibly corrupted) payload, raises
        :class:`TransientStorageError`, or sleeps — according to the
        seeded draw.  Must be called once per physical read attempt.
        Thread-safe: draws are serialized (so the tallies stay exact)
        but injected slow-read latency overlaps across threads.
        """
        with self._lock:
            kind, position = self._draw_fault(name, payload)
        if kind is None:
            return payload
        if kind is FaultKind.STICKY:
            return self._flip_bit(payload, position)
        if kind is FaultKind.SLOW:
            if self._slow_delay_s > 0:
                self._sleep(self._slow_delay_s)
            return payload
        if kind is FaultKind.TRANSIENT:
            raise TransientStorageError(
                name, 0, "injected transient IO error"
            )
        if kind is FaultKind.TORN:
            return payload[:position]
        return self._flip_bit(payload, position)

    # ------------------------------------------------------------------
    # Write path: planned crashes and torn writes.
    # ------------------------------------------------------------------
    @property
    def crash_plan(self) -> dict[str, int]:
        """The planned crash schedule (label -> 1-based occurrence)."""
        return dict(self._crash_plan)

    def crash_point(self, label: str) -> None:
        """Maybe crash at a named write-path protocol step.

        The store and manifest commit protocol call this at every step
        whose interruption must be survivable.  When the ``crash_plan``
        maps ``label`` to an occurrence count, the matching call raises
        :class:`~repro.errors.SimulatedCrashError`; all other calls are
        free no-ops.  Occurrences are counted per label across the
        policy's lifetime, so a crash matrix can target "the third
        file rename" deterministically.
        """
        if not self._crash_plan:
            return
        with self._lock:
            target = self._crash_plan.get(label)
            if target is None:
                return
            self._crash_counts[label] += 1
            if self._crash_counts[label] != target:
                return
            self._record_injection(label, FaultKind.CRASH)
        raise SimulatedCrashError(label)

    def torn_write_prefix(self, label: str, nbytes: int) -> int | None:
        """How many bytes of a write should persist before crashing.

        Returns ``None`` for a clean write.  When the ``crash_plan``
        maps ``label`` (conventionally ``"write.torn"`` for bitmap
        files, ``"commit.manifest.torn"`` for the manifest) to the
        matching occurrence — counted per label, like
        :meth:`crash_point` — returns
        ``floor(nbytes * torn_write_fraction)``: the store persists
        exactly that prefix and then raises
        :class:`~repro.errors.SimulatedCrashError`, modelling a write
        cut short after N bytes by power loss.
        """
        if not self._crash_plan:
            return None
        with self._lock:
            target = self._crash_plan.get(label)
            if target is None:
                return None
            self._crash_counts[label] += 1
            if self._crash_counts[label] != target:
                return None
            self._record_injection(label, FaultKind.TORN_WRITE)
            return int(nbytes * self._torn_write_fraction)

    def _record_injection(self, name: str, kind: FaultKind) -> None:
        """Tally an injected fault and surface it on the event stream."""
        self.injected[kind] += 1
        record("fault.injected", name, fault=kind.value)
        get_metrics().inc("faults_injected_total", kind=kind.value)

    @staticmethod
    def _flip_bit(payload: bytes, position: int) -> bytes:
        corrupted = bytearray(payload)
        corrupted[position // 8] ^= 1 << (position % 8)
        return bytes(corrupted)

    def __repr__(self) -> str:
        rates = ", ".join(
            f"{kind.value}={rate}"
            for kind, rate in self._rates.items()
            if rate
        )
        return (
            f"FaultPolicy(seed={self._seed}, {rates or 'no rates'}, "
            f"sticky={len(self.sticky_corrupt_names)}, "
            f"injected={self.total_injected})"
        )


@dataclass(frozen=True)
class RetryPolicy:
    """How many read attempts to make and how to back off between them.

    ``backoff_s`` is the sleep before the first retry; each further
    retry multiplies it by ``backoff_multiplier``.  The default backoff
    of zero keeps tests instant while still exercising the retry path.
    """

    max_attempts: int = 4
    backoff_s: float = 0.0
    backoff_multiplier: float = 2.0
    sleep: Callable[[float], None] = field(
        default=time.sleep, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_s < 0:
            raise ValueError(
                f"backoff_s must be >= 0, got {self.backoff_s}"
            )

    def attempts(self) -> Iterator[int]:
        """Yield attempt indices, sleeping the backoff between them."""
        delay = self.backoff_s
        for attempt in range(self.max_attempts):
            if attempt > 0 and delay > 0:
                self.sleep(delay)
                delay *= self.backoff_multiplier
            yield attempt


#: The pool-level default: a few fast retries, no backoff.  Costs
#: nothing on a healthy store and absorbs injected transients.
DEFAULT_RETRY_POLICY = RetryPolicy(max_attempts=4)

_default_fault_policy: FaultPolicy | None = None


def set_default_fault_policy(policy: FaultPolicy | None) -> None:
    """Install the policy newly created file stores adopt by default.

    This is how ``hcs-experiments --fault-rate`` injects faults into
    experiments without threading a policy through every constructor.
    """
    global _default_fault_policy
    _default_fault_policy = policy


def get_default_fault_policy() -> FaultPolicy | None:
    """The policy newly created file stores adopt (``None`` = healthy)."""
    return _default_fault_policy
