"""Durable index lifecycle: manifested, atomically committed stores.

A directory of bitmap files is only an *index* if something vouches for
which files belong to it and what their bytes should be.  This module
adds that something: a checksummed ``MANIFEST`` at the root of the
store directory listing every logical bitmap file with its physical
(generation-prefixed) file name, size, CRC32, and codec, plus a
fingerprint of the hierarchy the index was built for.

The lifecycle guarantees:

* **Atomic builds** — :meth:`DurableBitmapStore.begin_build` stages
  every bitmap of the next generation under ``g<generation>-`` physical
  names that nothing references yet, then commits by atomically
  replacing the ``MANIFEST`` (tmp + fsync + rename + directory fsync).
  A crash at *any* byte of the build or commit leaves the directory
  describing exactly the old generation or exactly the new one — never
  a mixture — because readers resolve logical names only through the
  manifest.
* **Startup recovery** — opening a directory validates the manifest
  (self-checksum, format version, referenced files present with the
  recorded sizes), garbage-collects orphaned staging files left by
  crashed builds, and refuses to serve unmanifested state with a typed
  :class:`~repro.errors.ManifestError`.
* **Scrub and repair** — :mod:`repro.storage.scrub` walks the manifest,
  verifies every file's CRC against it, and heals internal-node rot
  from the hierarchy's natural redundancy (PAPER §2.1: an internal
  bitmap is exactly the OR of its children's).

Crash-safety is not assumed; it is *tested*: every protocol step calls
:meth:`~repro.storage.faults.FaultPolicy.crash_point`, and the crash
matrix in ``tests/chaos/test_crash_matrix.py`` injects a simulated
crash at each one, reopens, and asserts bit-identical old-or-new state.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import zlib
from collections.abc import Iterator
from dataclasses import dataclass, field
from types import TracebackType

from ..errors import (
    BitmapDecodeError,
    FileMissingError,
    ManifestError,
    SimulatedCrashError,
    StorageError,
)
from ..obs import get_metrics, record
from .faults import FaultPolicy
from .filestore import BitmapFileStore

__all__ = [
    "MANIFEST_NAME",
    "MANIFEST_FORMAT_VERSION",
    "QUARANTINE_DIR_NAME",
    "ManifestEntry",
    "Manifest",
    "DeltaManifest",
    "IndexBuild",
    "DeltaBuild",
    "DurableBitmapStore",
    "hierarchy_fingerprint",
    "physical_file_name",
    "delta_file_name",
    "parse_delta_file_name",
]

#: File name of the manifest at the root of a store directory.
MANIFEST_NAME = "MANIFEST"

#: On-disk manifest format version; bumped on incompatible changes.
MANIFEST_FORMAT_VERSION = 1

#: Directory (inside the store) holding quarantined corrupt files.
QUARANTINE_DIR_NAME = ".quarantine"

_CRC_PREFIX = b"crc32:"


def physical_file_name(generation: int, name: str) -> str:
    """Physical on-disk file name for a logical name in a generation.

    Generations never share physical names, so a staged build can
    coexist with the live generation and commit by manifest swap alone.
    """
    return f"g{generation:08d}-{name}"


def delta_file_name(seq: int, node_id: int) -> str:
    """Logical file name of one node's bitmap in delta generation
    ``seq``.

    Delta names are disjoint from base names
    (:func:`~repro.storage.catalog.node_file_name`), so base and delta
    payloads for the same node coexist in one manifest, one buffer
    pool, and one IO ledger without aliasing.
    """
    return f"delta_{seq:06d}-node_{node_id}.wah"


def parse_delta_file_name(name: str) -> tuple[int, int] | None:
    """Inverse of :func:`delta_file_name`.

    Returns ``(seq, node_id)``, or ``None`` when the name is not a
    delta file name (e.g. a base ``node_<id>.wah``).
    """
    if not (name.startswith("delta_") and name.endswith(".wah")):
        return None
    stem = name[len("delta_"):-len(".wah")]
    seq_part, sep, node_part = stem.partition("-node_")
    if not sep or not seq_part.isdigit() or not node_part.isdigit():
        return None
    return int(seq_part), int(node_part)


def hierarchy_fingerprint(hierarchy) -> str:
    """Stable SHA-256 fingerprint of a hierarchy's structure.

    Computed over the canonical JSON of
    :func:`repro.hierarchy.serialization.hierarchy_to_dict`, so two
    structurally identical hierarchies fingerprint identically across
    processes and platforms.  Stored in the manifest and checked on
    open, catching the "index built for a different hierarchy" class
    of operator error before any query runs.
    """
    from ..hierarchy.serialization import hierarchy_to_dict

    canonical = json.dumps(
        hierarchy_to_dict(hierarchy),
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _payload_codec_name(payload: bytes) -> str:
    """Codec label for a manifest entry (``"raw"`` when unframed)."""
    from ..bitmap.serialization import codec_name, payload_codec

    try:
        return codec_name(payload_codec(payload))
    except BitmapDecodeError:
        return "raw"


@dataclass(frozen=True, slots=True)
class ManifestEntry:
    """One logical bitmap file as recorded by the manifest.

    Attributes:
        name: logical file name queries use (``node_<id>.wah``).
        physical: generation-prefixed on-disk file name.
        size: exact payload size in bytes.
        crc32: CRC32 of the full payload (detects at-rest rot).
        codec: serialization codec label (``wah``/``plwah``/
            ``roaring``/``plain``/``raw``).
    """

    name: str
    physical: str
    size: int
    crc32: int
    codec: str

    @classmethod
    def for_payload(
        cls, name: str, physical: str, payload: bytes
    ) -> "ManifestEntry":
        """Build an entry describing ``payload`` exactly."""
        return cls(
            name=name,
            physical=physical,
            size=len(payload),
            crc32=zlib.crc32(payload),
            codec=_payload_codec_name(payload),
        )

    def matches(self, payload: bytes) -> bool:
        """Whether a payload is byte-exactly what was committed."""
        return (
            len(payload) == self.size
            and zlib.crc32(payload) == self.crc32
        )

    def to_dict(self) -> dict:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        return {
            "physical": self.physical,
            "size": self.size,
            "crc32": self.crc32,
            "codec": self.codec,
        }

    @classmethod
    def from_dict(cls, name: str, payload: dict) -> "ManifestEntry":
        """Parse an entry; raises :class:`ManifestError` if malformed."""
        try:
            physical = payload["physical"]
            size = payload["size"]
            crc32 = payload["crc32"]
            codec = payload["codec"]
        except (KeyError, TypeError) as err:
            raise ManifestError(
                f"manifest entry for {name!r} is malformed: {err}"
            ) from None
        if (
            not isinstance(physical, str)
            or not isinstance(size, int)
            or not isinstance(crc32, int)
            or not isinstance(codec, str)
            or size < 0
        ):
            raise ManifestError(
                f"manifest entry for {name!r} has invalid field types"
            )
        return cls(
            name=name,
            physical=physical,
            size=size,
            crc32=crc32,
            codec=codec,
        )


@dataclass(frozen=True)
class DeltaManifest:
    """One committed delta generation: a batch of appended rows.

    A delta generation records ``num_rows`` appended rows as one
    per-node tail bitmap each (logical names from
    :func:`delta_file_name`).  Deltas are immutable once committed;
    they are retired only by compaction, which folds them into a new
    base generation and drops them from the manifest in the same
    atomic commit.  ``seq`` numbers are assigned monotonically by the
    store and never reused, so a cached delta payload can never alias
    a later generation's.
    """

    seq: int
    num_rows: int
    entries: dict[str, ManifestEntry] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        return {
            "seq": self.seq,
            "num_rows": self.num_rows,
            "entries": {
                name: entry.to_dict()
                for name, entry in sorted(self.entries.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DeltaManifest":
        """Parse a delta generation; raises
        :class:`~repro.errors.ManifestError` if malformed."""
        if not isinstance(payload, dict):
            raise ManifestError(
                "manifest delta generation must be an object"
            )
        seq = payload.get("seq")
        num_rows = payload.get("num_rows")
        raw_entries = payload.get("entries")
        if (
            not isinstance(seq, int)
            or seq <= 0
            or not isinstance(num_rows, int)
            or num_rows <= 0
            or not isinstance(raw_entries, dict)
        ):
            raise ManifestError(
                f"manifest delta generation is malformed: "
                f"seq={seq!r}, num_rows={num_rows!r}"
            )
        return cls(
            seq=seq,
            num_rows=num_rows,
            entries={
                name: ManifestEntry.from_dict(name, value)
                for name, value in raw_entries.items()
            },
        )


@dataclass(frozen=True)
class Manifest:
    """A committed index generation: the file list plus provenance.

    Immutable; commits replace the whole manifest.  The serialized form
    is canonical JSON followed by its own CRC32 line, so a torn or
    bit-flipped manifest is detected before a single entry is trusted.

    ``entries`` lists the base generation; ``deltas`` lists the live
    delta generations (appended row batches) in seq order.  A manifest
    without deltas serializes byte-identically to the pre-delta format
    (the ``deltas`` / ``delta_seq`` keys are omitted when trivial), so
    existing stores stay readable and re-writable in place.
    """

    generation: int
    entries: dict[str, ManifestEntry] = field(default_factory=dict)
    hierarchy_fingerprint: str = ""
    num_rows: int = 0
    format_version: int = MANIFEST_FORMAT_VERSION
    deltas: tuple[DeltaManifest, ...] = ()
    delta_seq: int = 0

    def entry(self, name: str) -> ManifestEntry:
        """The entry for a logical name — base or delta (raises
        :class:`~repro.errors.FileMissingError` when absent)."""
        found = self.entries.get(name)
        if found is not None:
            return found
        for delta in self.deltas:
            found = delta.entries.get(name)
            if found is not None:
                return found
        raise FileMissingError(name)

    def has(self, name: str) -> bool:
        """Whether any generation (base or delta) lists this name."""
        return name in self.entries or any(
            name in delta.entries for delta in self.deltas
        )

    def all_entries(self) -> dict[str, ManifestEntry]:
        """Every live entry, base and delta, in one mapping.

        Base and delta name spaces are disjoint by construction, so
        the merge cannot shadow anything.
        """
        merged = dict(self.entries)
        for delta in self.deltas:
            merged.update(delta.entries)
        return merged

    def physical_names(self) -> set[str]:
        """The physical file names this generation references — base
        *and* delta entries, so GC and orphan sweeps never reap a
        live delta file."""
        referenced = {
            entry.physical for entry in self.entries.values()
        }
        for delta in self.deltas:
            referenced.update(
                entry.physical for entry in delta.entries.values()
            )
        return referenced

    @property
    def total_rows(self) -> int:
        """Base rows plus every live delta generation's rows — the
        row count merge-on-read answers describe."""
        return self.num_rows + sum(
            delta.num_rows for delta in self.deltas
        )

    def without(self, name: str) -> "Manifest":
        """A next-generation manifest with one entry (base or delta)
        removed and everything else carried forward."""
        return Manifest(
            generation=self.generation + 1,
            entries={
                other: value
                for other, value in self.entries.items()
                if other != name
            },
            hierarchy_fingerprint=self.hierarchy_fingerprint,
            num_rows=self.num_rows,
            deltas=tuple(
                DeltaManifest(
                    seq=delta.seq,
                    num_rows=delta.num_rows,
                    entries={
                        other: value
                        for other, value in delta.entries.items()
                        if other != name
                    },
                )
                if name in delta.entries
                else delta
                for delta in self.deltas
            ),
            delta_seq=self.delta_seq,
        )

    def to_bytes(self) -> bytes:
        """Serialize to the self-checksummed on-disk representation."""
        doc = {
            "format_version": self.format_version,
            "generation": self.generation,
            "hierarchy_fingerprint": self.hierarchy_fingerprint,
            "num_rows": self.num_rows,
            "entries": {
                name: entry.to_dict()
                for name, entry in sorted(self.entries.items())
            },
        }
        if self.deltas:
            doc["deltas"] = [
                delta.to_dict() for delta in self.deltas
            ]
        if self.delta_seq:
            doc["delta_seq"] = self.delta_seq
        body = json.dumps(
            doc, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        crc = zlib.crc32(body)
        return body + b"\n" + _CRC_PREFIX + f"{crc:08x}".encode() + b"\n"

    @classmethod
    def from_bytes(cls, data: bytes) -> "Manifest":
        """Parse and validate a serialized manifest.

        Raises :class:`~repro.errors.ManifestError` on a bad
        self-checksum, unsupported format version, or malformed
        structure — a manifest is trusted in full or not at all.
        """
        try:
            body, crc_line, trailer = data.rsplit(b"\n", 2)
        except ValueError:
            raise ManifestError(
                "manifest is truncated (missing checksum line)"
            ) from None
        if trailer != b"" or not crc_line.startswith(_CRC_PREFIX):
            raise ManifestError("manifest checksum line is malformed")
        try:
            stored_crc = int(crc_line[len(_CRC_PREFIX):], 16)
        except ValueError:
            raise ManifestError(
                "manifest checksum line is malformed"
            ) from None
        actual_crc = zlib.crc32(body)
        if stored_crc != actual_crc:
            raise ManifestError(
                f"manifest failed its self-checksum: stored "
                f"0x{stored_crc:08x}, computed 0x{actual_crc:08x}"
            )
        try:
            doc = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as err:
            raise ManifestError(
                f"manifest body is not valid JSON: {err}"
            ) from None
        if not isinstance(doc, dict):
            raise ManifestError("manifest body must be a JSON object")
        version = doc.get("format_version")
        if version != MANIFEST_FORMAT_VERSION:
            raise ManifestError(
                f"unsupported manifest format version {version!r}, "
                f"expected {MANIFEST_FORMAT_VERSION}"
            )
        generation = doc.get("generation")
        if not isinstance(generation, int) or generation < 0:
            raise ManifestError(
                f"manifest generation must be a non-negative int, "
                f"got {generation!r}"
            )
        raw_entries = doc.get("entries")
        if not isinstance(raw_entries, dict):
            raise ManifestError("manifest entries must be an object")
        entries = {
            name: ManifestEntry.from_dict(name, value)
            for name, value in raw_entries.items()
        }
        raw_deltas = doc.get("deltas", [])
        if not isinstance(raw_deltas, list):
            raise ManifestError("manifest deltas must be a list")
        deltas = tuple(
            DeltaManifest.from_dict(item) for item in raw_deltas
        )
        seqs = [delta.seq for delta in deltas]
        if seqs != sorted(set(seqs)):
            raise ManifestError(
                "manifest delta generations must have strictly "
                f"increasing seq numbers, got {seqs!r}"
            )
        last_seq = seqs[-1] if seqs else 0
        delta_seq = doc.get("delta_seq", last_seq)
        if not isinstance(delta_seq, int) or delta_seq < last_seq:
            raise ManifestError(
                f"manifest delta_seq {delta_seq!r} is behind the "
                f"newest live delta generation {last_seq}"
            )
        return cls(
            generation=generation,
            entries=entries,
            hierarchy_fingerprint=str(
                doc.get("hierarchy_fingerprint", "")
            ),
            num_rows=int(doc.get("num_rows", 0)),
            format_version=version,
            deltas=deltas,
            delta_seq=delta_seq,
        )


class IndexBuild:
    """One staged build targeting a store's next generation.

    Created via :meth:`DurableBitmapStore.begin_build`; usable as a
    context manager (commit on clean exit, abort on error).  Staged
    files live under the next generation's physical names, which
    nothing references until :meth:`commit` atomically replaces the
    manifest — so an aborted or crashed build is invisible to readers
    and its leftovers are garbage-collected at the next open.

    A :class:`~repro.errors.SimulatedCrashError` escaping the ``with``
    block deliberately skips the abort cleanup: the injected crash must
    leave the directory exactly as a real process death would.
    """

    def __init__(
        self,
        store: "DurableBitmapStore",
        hierarchy_fingerprint: str,
        num_rows: int,
        replace_all: bool,
    ):
        self._store = store
        self._generation = store.generation + 1
        self._fingerprint = hierarchy_fingerprint
        self._num_rows = num_rows
        self._replace_all = replace_all
        self._staged: dict[str, ManifestEntry] = {}
        self._closed = False

    @property
    def generation(self) -> int:
        """The generation this build will commit as."""
        return self._generation

    @property
    def staged_names(self) -> tuple[str, ...]:
        """Logical names staged so far, in insertion order."""
        return tuple(self._staged)

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(
                "index build already committed or aborted"
            )

    def add(self, name: str, payload: bytes) -> None:
        """Stage one bitmap file for this generation.

        The payload is written (atomically, fsynced) under the next
        generation's physical name; the live generation is untouched.
        Re-adding a name replaces its staged payload.
        """
        self._check_open()
        payload = bytes(payload)
        physical = physical_file_name(self._generation, name)
        self._store._write_physical(physical, payload)
        self._staged[name] = ManifestEntry.for_payload(
            name, physical, payload
        )

    def commit(self) -> Manifest:
        """Atomically publish the staged generation.

        Replaces the manifest via tmp + fsync + rename + directory
        fsync — the rename is the commit point — then garbage-collects
        the physical files of the previous generation.  A crash before
        the rename leaves the old generation fully live; a crash after
        it leaves the new generation fully live (the GC re-runs at the
        next open).

        ``replace_all=True`` (a full rebuild) supersedes the live
        delta generations along with the old base — the rebuild was
        computed from the full current column.  ``replace_all=False``
        (a partial update such as a scrub repair) carries live deltas
        forward untouched, and routes any staged name that belongs to
        a live delta generation (a repaired delta file) back into that
        generation's entry set rather than shadowing it in the base.
        """
        self._check_open()
        store = self._store
        with store._reorg_lock:
            previous = store.manifest
            staged_base = dict(self._staged)
            deltas: tuple[DeltaManifest, ...] = ()
            if not self._replace_all:
                live_seqs = {
                    delta.seq for delta in previous.deltas
                }
                staged_delta: dict[int, dict[str, ManifestEntry]] = {}
                for name in list(staged_base):
                    parsed = parse_delta_file_name(name)
                    if parsed is not None and parsed[0] in live_seqs:
                        staged_delta.setdefault(parsed[0], {})[
                            name
                        ] = staged_base.pop(name)
                entries = {**previous.entries, **staged_base}
                deltas = tuple(
                    DeltaManifest(
                        seq=delta.seq,
                        num_rows=delta.num_rows,
                        entries={
                            **delta.entries,
                            **staged_delta[delta.seq],
                        },
                    )
                    if delta.seq in staged_delta
                    else delta
                    for delta in previous.deltas
                )
            else:
                entries = staged_base
            manifest = Manifest(
                generation=self._generation,
                entries=entries,
                hierarchy_fingerprint=(
                    self._fingerprint
                    or previous.hierarchy_fingerprint
                ),
                num_rows=self._num_rows or previous.num_rows,
                deltas=deltas,
                delta_seq=previous.delta_seq,
            )
            store._commit_manifest(manifest)
        self._closed = True
        record(
            "manifest.commit",
            MANIFEST_NAME,
            generation=self._generation,
            files=len(entries),
        )
        get_metrics().inc("manifest_commits_total")
        return manifest

    def abort(self) -> None:
        """Discard the staged files (best effort) without committing."""
        self._check_open()
        self._closed = True
        for entry in self._staged.values():
            try:
                self._store._delete_physical(entry.physical)
            except StorageError:
                pass  # orphans are GC'd at the next open

    def __enter__(self) -> "IndexBuild":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        if exc_type is None:
            if not self._closed:
                self.commit()
            return
        if isinstance(exc, SimulatedCrashError):
            # A real crash runs no cleanup; neither does an injected
            # one — recovery at the next open is what's under test.
            self._closed = True
            return
        if not self._closed:
            self.abort()


class DeltaBuild:
    """One staged delta generation: a batch of appended rows.

    Created via :meth:`DurableBitmapStore.begin_delta`; usable as a
    context manager exactly like :class:`IndexBuild` (commit on clean
    exit, abort on error, a :class:`~repro.errors.SimulatedCrashError`
    escapes without cleanup).  Staged files are written under the next
    generation's physical names through the same atomic
    write-tmp-fsync-rename path as base files, and :meth:`commit`
    publishes them with the same manifest-swap protocol — so the
    delta-commit crash matrix inherits every crash point the base
    build already proves.

    Committing never unreferences anything (the old base and older
    deltas all stay live), so the post-commit GC sweep is a no-op;
    deltas are reclaimed only by compaction.

    The store's reorg lock is held for the builder's whole lifetime
    (taken by :meth:`DurableBitmapStore.begin_delta`'s caller,
    :class:`~repro.storage.delta.DeltaAppender`, or by :meth:`commit`
    itself for direct users), serializing delta commits against
    compaction so neither can drop the other's freshly committed
    state.
    """

    def __init__(self, store: "DurableBitmapStore", num_rows: int):
        if num_rows <= 0:
            raise ValueError(
                f"a delta generation must append at least one row, "
                f"got num_rows={num_rows}"
            )
        self._store = store
        self._num_rows = num_rows
        self._seq = store.manifest.delta_seq + 1
        self._generation = store.generation + 1
        self._staged: dict[str, ManifestEntry] = {}
        self._closed = False

    @property
    def seq(self) -> int:
        """The delta sequence number this build will commit as."""
        return self._seq

    @property
    def generation(self) -> int:
        """The manifest generation this build will commit as."""
        return self._generation

    @property
    def staged_names(self) -> tuple[str, ...]:
        """Logical delta names staged so far, in insertion order."""
        return tuple(self._staged)

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(
                "delta build already committed or aborted"
            )

    def add(self, node_id: int, payload: bytes) -> str:
        """Stage one node's delta tail bitmap; returns its logical
        name.

        The payload is written (atomically, fsynced) under the next
        generation's physical name; nothing references it until
        :meth:`commit`.
        """
        self._check_open()
        payload = bytes(payload)
        name = delta_file_name(self._seq, node_id)
        physical = physical_file_name(self._generation, name)
        self._store._write_physical(physical, payload)
        self._staged[name] = ManifestEntry.for_payload(
            name, physical, payload
        )
        return name

    def commit(self) -> Manifest:
        """Atomically publish the staged delta generation.

        The new manifest keeps the base entries and every older delta
        untouched and appends one :class:`DeltaManifest`; the rename
        of the MANIFEST file is the commit point, exactly as for a
        base build.
        """
        self._check_open()
        store = self._store
        with store._reorg_lock:
            previous = store.manifest
            if previous.delta_seq >= self._seq:
                raise StorageError(
                    f"delta seq {self._seq} was assigned "
                    f"concurrently (store is at "
                    f"{previous.delta_seq}); serialize appends "
                    f"through one DeltaAppender"
                )
            manifest = Manifest(
                generation=self._generation,
                entries=previous.entries,
                hierarchy_fingerprint=(
                    previous.hierarchy_fingerprint
                ),
                num_rows=previous.num_rows,
                deltas=previous.deltas
                + (
                    DeltaManifest(
                        seq=self._seq,
                        num_rows=self._num_rows,
                        entries=dict(self._staged),
                    ),
                ),
                delta_seq=self._seq,
            )
            store._commit_manifest(manifest)
        self._closed = True
        record(
            "manifest.commit-delta",
            MANIFEST_NAME,
            generation=self._generation,
            seq=self._seq,
            rows=self._num_rows,
            files=len(self._staged),
        )
        get_metrics().inc("delta_commits_total")
        return manifest

    def abort(self) -> None:
        """Discard the staged files (best effort) without committing."""
        self._check_open()
        self._closed = True
        for entry in self._staged.values():
            try:
                self._store._delete_physical(entry.physical)
            except StorageError:
                pass  # orphans are GC'd at the next open

    def __enter__(self) -> "DeltaBuild":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        if exc_type is None:
            if not self._closed:
                self.commit()
            return
        if isinstance(exc, SimulatedCrashError):
            self._closed = True
            return
        if not self._closed:
            self.abort()


class DurableBitmapStore(BitmapFileStore):
    """A directory-backed bitmap store with a manifest-committed
    lifecycle.

    Logical names (what catalogs, pools, and executors use) resolve
    through the current :class:`Manifest` to generation-prefixed
    physical files, so builds stage invisibly and commit atomically.
    Opening the directory runs startup recovery: the manifest is
    validated (self-checksum, format version, referenced files present
    at their recorded sizes), orphaned staging files from crashed
    builds are garbage-collected, and unmanifested state is refused
    with a typed :class:`~repro.errors.ManifestError`.

    Args:
        directory: the store directory (required — the durable
            lifecycle is meaningless without real files).
        fault_policy: read/write fault injector, as for
            :class:`~repro.storage.filestore.BitmapFileStore`.
        verify_files: validate at open that every manifest entry's
            physical file exists with the recorded size.  Pass
            ``False`` when opening for scrub/repair of a store known
            to be damaged.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        fault_policy: FaultPolicy | None = None,
        verify_files: bool = True,
    ):
        if directory is None:
            raise ValueError(
                "DurableBitmapStore requires a directory; use "
                "BitmapFileStore for in-memory stores"
            )
        super().__init__(directory, fault_policy)
        assert self._directory is not None
        self._manifest_path = self._directory / MANIFEST_NAME
        # Serializes manifest read-modify-write windows of the
        # reorganizing writers (builds, delta appends, compaction,
        # quarantine) against each other.  Readers never take it.
        self._reorg_lock = threading.RLock()
        self._manifest = self._recover(verify_files)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self, verify_files: bool) -> Manifest:
        assert self._directory is not None
        if not self._manifest_path.exists():
            unmanifested = [
                path.name
                for path in self._directory.iterdir()
                if path.is_file() and not path.name.startswith(".")
            ]
            if unmanifested:
                raise ManifestError(
                    f"directory {str(self._directory)!r} holds "
                    f"{len(unmanifested)} bitmap files but no "
                    f"{MANIFEST_NAME}; refusing to serve unmanifested "
                    f"state (first: {sorted(unmanifested)[:3]})"
                )
            manifest = Manifest(generation=0)
            self._write_manifest_bytes(manifest.to_bytes())
            record(
                "manifest.init", MANIFEST_NAME, generation=0
            )
            return manifest
        try:
            data = self._manifest_path.read_bytes()
        except OSError as err:
            raise ManifestError(
                f"cannot read {MANIFEST_NAME}: {err}"
            ) from err
        manifest = Manifest.from_bytes(data)
        manifest = self._heal_quarantined(manifest)
        if verify_files:
            self._verify_manifest_files(manifest)
        self._gc_orphans(manifest)
        record(
            "manifest.open",
            MANIFEST_NAME,
            generation=manifest.generation,
            files=len(manifest.entries),
        )
        return manifest

    def _heal_quarantined(self, manifest: Manifest) -> Manifest:
        """Drop entries whose physical file sits in quarantine.

        Covers the crash window between moving a corrupt file into
        ``.quarantine/`` and committing the manifest without its entry:
        on reopen the move is completed logically by rewriting the
        manifest, instead of refusing to serve a file that was already
        condemned.
        """
        assert self._directory is not None
        quarantine = self._directory / QUARANTINE_DIR_NAME
        if not quarantine.is_dir():
            return manifest
        stranded = {
            name
            for name, entry in manifest.all_entries().items()
            if not (self._directory / entry.physical).exists()
            and (quarantine / entry.physical).exists()
        }
        if not stranded:
            return manifest
        healed = Manifest(
            generation=manifest.generation + 1,
            entries={
                name: entry
                for name, entry in manifest.entries.items()
                if name not in stranded
            },
            hierarchy_fingerprint=manifest.hierarchy_fingerprint,
            num_rows=manifest.num_rows,
            deltas=tuple(
                DeltaManifest(
                    seq=delta.seq,
                    num_rows=delta.num_rows,
                    entries={
                        name: entry
                        for name, entry in delta.entries.items()
                        if name not in stranded
                    },
                )
                for delta in manifest.deltas
            ),
            delta_seq=manifest.delta_seq,
        )
        self._write_manifest_bytes(healed.to_bytes())
        for name in sorted(stranded):
            record("manifest.heal-quarantined", name)
        return healed

    def _verify_manifest_files(self, manifest: Manifest) -> None:
        assert self._directory is not None
        for name, entry in sorted(manifest.all_entries().items()):
            path = self._directory / entry.physical
            try:
                size = path.stat().st_size
            except FileNotFoundError:
                raise ManifestError(
                    f"manifest references {entry.physical!r} (for "
                    f"{name!r}) but the file is missing; run scrub "
                    f"to repair or quarantine"
                ) from None
            except OSError as err:
                raise ManifestError(
                    f"cannot stat {entry.physical!r}: {err}"
                ) from err
            if size != entry.size:
                raise ManifestError(
                    f"{entry.physical!r} (for {name!r}) is "
                    f"{size} bytes on disk but the manifest records "
                    f"{entry.size}; run scrub to repair or quarantine"
                )

    def _gc_orphans(self, manifest: Manifest) -> int:
        """Remove files no manifest entry references; returns count."""
        assert self._directory is not None
        referenced = manifest.physical_names() | {MANIFEST_NAME}
        removed = 0
        for path in sorted(self._directory.iterdir()):
            if not path.is_file() or path.name in referenced:
                continue
            try:
                path.unlink()
            except OSError:
                continue  # best effort; retried at the next open
            removed += 1
            record("manifest.gc", path.name)
        if removed:
            get_metrics().inc("manifest_gc_files_total", removed)
        return removed

    # ------------------------------------------------------------------
    # Manifest plumbing
    # ------------------------------------------------------------------
    @property
    def manifest(self) -> Manifest:
        """The currently committed manifest."""
        return self._manifest

    @property
    def generation(self) -> int:
        """The committed generation number (0 = empty store)."""
        return self._manifest.generation

    @property
    def delta_manifests(self) -> tuple[DeltaManifest, ...]:
        """The live delta generations, oldest first."""
        return self._manifest.deltas

    @property
    def total_num_rows(self) -> int:
        """Base rows plus every live delta's appended rows."""
        return self._manifest.total_rows

    @property
    def next_delta_seq(self) -> int:
        """The seq the next delta generation would commit as."""
        return self._manifest.delta_seq + 1

    def _write_manifest_bytes(self, data: bytes) -> None:
        """Atomically replace the MANIFEST file (no crash points)."""
        try:
            with self._lock:
                tmp = self._manifest_path.with_name(
                    f".{MANIFEST_NAME}.tmp"
                )
                with open(tmp, "wb") as handle:
                    handle.write(data)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, self._manifest_path)
                self._fsync_directory()
        except OSError as err:
            raise self._wrap_write_error(MANIFEST_NAME, err) from err

    def _fsync_directory(self) -> None:
        assert self._directory is not None
        try:
            fd = os.open(self._directory, os.O_RDONLY)
        except OSError:
            return  # platform without directory fds
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def _commit_manifest(self, manifest: Manifest) -> None:
        """The commit protocol: manifest swap, then old-generation GC.

        Crash points (consulted via the fault policy):
        ``commit.manifest.begin`` / ``commit.manifest.torn`` /
        ``commit.manifest.rename`` around the atomic manifest replace
        (the rename *is* the commit point), then ``commit.gc`` before
        each unlink of a now-unreferenced file.
        """
        try:
            with self._lock:
                self._atomic_replace(
                    self._manifest_path,
                    manifest.to_bytes(),
                    label_prefix="commit.manifest",
                )
                self._fsync_directory()
        except OSError as err:
            raise self._wrap_write_error(MANIFEST_NAME, err) from err
        self._manifest = manifest
        # Post-commit GC: anything the new manifest does not reference
        # is dead.  A crash mid-GC is harmless — the next open re-runs
        # the sweep against the committed manifest.
        assert self._directory is not None
        policy = self._fault_policy
        referenced = manifest.physical_names() | {MANIFEST_NAME}
        for path in sorted(self._directory.iterdir()):
            if not path.is_file() or path.name in referenced:
                continue
            if policy is not None:
                policy.crash_point("commit.gc")
            try:
                path.unlink()
            except OSError:
                continue
            record("manifest.gc", path.name)

    def _write_physical(self, physical: str, payload: bytes) -> None:
        """Atomically write a physical file (staging / repair path)."""
        assert self._directory is not None
        path = self._directory / physical
        try:
            with self._lock:
                self._atomic_replace(path, payload)
        except OSError as err:
            raise self._wrap_write_error(physical, err) from err

    def _delete_physical(self, physical: str) -> None:
        assert self._directory is not None
        try:
            (self._directory / physical).unlink()
        except FileNotFoundError:
            raise FileMissingError(physical) from None
        except OSError as err:
            raise self._wrap_write_error(physical, err) from err

    def read_physical(self, name: str) -> bytes:
        """Read an entry's bytes straight from its physical file.

        Bypasses the read-fault policy — this is the scrubber's view
        of what is *actually on disk*, as opposed to what a faulty
        read path would deliver.
        """
        entry = self._manifest.entry(name)
        assert self._directory is not None
        try:
            return (self._directory / entry.physical).read_bytes()
        except FileNotFoundError:
            raise FileMissingError(name) from None
        except OSError as err:
            raise self._wrap_os_error(name, err) from err

    # ------------------------------------------------------------------
    # Builds
    # ------------------------------------------------------------------
    def begin_build(
        self,
        hierarchy_fingerprint: str = "",
        num_rows: int = 0,
        replace_all: bool = True,
    ) -> IndexBuild:
        """Start a staged build of the next generation.

        Use as a context manager::

            with store.begin_build(fingerprint, num_rows) as build:
                build.add("node_0.wah", payload)
            # committed atomically here (aborted on exception)

        ``replace_all=True`` (an index rebuild) commits exactly the
        staged file set; ``replace_all=False`` (a partial update, e.g.
        a scrub repair) carries unstaged entries forward.
        """
        return IndexBuild(
            self,
            hierarchy_fingerprint=hierarchy_fingerprint,
            num_rows=num_rows,
            replace_all=replace_all,
        )

    def begin_delta(self, num_rows: int) -> DeltaBuild:
        """Start a staged delta generation for ``num_rows`` appended
        rows.

        Use as a context manager::

            with store.begin_delta(len(batch)) as delta:
                delta.add(node_id, payload)
            # committed atomically here (aborted on exception)

        Higher-level callers should prefer
        :class:`~repro.storage.delta.DeltaAppender`, which computes
        the per-node tail bitmaps and holds the reorg lock across
        staging and commit.
        """
        return DeltaBuild(self, num_rows=num_rows)

    # ------------------------------------------------------------------
    # Quarantine
    # ------------------------------------------------------------------
    def quarantine(self, name: str) -> str:
        """Condemn an entry: park its file, drop it from the manifest.

        The physical file (when still present) is moved into
        ``.quarantine/`` — preserved as evidence, invisible to readers
        and to GC — and a new generation is committed without the
        entry.  Returns the quarantined physical file name.  Readers
        of the logical name subsequently get
        :class:`~repro.errors.FileMissingError`, which the executor's
        degraded-read path turns into a child-union recovery for
        internal nodes.
        """
        with self._reorg_lock:
            entry = self._manifest.entry(name)
            assert self._directory is not None
            quarantine_dir = self._directory / QUARANTINE_DIR_NAME
            source = self._directory / entry.physical
            try:
                quarantine_dir.mkdir(exist_ok=True)
                if source.exists():
                    os.replace(
                        source, quarantine_dir / entry.physical
                    )
            except OSError as err:
                raise self._wrap_write_error(
                    entry.physical, err
                ) from err
            self._commit_manifest(self._manifest.without(name))
        record("manifest.quarantine", name, physical=entry.physical)
        get_metrics().inc("scrub_quarantined_total")
        return entry.physical

    def quarantined_names(self) -> list[str]:
        """Physical file names currently parked in quarantine."""
        assert self._directory is not None
        quarantine_dir = self._directory / QUARANTINE_DIR_NAME
        if not quarantine_dir.is_dir():
            return []
        return sorted(
            path.name
            for path in quarantine_dir.iterdir()
            if path.is_file()
        )

    # ------------------------------------------------------------------
    # Logical-name file API (what pools/catalogs/executors use)
    # ------------------------------------------------------------------
    def write(self, name: str, payload: bytes) -> None:
        """Write one file as a single-entry committed generation.

        Stages the payload under the next generation's physical name,
        then commits a manifest carrying every other entry forward —
        a one-file build.  Bulk writers should prefer
        :meth:`begin_build`, which commits once for the whole set.
        """
        with self.begin_build(replace_all=False) as build:
            build.add(name, payload)

    def read(self, name: str) -> bytes:
        """Fetch a logical file's content through the manifest.

        Unmanifested names raise :class:`~repro.errors.
        FileMissingError` even if a stray file with that name exists
        on disk — the manifest is the only source of truth.
        """
        entry = self._manifest.entry(name)
        return super().read(entry.physical)

    def size_bytes(self, name: str) -> int:
        """Size of a logical file, as recorded by the manifest."""
        return self._manifest.entry(name).size

    def delete(self, name: str) -> None:
        """Remove a logical file by committing a generation without it."""
        with self._reorg_lock:
            entry = self._manifest.entry(name)
            self._commit_manifest(self._manifest.without(name))
        record("manifest.delete", name, physical=entry.physical)

    def exists(self, name: str) -> bool:
        """Whether the manifest lists a logical file with this name
        (in the base generation or any live delta)."""
        return self._manifest.has(name)

    def names(self) -> Iterator[str]:
        """Iterate the manifest's logical file names (base and
        delta), sorted."""
        yield from sorted(self._manifest.all_entries())

    def verify_hierarchy(self, hierarchy) -> None:
        """Check the manifest was built for this hierarchy.

        Raises :class:`~repro.errors.ManifestError` on a fingerprint
        mismatch; an empty stored fingerprint (pre-durability data or
        ad-hoc writes) is accepted.
        """
        stored = self._manifest.hierarchy_fingerprint
        if not stored:
            return
        expected = hierarchy_fingerprint(hierarchy)
        if stored != expected:
            raise ManifestError(
                f"index was built for a different hierarchy: "
                f"manifest fingerprint {stored[:12]}..., expected "
                f"{expected[:12]}..."
            )

    def __repr__(self) -> str:
        return (
            f"DurableBitmapStore(directory="
            f"{str(self._directory)!r}, "
            f"generation={self._manifest.generation}, "
            f"files={len(self._manifest.entries)}, "
            f"deltas={len(self._manifest.deltas)})"
        )
