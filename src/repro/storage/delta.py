"""LSM-style ingest: append row batches as delta generations.

The materialized index is read-optimized; rebuilding it for every
appended batch would cost a full index write.  Instead,
:class:`DeltaAppender` turns a batch of appended rows into one small
*delta generation*: per hierarchy node, the WAH tail bitmap covering
only the batch (zero tails compress to a single fill word), committed
atomically through the same tmp + fsync + manifest-swap protocol as a
full build (:class:`~repro.storage.manifest.DeltaBuild`).

Readers merge on read — a node's effective bitmap is
``base.concat(delta_1).concat(delta_2)...`` in seq order, which for
append-only rows is exactly ``OR(base ∪ offset-extended deltas)`` and
bit-identical (canonical WAH words) to a from-scratch rebuild over the
full column.  :class:`~repro.storage.compactor.Compactor` folds deltas
back into a new base generation when read amplification grows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bitmap.serialization import serialize_wah
from ..bitmap.wah import WahBitmap
from ..errors import StorageError, WorkloadError
from ..hierarchy.tree import Hierarchy
from ..obs import get_metrics, record
from .manifest import DurableBitmapStore

__all__ = ["DeltaAppendResult", "DeltaAppender"]


@dataclass(frozen=True)
class DeltaAppendResult:
    """What one :meth:`DeltaAppender.append` call committed.

    Attributes:
        seq: the delta generation's sequence number (0 when the batch
            was empty and nothing was committed).
        generation: the manifest generation committed (0 for an empty
            batch).
        num_rows: rows appended by this batch.
        files_written: delta files staged (one per hierarchy node).
        bytes_written: total serialized delta payload bytes.
    """

    seq: int
    generation: int
    num_rows: int
    files_written: int
    bytes_written: int

    @property
    def committed(self) -> bool:
        """Whether a delta generation was actually committed (an
        empty batch is a no-op)."""
        return self.num_rows > 0

    def to_dict(self) -> dict:
        """JSON-serializable form (CLI output)."""
        return {
            "seq": self.seq,
            "generation": self.generation,
            "num_rows": self.num_rows,
            "files_written": self.files_written,
            "bytes_written": self.bytes_written,
            "committed": self.committed,
        }


class DeltaAppender:
    """Stages and commits per-node delta bitmaps for appended rows.

    One appender serializes all appends to its store (it holds the
    store's reorg lock across staging and commit), so concurrent
    callers cannot race a sequence number or interleave with a
    compaction's manifest swap.

    Args:
        store: the durable store holding the base generation.  Must
            already contain a built index (``num_rows > 0``) — a delta
            extends a base, it cannot found one.
        hierarchy: the indexed hierarchy; checked against the store's
            recorded fingerprint so a delta can never be computed for
            the wrong tree shape.
    """

    def __init__(
        self, store: DurableBitmapStore, hierarchy: Hierarchy
    ):
        if not isinstance(store, DurableBitmapStore):
            raise StorageError(
                "DeltaAppender requires a DurableBitmapStore; "
                "in-memory stores have no durable delta lifecycle"
            )
        if store.manifest.num_rows <= 0:
            raise StorageError(
                "cannot append deltas to an empty store: build a "
                "base generation first"
            )
        store.verify_hierarchy(hierarchy)
        self._store = store
        self._hierarchy = hierarchy

    @property
    def store(self) -> DurableBitmapStore:
        """The store appends commit into."""
        return self._store

    def append(self, values: np.ndarray) -> DeltaAppendResult:
        """Commit one batch of appended rows as a delta generation.

        ``values`` are the batch's leaf ids in row order, exactly as
        for the initial build.  Every hierarchy node gets a tail
        bitmap covering only the batch (nodes missed by the batch get
        a pure zero fill), so merge-on-read can extend any node
        positionally without consulting which nodes the batch touched.
        An empty batch commits nothing and returns a result with
        ``committed == False``.
        """
        values = np.asarray(values)
        if values.ndim != 1:
            raise WorkloadError(
                f"values must be a 1-D array, got shape {values.shape}"
            )
        if values.size == 0:
            return DeltaAppendResult(
                seq=0,
                generation=0,
                num_rows=0,
                files_written=0,
                bytes_written=0,
            )
        if not np.issubdtype(values.dtype, np.integer):
            raise WorkloadError(
                f"values must be integral leaf ids, got {values.dtype}"
            )
        num_leaves = self._hierarchy.num_leaves
        if values.min() < 0 or values.max() >= num_leaves:
            raise WorkloadError(
                f"values must lie in [0, {num_leaves}), got range "
                f"[{values.min()}, {values.max()}]"
            )
        batch = int(values.size)
        bytes_written = 0
        store = self._store
        with store._reorg_lock:
            with store.begin_delta(batch) as delta:
                seq = delta.seq
                generation = delta.generation
                for node_id, positions in self._tail_positions(
                    values
                ):
                    payload = serialize_wah(
                        WahBitmap.from_positions(positions, batch)
                    )
                    delta.add(node_id, payload)
                    bytes_written += len(payload)
                files_written = len(delta.staged_names)
        record(
            "delta.append",
            f"delta_{seq:06d}",
            seq=seq,
            rows=batch,
            files=files_written,
            bytes=bytes_written,
        )
        get_metrics().inc("delta_rows_appended_total", batch)
        return DeltaAppendResult(
            seq=seq,
            generation=generation,
            num_rows=batch,
            files_written=files_written,
            bytes_written=bytes_written,
        )

    def _tail_positions(self, values: np.ndarray):
        """Yield ``(node_id, batch positions)`` for every node.

        One stable argsort plus two binary searches per node (every
        node covers a contiguous leaf span), the same
        O((batch + nodes) · log batch) sweep as
        ``HierarchicalBitmapIndex._node_tail_positions``.
        """
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        for node in self._hierarchy:
            lo = np.searchsorted(
                sorted_values, node.leaf_lo, side="left"
            )
            hi = np.searchsorted(
                sorted_values, node.leaf_hi, side="right"
            )
            yield node.node_id, order[lo:hi]
