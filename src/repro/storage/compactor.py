"""Fold delta generations back into the base index.

Merge-on-read keeps ingest cheap, but every live delta generation adds
one read per node per query.  The :class:`Compactor` bounds that read
amplification: it folds the oldest ``max_deltas_per_run`` delta
generations into a new base generation — per node,
``base.concat(delta_1).concat(delta_2)...`` in seq order, the same
canonical WAH concatenation merge-on-read performs — and commits the
result through the ordinary manifest-swap protocol.  The rename of the
MANIFEST is the commit point; the post-commit GC sweep then reclaims
the superseded base files and the folded delta files.  A crash at any
step leaves the store serving exactly the old state or exactly the new
one, which the compaction crash matrix asserts cell by cell.

Compaction reads bytes straight from disk (CRC-verified against the
manifest, bypassing the read-fault injector): folding must fold what
is *actually committed*, and a store failing its own checksums needs a
scrub, not a compaction — so a mismatch aborts with a typed
:class:`~repro.errors.StorageError` before anything is staged.

:class:`BackgroundCompactor` runs the same fold on a daemon thread
with a delta-count threshold, the deployment shape the sharded serving
path uses (each shard compacts its own store).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..bitmap.serialization import deserialize_wah, serialize_wah
from ..errors import StorageError
from ..obs import get_metrics, record
from .accounting import IOAccountant
from .catalog import node_id_from_file_name
from .manifest import (
    DurableBitmapStore,
    Manifest,
    ManifestEntry,
    delta_file_name,
    physical_file_name,
)

__all__ = ["CompactionReport", "Compactor", "BackgroundCompactor"]


@dataclass(frozen=True)
class CompactionReport:
    """What one compaction run did.

    Attributes:
        folded_seqs: delta sequence numbers folded into the new base.
        folded_rows: rows those deltas appended (now in the base).
        files_written: base files rewritten.
        bytes_read: payload bytes read to compute the fold.
        bytes_written: new base payload bytes written.
        generation_before: manifest generation before the run.
        generation_after: generation after (same as before when the
            run was a no-op).
    """

    folded_seqs: tuple[int, ...]
    folded_rows: int
    files_written: int
    bytes_read: int
    bytes_written: int
    generation_before: int
    generation_after: int

    @property
    def did_work(self) -> bool:
        """Whether any delta generation was folded."""
        return bool(self.folded_seqs)

    def to_dict(self) -> dict:
        """JSON-serializable form (CLI output)."""
        return {
            "folded_seqs": list(self.folded_seqs),
            "folded_rows": self.folded_rows,
            "files_written": self.files_written,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "generation_before": self.generation_before,
            "generation_after": self.generation_after,
            "did_work": self.did_work,
        }


def _noop_report(generation: int) -> CompactionReport:
    return CompactionReport(
        folded_seqs=(),
        folded_rows=0,
        files_written=0,
        bytes_read=0,
        bytes_written=0,
        generation_before=generation,
        generation_after=generation,
    )


class Compactor:
    """Folds delta generations into a new base generation.

    Args:
        store: the durable store to compact.
        max_deltas_per_run: fold at most this many (oldest) delta
            generations per :meth:`run`, bounding the IO of one run;
            ``None`` folds everything.
        accountant: optional :class:`~repro.storage.accounting.
            IOAccountant` charged with every payload byte the fold
            reads, so maintenance IO shows up in the same ledger as
            query IO.
    """

    def __init__(
        self,
        store: DurableBitmapStore,
        max_deltas_per_run: int | None = None,
        accountant: IOAccountant | None = None,
    ):
        if not isinstance(store, DurableBitmapStore):
            raise StorageError(
                "Compactor requires a DurableBitmapStore"
            )
        if max_deltas_per_run is not None and max_deltas_per_run <= 0:
            raise ValueError(
                f"max_deltas_per_run must be positive, got "
                f"{max_deltas_per_run}"
            )
        self._store = store
        self._max_deltas = max_deltas_per_run
        self._accountant = accountant

    def _verified_payload(self, name: str, entry) -> bytes:
        payload = self._store.read_physical(name)
        if not entry.matches(payload):
            raise StorageError(
                f"refusing to compact: {name!r} fails its manifest "
                f"checksum on disk; run scrub first"
            )
        if self._accountant is not None:
            self._accountant.record_read(name, len(payload))
        return payload

    def run(self) -> CompactionReport:
        """Fold the oldest deltas into a new base generation.

        Returns a no-op report when the store has no live deltas.
        Holds the store's reorg lock for the whole fold, so a
        concurrent append can neither be dropped by this commit nor
        observe a half-staged base.
        """
        store = self._store
        with store._reorg_lock:
            manifest = store.manifest
            deltas = manifest.deltas
            if not deltas:
                return _noop_report(manifest.generation)
            limit = self._max_deltas or len(deltas)
            fold = deltas[:limit]
            remaining = deltas[limit:]
            folded_rows = sum(delta.num_rows for delta in fold)
            generation = manifest.generation + 1
            expected_bits = manifest.num_rows + folded_rows
            staged: dict[str, ManifestEntry] = {}
            bytes_read = 0
            bytes_written = 0
            files_written = 0
            for name, entry in sorted(manifest.entries.items()):
                node_id = node_id_from_file_name(name)
                if node_id is None:
                    # Not a node bitmap: carried forward untouched
                    # (same physical file, still referenced).
                    staged[name] = entry
                    continue
                base_payload = self._verified_payload(name, entry)
                bytes_read += len(base_payload)
                merged = deserialize_wah(base_payload)
                for delta in fold:
                    dname = delta_file_name(delta.seq, node_id)
                    dentry = delta.entries.get(dname)
                    if dentry is None:
                        raise StorageError(
                            f"refusing to compact: delta generation "
                            f"{delta.seq} has no entry for {dname!r}; "
                            f"run scrub first"
                        )
                    dpayload = self._verified_payload(dname, dentry)
                    bytes_read += len(dpayload)
                    merged = merged.concat(
                        deserialize_wah(dpayload)
                    )
                if merged.num_bits != expected_bits:
                    raise StorageError(
                        f"compaction of {name!r} produced "
                        f"{merged.num_bits} bits, expected "
                        f"{expected_bits}"
                    )
                payload = serialize_wah(merged)
                physical = physical_file_name(generation, name)
                store._write_physical(physical, payload)
                staged[name] = ManifestEntry.for_payload(
                    name, physical, payload
                )
                bytes_written += len(payload)
                files_written += 1
            new_manifest = Manifest(
                generation=generation,
                entries=staged,
                hierarchy_fingerprint=(
                    manifest.hierarchy_fingerprint
                ),
                num_rows=expected_bits,
                deltas=remaining,
                delta_seq=manifest.delta_seq,
            )
            store._commit_manifest(new_manifest)
        record(
            "compact.run",
            f"g{generation:08d}",
            folded_seqs=[delta.seq for delta in fold],
            folded_rows=folded_rows,
            files=files_written,
            bytes_read=bytes_read,
            bytes_written=bytes_written,
        )
        metrics = get_metrics()
        metrics.inc("compactions_total")
        metrics.inc("compacted_deltas_total", len(fold))
        return CompactionReport(
            folded_seqs=tuple(delta.seq for delta in fold),
            folded_rows=folded_rows,
            files_written=files_written,
            bytes_read=bytes_read,
            bytes_written=bytes_written,
            generation_before=manifest.generation,
            generation_after=generation,
        )


class BackgroundCompactor:
    """Runs :class:`Compactor` on a daemon thread.

    Wakes every ``interval_seconds`` (or immediately on
    :meth:`trigger`) and folds when at least ``min_deltas`` delta
    generations are live.  Storage errors are recorded and retried at
    the next wake rather than killing the thread; committed reports
    accumulate in :attr:`reports`.
    """

    def __init__(
        self,
        store: DurableBitmapStore,
        min_deltas: int = 4,
        interval_seconds: float = 1.0,
        max_deltas_per_run: int | None = None,
        accountant: IOAccountant | None = None,
    ):
        if min_deltas <= 0:
            raise ValueError(
                f"min_deltas must be positive, got {min_deltas}"
            )
        self._store = store
        self._min_deltas = min_deltas
        self._interval = interval_seconds
        self._compactor = Compactor(
            store,
            max_deltas_per_run=max_deltas_per_run,
            accountant=accountant,
        )
        self._wake = threading.Event()
        self._stopped = threading.Event()
        self._state_lock = threading.Lock()
        self._reports: list[CompactionReport] = []
        self._errors: list[StorageError] = []
        self._thread: threading.Thread | None = None

    @property
    def reports(self) -> list[CompactionReport]:
        """Reports of runs that folded at least one delta."""
        with self._state_lock:
            return list(self._reports)

    @property
    def errors(self) -> list[StorageError]:
        """Storage errors swallowed by the loop (retried later)."""
        with self._state_lock:
            return list(self._errors)

    def start(self) -> "BackgroundCompactor":
        """Start the daemon thread (idempotent); returns self."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._loop,
            name="hcs-compactor",
            daemon=True,
        )
        self._thread.start()
        return self

    def trigger(self) -> None:
        """Wake the loop now instead of at the next interval."""
        self._wake.set()

    def stop(self) -> None:
        """Stop the thread and wait for it to exit."""
        if self._thread is None:
            return
        self._stopped.set()
        self._wake.set()
        self._thread.join()
        self._thread = None

    def _due(self) -> bool:
        return len(self._store.delta_manifests) >= self._min_deltas

    def _loop(self) -> None:
        while not self._stopped.is_set():
            self._wake.wait(self._interval)
            self._wake.clear()
            if self._stopped.is_set():
                return
            if not self._due():
                continue
            try:
                report = self._compactor.run()
            except StorageError as err:
                record(
                    "compact.error",
                    type(err).__name__,
                    message=str(err),
                )
                with self._state_lock:
                    self._errors.append(err)
                continue
            if report.did_work:
                with self._state_lock:
                    self._reports.append(report)

    def __enter__(self) -> "BackgroundCompactor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
