"""IO accounting.

The paper's evaluation metric is "amount of data read (in mb)": the total
bytes of bitmap files brought from secondary storage into memory.  The
:class:`IOAccountant` records exactly that, per file and in aggregate, so
benches and tests can compare predicted against actually-incurred IO.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .costmodel import MB

__all__ = ["IOAccountant", "IOSnapshot"]


@dataclass(frozen=True, slots=True)
class IOSnapshot:
    """A point-in-time copy of the accountant's tallies."""

    bytes_read: int
    read_count: int
    reads_by_name: dict[str, int]
    retry_count: int = 0
    discarded_bytes: int = 0
    discard_count: int = 0

    @property
    def mb_read(self) -> float:
        """Total data read in MB (the paper's plotted unit)."""
        return self.bytes_read / MB


@dataclass
class IOAccountant:
    """Tallies every read served from (simulated) secondary storage."""

    bytes_read: int = 0
    read_count: int = 0
    reads_by_name: Counter = field(default_factory=Counter)
    bytes_by_name: Counter = field(default_factory=Counter)
    retry_count: int = 0
    discarded_bytes: int = 0
    discard_count: int = 0

    def record_read(self, name: str, nbytes: int) -> None:
        """Record that ``nbytes`` of file ``name`` were fetched."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        self.bytes_read += nbytes
        self.read_count += 1
        self.reads_by_name[name] += 1
        self.bytes_by_name[name] += nbytes

    def record_retry(self, name: str) -> None:
        """Record a failed read attempt that will be retried.

        A transient failure transfers no data, so ``bytes_read`` is
        untouched — this keeps the paper's "amount of data read" metric
        honest while still exposing how flaky the storage was.
        """
        self.retry_count += 1

    def record_discard(self, name: str, nbytes: int) -> None:
        """Record that a fetched payload failed validation and was
        dropped.

        The bytes *were* read (and already charged via
        :meth:`record_read`); this separates wasted IO from useful IO
        so degraded runs remain auditable.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        self.discarded_bytes += nbytes
        self.discard_count += 1

    @property
    def mb_read(self) -> float:
        """Total data read in MB."""
        return self.bytes_read / MB

    def snapshot(self) -> IOSnapshot:
        """An immutable copy of the current tallies."""
        return IOSnapshot(
            bytes_read=self.bytes_read,
            read_count=self.read_count,
            reads_by_name=dict(self.reads_by_name),
            retry_count=self.retry_count,
            discarded_bytes=self.discarded_bytes,
            discard_count=self.discard_count,
        )

    def reset(self) -> None:
        """Zero all tallies."""
        self.bytes_read = 0
        self.read_count = 0
        self.reads_by_name.clear()
        self.bytes_by_name.clear()
        self.retry_count = 0
        self.discarded_bytes = 0
        self.discard_count = 0

    def __repr__(self) -> str:
        return (
            f"IOAccountant(bytes_read={self.bytes_read}, "
            f"read_count={self.read_count})"
        )
