"""IO accounting.

The paper's evaluation metric is "amount of data read (in mb)": the total
bytes of bitmap files brought from secondary storage into memory.  The
:class:`IOAccountant` records exactly that, per file and in aggregate, so
benches and tests can compare predicted against actually-incurred IO.
"""

from __future__ import annotations

import threading
from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass, field

from .costmodel import MB

__all__ = ["IOAccountant", "IOSnapshot"]


@dataclass(frozen=True, slots=True)
class IOSnapshot:
    """A point-in-time copy of the accountant's tallies.

    Snapshots are cheap and immutable; :meth:`diff` subtracts one from
    another, which is how a single query's IO is attributed inside a
    long-running workload without resetting (and therefore racing on)
    the shared accountant.
    """

    bytes_read: int
    read_count: int
    reads_by_name: dict[str, int]
    retry_count: int = 0
    discarded_bytes: int = 0
    discard_count: int = 0
    bytes_by_name: dict[str, int] = field(default_factory=dict)

    @property
    def mb_read(self) -> float:
        """Total data read in MB (the paper's plotted unit)."""
        return self.bytes_read / MB

    @staticmethod
    def combine(
        snapshots: "Iterable[IOSnapshot]",
    ) -> "IOSnapshot":
        """Sum several snapshots counter by counter.

        Used by the sharded serving path to merge per-shard deltas
        shipped over process boundaries into one batch-level snapshot;
        per-name maps are summed key-wise (shards share the
        ``node_<id>.wah`` naming, so identically-named files across
        shards aggregate — callers who need shard-resolved names keep
        the per-shard snapshots).
        """
        bytes_read = 0
        read_count = 0
        retry_count = 0
        discarded_bytes = 0
        discard_count = 0
        reads_by_name: Counter = Counter()
        bytes_by_name: Counter = Counter()
        for snapshot in snapshots:
            bytes_read += snapshot.bytes_read
            read_count += snapshot.read_count
            retry_count += snapshot.retry_count
            discarded_bytes += snapshot.discarded_bytes
            discard_count += snapshot.discard_count
            reads_by_name.update(snapshot.reads_by_name)
            bytes_by_name.update(snapshot.bytes_by_name)
        return IOSnapshot(
            bytes_read=bytes_read,
            read_count=read_count,
            reads_by_name=dict(reads_by_name),
            retry_count=retry_count,
            discarded_bytes=discarded_bytes,
            discard_count=discard_count,
            bytes_by_name=dict(bytes_by_name),
        )

    def diff(self, earlier: "IOSnapshot") -> "IOSnapshot":
        """The IO that happened between ``earlier`` and this snapshot.

        Both snapshots must come from the same accountant with no
        ``reset()`` in between (a negative delta raises ``ValueError``).
        Per-name maps keep only the names whose tallies moved, so the
        diff of a single query lists exactly the files it touched.
        """
        delta_bytes = self.bytes_read - earlier.bytes_read
        delta_reads = self.read_count - earlier.read_count
        if delta_bytes < 0 or delta_reads < 0:
            raise ValueError(
                "diff() requires an earlier snapshot of the same "
                "accountant (tallies went backwards; was reset() "
                "called in between?)"
            )
        reads_by_name = {
            name: count - earlier.reads_by_name.get(name, 0)
            for name, count in self.reads_by_name.items()
            if count != earlier.reads_by_name.get(name, 0)
        }
        bytes_by_name = {
            name: nbytes - earlier.bytes_by_name.get(name, 0)
            for name, nbytes in self.bytes_by_name.items()
            if nbytes != earlier.bytes_by_name.get(name, 0)
        }
        return IOSnapshot(
            bytes_read=delta_bytes,
            read_count=delta_reads,
            reads_by_name=reads_by_name,
            retry_count=self.retry_count - earlier.retry_count,
            discarded_bytes=(
                self.discarded_bytes - earlier.discarded_bytes
            ),
            discard_count=self.discard_count - earlier.discard_count,
            bytes_by_name=bytes_by_name,
        )


@dataclass
class IOAccountant:
    """Tallies every read served from (simulated) secondary storage.

    Thread-safe: one accountant may be shared by every worker of a
    concurrent batch — a lock makes each record and :meth:`snapshot`
    atomic, so snapshots never observe a half-applied read and the
    tallies stay exact under interleaving.
    """

    bytes_read: int = 0
    read_count: int = 0
    reads_by_name: Counter = field(default_factory=Counter)
    bytes_by_name: Counter = field(default_factory=Counter)
    retry_count: int = 0
    discarded_bytes: int = 0
    discard_count: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record_read(self, name: str, nbytes: int) -> None:
        """Record that ``nbytes`` of file ``name`` were fetched."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        with self._lock:
            self.bytes_read += nbytes
            self.read_count += 1
            self.reads_by_name[name] += 1
            self.bytes_by_name[name] += nbytes

    def record_retry(self, name: str) -> None:
        """Record a failed read attempt that will be retried.

        A transient failure transfers no data, so ``bytes_read`` is
        untouched — this keeps the paper's "amount of data read" metric
        honest while still exposing how flaky the storage was.
        """
        with self._lock:
            self.retry_count += 1

    def record_discard(self, name: str, nbytes: int) -> None:
        """Record that a fetched payload failed validation and was
        dropped.

        The bytes *were* read (and already charged via
        :meth:`record_read`); this separates wasted IO from useful IO
        so degraded runs remain auditable.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        with self._lock:
            self.discarded_bytes += nbytes
            self.discard_count += 1

    @property
    def mb_read(self) -> float:
        """Total data read in MB."""
        return self.bytes_read / MB

    def snapshot(self) -> IOSnapshot:
        """An immutable, atomically-consistent copy of the tallies."""
        with self._lock:
            return IOSnapshot(
                bytes_read=self.bytes_read,
                read_count=self.read_count,
                reads_by_name=dict(self.reads_by_name),
                retry_count=self.retry_count,
                discarded_bytes=self.discarded_bytes,
                discard_count=self.discard_count,
                bytes_by_name=dict(self.bytes_by_name),
            )

    def diff_since(self, earlier: IOSnapshot) -> IOSnapshot:
        """Convenience: ``snapshot().diff(earlier)`` in one call."""
        return self.snapshot().diff(earlier)

    def reset(self) -> None:
        """Zero all tallies."""
        with self._lock:
            self.bytes_read = 0
            self.read_count = 0
            self.reads_by_name.clear()
            self.bytes_by_name.clear()
            self.retry_count = 0
            self.discarded_bytes = 0
            self.discard_count = 0

    def __repr__(self) -> str:
        return (
            f"IOAccountant(bytes_read={self.bytes_read}, "
            f"read_count={self.read_count})"
        )
