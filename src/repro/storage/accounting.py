"""IO accounting.

The paper's evaluation metric is "amount of data read (in mb)": the total
bytes of bitmap files brought from secondary storage into memory.  The
:class:`IOAccountant` records exactly that, per file and in aggregate, so
benches and tests can compare predicted against actually-incurred IO.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .costmodel import MB

__all__ = ["IOAccountant", "IOSnapshot"]


@dataclass(frozen=True, slots=True)
class IOSnapshot:
    """A point-in-time copy of the accountant's tallies."""

    bytes_read: int
    read_count: int
    reads_by_name: dict[str, int]

    @property
    def mb_read(self) -> float:
        """Total data read in MB (the paper's plotted unit)."""
        return self.bytes_read / MB


@dataclass
class IOAccountant:
    """Tallies every read served from (simulated) secondary storage."""

    bytes_read: int = 0
    read_count: int = 0
    reads_by_name: Counter = field(default_factory=Counter)
    bytes_by_name: Counter = field(default_factory=Counter)

    def record_read(self, name: str, nbytes: int) -> None:
        """Record that ``nbytes`` of file ``name`` were fetched."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        self.bytes_read += nbytes
        self.read_count += 1
        self.reads_by_name[name] += 1
        self.bytes_by_name[name] += nbytes

    @property
    def mb_read(self) -> float:
        """Total data read in MB."""
        return self.bytes_read / MB

    def snapshot(self) -> IOSnapshot:
        """An immutable copy of the current tallies."""
        return IOSnapshot(
            bytes_read=self.bytes_read,
            read_count=self.read_count,
            reads_by_name=dict(self.reads_by_name),
        )

    def reset(self) -> None:
        """Zero all tallies."""
        self.bytes_read = 0
        self.read_count = 0
        self.reads_by_name.clear()
        self.bytes_by_name.clear()

    def __repr__(self) -> str:
        return (
            f"IOAccountant(bytes_read={self.bytes_read}, "
            f"read_count={self.read_count})"
        )
