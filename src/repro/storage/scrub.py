"""Scrub-and-repair: detect at-rest rot, heal it from the hierarchy.

The paper's core identity — an internal node's bitmap is exactly the OR
of its children's (PAPER §2.1) — means a materialized hierarchy carries
natural redundancy: any internal bitmap can be re-derived byte-for-byte
from its children.  The :class:`Scrubber` exploits that.  It walks a
:class:`~repro.storage.manifest.DurableBitmapStore`'s manifest, reads
every physical file straight off disk (bypassing read-fault injection —
the scrubber's subject is what is *actually stored*), and compares
size and CRC32 against the committed entry.  Findings are handled by
kind of node:

* **internal node** corrupt/missing → re-derive via k-way union of the
  children's bitmaps, verify the re-serialized payload matches the
  manifest's recorded CRC byte-exactly, and commit the repair as a new
  generation;
* **leaf node** (no redundancy below it) or a payload that cannot be
  re-derived → quarantine: the damaged file is parked in
  ``.quarantine/`` as evidence and dropped from the manifest, so
  readers get a clean :class:`~repro.errors.FileMissingError` instead
  of corrupt bytes.

All IO is charged honestly through an
:class:`~repro.storage.accounting.IOAccountant`: verification reads and
repair reads are tallied separately, and a repair's IO equals the sum
of the child file sizes *exactly* (each child is read from disk once).
Progress is observable via ``scrub.*`` trace events and the
``scrub_files_verified_total`` / ``scrub_corruptions_total{kind}`` /
``scrub_repairs_total{kind}`` metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bitmap.serialization import deserialize_wah, serialize_wah
from ..bitmap.wah import WahBitmap
from ..errors import (
    BitmapDecodeError,
    FileMissingError,
    StorageError,
)
from ..hierarchy.tree import Hierarchy
from ..obs import get_metrics, record
from .accounting import IOAccountant
from .catalog import node_file_name, node_id_from_file_name
from .manifest import (
    DurableBitmapStore,
    delta_file_name,
    parse_delta_file_name,
)

__all__ = ["ScrubFinding", "ScrubReport", "Scrubber"]

#: Finding kinds, in the order the checks run.
_KIND_MISSING = "missing"
_KIND_SIZE = "size"
_KIND_CHECKSUM = "checksum"

#: Finding actions.
_ACTION_REPORTED = "reported"
_ACTION_REPAIRED = "repaired"
_ACTION_QUARANTINED = "quarantined"


def _file_identity(name: str) -> tuple[int | None, int | None]:
    """``(node_id, delta_seq)`` for a manifest name.

    Base node files yield ``(node_id, None)``; delta files yield
    ``(node_id, seq)``; unrecognized names yield ``(None, None)``.
    A delta entry is a first-class manifest citizen — *not* an orphan
    — so the scrubber verifies (and, for internal nodes, repairs) it
    exactly like a base file, using the same delta generation's child
    files as the redundancy source.
    """
    node_id = node_id_from_file_name(name)
    if node_id is not None:
        return node_id, None
    parsed = parse_delta_file_name(name)
    if parsed is not None:
        return parsed[1], parsed[0]
    return None, None


@dataclass(frozen=True, slots=True)
class ScrubFinding:
    """One damaged file discovered by a scrub.

    Attributes:
        name: logical file name (``node_<id>.wah``).
        kind: what was wrong — ``"missing"`` (physical file absent),
            ``"size"`` (on-disk length differs from the manifest), or
            ``"checksum"`` (CRC32 mismatch: at-rest rot).
        action: what the scrubber did — ``"repaired"`` (re-derived from
            children, byte-identical to the committed payload),
            ``"quarantined"`` (unrepairable; parked and dropped from
            the manifest), or ``"reported"`` (detect-only pass).
        node_id: the hierarchy node the file maps to, or ``None`` when
            the name does not follow the node-file convention.
        detail: human-readable specifics (sizes, checksums, reasons).
    """

    name: str
    kind: str
    action: str
    node_id: int | None = None
    detail: str = ""

    def to_dict(self) -> dict:
        """JSON-serializable form for reports and CLI output."""
        return {
            "name": self.name,
            "kind": self.kind,
            "action": self.action,
            "node_id": self.node_id,
            "detail": self.detail,
        }


@dataclass(frozen=True, slots=True)
class ScrubReport:
    """The outcome of one scrub pass over a store.

    Attributes:
        files_checked: manifest entries examined.
        findings: every damaged file, with the action taken.
        verify_io_bytes: bytes read from disk to verify checksums.
        repair_io_bytes: bytes read from disk to re-derive repaired
            bitmaps — exactly the sum of the child file sizes of each
            repaired node.
        generation_before: store generation when the scrub started.
        generation_after: store generation after repairs/quarantines
            committed (equal to ``generation_before`` when clean).
    """

    files_checked: int
    findings: tuple[ScrubFinding, ...]
    verify_io_bytes: int
    repair_io_bytes: int
    generation_before: int
    generation_after: int

    @property
    def is_clean(self) -> bool:
        """Whether every file matched its manifest entry."""
        return not self.findings

    @property
    def repaired(self) -> tuple[ScrubFinding, ...]:
        """Findings healed by child-union repair."""
        return tuple(
            f for f in self.findings if f.action == _ACTION_REPAIRED
        )

    @property
    def quarantined(self) -> tuple[ScrubFinding, ...]:
        """Findings condemned to quarantine."""
        return tuple(
            f for f in self.findings if f.action == _ACTION_QUARANTINED
        )

    def to_dict(self) -> dict:
        """JSON-serializable form for the CLI and logs."""
        return {
            "files_checked": self.files_checked,
            "clean": self.is_clean,
            "verify_io_bytes": self.verify_io_bytes,
            "repair_io_bytes": self.repair_io_bytes,
            "generation_before": self.generation_before,
            "generation_after": self.generation_after,
            "findings": [f.to_dict() for f in self.findings],
        }


class Scrubber:
    """Verifies a durable store against its manifest and heals rot.

    Args:
        store: the manifested store to scrub.
        hierarchy: the hierarchy the index was built for.  Required
            for repair (it defines which nodes are internal and who
            their children are); when ``None``, the scrubber can only
            detect and report.  When given, it is fingerprint-checked
            against the manifest via
            :meth:`~repro.storage.manifest.DurableBitmapStore.
            verify_hierarchy`.
        accountant: IO tally for verification and repair reads; a
            private one is created when omitted.
    """

    def __init__(
        self,
        store: DurableBitmapStore,
        hierarchy: Hierarchy | None = None,
        accountant: IOAccountant | None = None,
    ):
        self._store = store
        self._hierarchy = hierarchy
        self._accountant = (
            accountant if accountant is not None else IOAccountant()
        )
        if hierarchy is not None:
            store.verify_hierarchy(hierarchy)

    @property
    def accountant(self) -> IOAccountant:
        """The IO accountant charged for every scrub read."""
        return self._accountant

    # ------------------------------------------------------------------
    def verify(self) -> ScrubReport:
        """Detect-only pass: check every file, repair nothing.

        Every finding's action is ``"reported"``; the store is not
        modified.  Detects 100% of at-rest corruptions — any byte
        change flips the CRC32 recorded at commit time.
        """
        return self._scrub(repair=False)

    def run(self) -> ScrubReport:
        """Full pass: detect, repair internal nodes, quarantine the rest.

        Repairs are staged and committed as one new generation (so a
        crash mid-scrub leaves the pre-scrub generation fully live);
        quarantines commit individually after the repairs.
        """
        return self._scrub(repair=True)

    # ------------------------------------------------------------------
    def _scrub(self, repair: bool) -> ScrubReport:
        store = self._store
        manifest = store.manifest
        all_entries = manifest.all_entries()
        generation_before = manifest.generation
        record(
            "scrub.start",
            "scrub",
            generation=generation_before,
            files=len(all_entries),
            repair=repair,
        )
        metrics = get_metrics()

        verify_io = 0
        damaged: list[ScrubFinding] = []
        for name in sorted(all_entries):
            entry = all_entries[name]
            node_id, _seq = _file_identity(name)
            try:
                payload = store.read_physical(name)
            except FileMissingError:
                payload = None
            metrics.inc("scrub_files_verified_total")
            if payload is None:
                kind, detail = _KIND_MISSING, (
                    f"physical file {entry.physical!r} is absent"
                )
            else:
                verify_io += len(payload)
                self._accountant.record_read(name, len(payload))
                if len(payload) != entry.size:
                    kind, detail = _KIND_SIZE, (
                        f"{len(payload)} bytes on disk, manifest "
                        f"records {entry.size}"
                    )
                elif not entry.matches(payload):
                    kind, detail = _KIND_CHECKSUM, (
                        "payload CRC32 differs from the manifest"
                    )
                else:
                    continue
            record(
                "scrub.corrupt", name, corruption=kind, detail=detail
            )
            metrics.inc("scrub_corruptions_total", kind=kind)
            damaged.append(
                ScrubFinding(
                    name=name,
                    kind=kind,
                    action=_ACTION_REPORTED,
                    node_id=node_id,
                    detail=detail,
                )
            )

        if not repair or not damaged:
            report = ScrubReport(
                files_checked=len(all_entries),
                findings=tuple(damaged),
                verify_io_bytes=verify_io,
                repair_io_bytes=0,
                generation_before=generation_before,
                generation_after=store.generation,
            )
            self._record_done(report)
            return report

        findings, repair_io = self._repair_or_quarantine(damaged)
        report = ScrubReport(
            files_checked=len(all_entries),
            findings=tuple(findings),
            verify_io_bytes=verify_io,
            repair_io_bytes=repair_io,
            generation_before=generation_before,
            generation_after=store.generation,
        )
        self._record_done(report)
        return report

    def _record_done(self, report: ScrubReport) -> None:
        record(
            "scrub.done",
            "scrub",
            checked=report.files_checked,
            corrupt=len(report.findings),
            repaired=len(report.repaired),
            quarantined=len(report.quarantined),
            verify_io_bytes=report.verify_io_bytes,
            repair_io_bytes=report.repair_io_bytes,
        )

    # ------------------------------------------------------------------
    def _repair_or_quarantine(
        self, damaged: list[ScrubFinding]
    ) -> tuple[list[ScrubFinding], int]:
        """Heal what the hierarchy's redundancy covers; condemn the rest.

        Damaged internal nodes are processed deepest-level-first, so a
        corrupt parent whose corrupt child is itself repairable sees
        the child's healed payload (from the in-memory stage) when its
        own turn comes.  Returns the final findings plus the exact
        repair IO (bytes read from disk for child payloads).
        """
        store = self._store
        hierarchy = self._hierarchy
        manifest = store.manifest
        metrics = get_metrics()
        damaged_names = {f.name for f in damaged}
        staged: dict[str, bytes] = {}
        repair_io = 0
        findings: list[ScrubFinding] = []
        quarantines: list[ScrubFinding] = []

        def depth(finding: ScrubFinding) -> int:
            if hierarchy is None or finding.node_id is None:
                return 0
            if not 0 <= finding.node_id < hierarchy.num_nodes:
                return 0
            return hierarchy.node(finding.node_id).level

        for finding in sorted(damaged, key=depth, reverse=True):
            outcome, io_bytes = self._attempt_repair(
                finding, damaged_names, staged
            )
            repair_io += io_bytes
            if outcome.action == _ACTION_REPAIRED:
                damaged_names.discard(finding.name)
                metrics.inc(
                    "scrub_repairs_total", kind=finding.kind
                )
                record(
                    "scrub.repair",
                    finding.name,
                    node_id=outcome.node_id,
                    corruption=finding.kind,
                    io_bytes=io_bytes,
                )
                findings.append(outcome)
            else:
                quarantines.append(outcome)

        # One atomic commit for every successful repair: a crash before
        # this point leaves the pre-scrub generation fully live.
        if staged:
            with store.begin_build(replace_all=False) as build:
                for name, payload in staged.items():
                    build.add(name, payload)
        for outcome in quarantines:
            store.quarantine(outcome.name)
            record(
                "scrub.quarantine",
                outcome.name,
                node_id=outcome.node_id,
                corruption=outcome.kind,
                detail=outcome.detail,
            )
            findings.append(outcome)
        return findings, repair_io

    def _attempt_repair(
        self,
        finding: ScrubFinding,
        damaged_names: set[str],
        staged: dict[str, bytes],
    ) -> tuple[ScrubFinding, int]:
        """Try one child-union repair; returns (finding, io_bytes)."""
        hierarchy = self._hierarchy

        def quarantined(reason: str) -> tuple[ScrubFinding, int]:
            return (
                ScrubFinding(
                    name=finding.name,
                    kind=finding.kind,
                    action=_ACTION_QUARANTINED,
                    node_id=finding.node_id,
                    detail=reason,
                ),
                0,
            )

        if hierarchy is None:
            return quarantined(
                "no hierarchy available for child-union repair"
            )
        node_id, seq = _file_identity(finding.name)
        if node_id is None or not 0 <= node_id < hierarchy.num_nodes:
            return quarantined(
                f"file name {finding.name!r} maps to no hierarchy node"
            )
        node = hierarchy.node(node_id)
        if node.is_leaf:
            return quarantined(
                "leaf bitmap: no redundancy below it to repair from"
            )

        # A delta file's redundancy source is the *same* delta
        # generation's child files: the OR-of-children identity holds
        # over any row range, the batch included.
        child_bitmaps: list[WahBitmap] = []
        io_bytes = 0
        for child_id in node.children:
            child_name = (
                node_file_name(child_id)
                if seq is None
                else delta_file_name(seq, child_id)
            )
            payload, child_io, reason = self._child_payload(
                child_name, damaged_names, staged
            )
            io_bytes += child_io
            if payload is None:
                return quarantined(
                    f"child {child_name!r} unavailable: {reason}"
                )
            try:
                child_bitmaps.append(deserialize_wah(payload))
            except BitmapDecodeError as err:
                return quarantined(
                    f"child {child_name!r} payload undecodable: {err}"
                )

        repaired = serialize_wah(WahBitmap.union_all(child_bitmaps))
        entry = self._store.manifest.entry(finding.name)
        if not entry.matches(repaired):
            return (
                ScrubFinding(
                    name=finding.name,
                    kind=finding.kind,
                    action=_ACTION_QUARANTINED,
                    node_id=node_id,
                    detail=(
                        "re-derived payload does not match the "
                        "manifest checksum; children and parent "
                        "disagree"
                    ),
                ),
                io_bytes,
            )
        staged[finding.name] = repaired
        return (
            ScrubFinding(
                name=finding.name,
                kind=finding.kind,
                action=_ACTION_REPAIRED,
                node_id=node_id,
                detail=(
                    f"re-derived from {len(child_bitmaps)} children, "
                    f"byte-identical to the committed payload"
                ),
            ),
            io_bytes,
        )

    def _child_payload(
        self,
        child_name: str,
        damaged_names: set[str],
        staged: dict[str, bytes],
    ) -> tuple[bytes | None, int, str]:
        """A child's trustworthy payload, plus the IO spent getting it.

        Preference order: a payload repaired earlier in this scrub
        (free — already in memory), then a disk read verified against
        the manifest.  Children still listed as damaged, missing from
        the manifest, or failing verification yield ``None`` with a
        reason.
        """
        if child_name in staged:
            return staged[child_name], 0, ""
        if child_name in damaged_names:
            return None, 0, "child is itself damaged and unrepaired"
        store = self._store
        if not store.manifest.has(child_name):
            return None, 0, "child is not in the manifest"
        try:
            payload = store.read_physical(child_name)
        except StorageError as err:
            return None, 0, f"child unreadable: {err}"
        self._accountant.record_read(child_name, len(payload))
        entry = store.manifest.entry(child_name)
        if not entry.matches(payload):
            # Charged but useless: the bytes were read, then dropped.
            self._accountant.record_discard(child_name, len(payload))
            return (
                None,
                len(payload),
                "child bytes on disk fail their manifest checksum",
            )
        return payload, len(payload), ""
