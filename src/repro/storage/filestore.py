"""Simulated secondary storage for bitmap files.

Each hierarchy node's bitmap lives in one named file; the paper's IO
metric — "amount of data read" — is the total size of the files fetched.
The store can be backed by a real directory (so file sizes are genuinely
what the OS reports) or kept in memory for fast tests.

All failure modes surface as typed :class:`~repro.errors.StorageError`
subclasses carrying the file name and offset — raw ``OSError`` /
``KeyError`` never leak.  An optional :class:`~repro.storage.faults.
FaultPolicy` lets tests and experiments deterministically inject
transient errors, torn reads, bit flips, and slow reads on the read
path.
"""

from __future__ import annotations

import errno
import os
from collections.abc import Iterator
from pathlib import Path

from ..errors import (
    FileMissingError,
    StorageError,
    StorageReadError,
    TransientStorageError,
)
from .faults import FaultPolicy, get_default_fault_policy

__all__ = ["BitmapFileStore"]

#: OS error codes that typically clear on retry.
_TRANSIENT_ERRNOS = frozenset(
    {errno.EIO, errno.EAGAIN, errno.EINTR, errno.EBUSY}
)


class BitmapFileStore:
    """A flat namespace of immutable bitmap files.

    Args:
        directory: when given, files are written beneath this directory
            (created if missing); when ``None``, the store is in-memory.
        fault_policy: read-fault injector; falls back to the module
            default installed via :func:`~repro.storage.faults.
            set_default_fault_policy` (``None`` = healthy storage).
    """

    def __init__(
        self,
        directory: str | os.PathLike | None = None,
        fault_policy: FaultPolicy | None = None,
    ):
        self._directory: Path | None = None
        self._blobs: dict[str, bytes] = {}
        self._fault_policy = (
            fault_policy
            if fault_policy is not None
            else get_default_fault_policy()
        )
        if directory is not None:
            self._directory = Path(directory)
            self._directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def _path_for(self, name: str) -> Path:
        if "/" in name or "\\" in name or name in ("", ".", ".."):
            raise StorageError(f"invalid bitmap file name {name!r}")
        assert self._directory is not None
        return self._directory / name

    @property
    def is_persistent(self) -> bool:
        """Whether files are backed by a real directory."""
        return self._directory is not None

    @property
    def fault_policy(self) -> FaultPolicy | None:
        """The active read-fault injector (``None`` = healthy)."""
        return self._fault_policy

    def set_fault_policy(self, policy: FaultPolicy | None) -> None:
        """Install (or clear) the read-fault injector."""
        self._fault_policy = policy

    @staticmethod
    def _wrap_os_error(name: str, err: OSError) -> StorageReadError:
        if err.errno in _TRANSIENT_ERRNOS:
            return TransientStorageError(name, 0, err.strerror or str(err))
        return StorageReadError(name, 0, err.strerror or str(err))

    def write(self, name: str, payload: bytes) -> None:
        """Store a bitmap file (overwrites any previous content)."""
        if self._directory is None:
            self._blobs[name] = bytes(payload)
            return
        try:
            self._path_for(name).write_bytes(payload)
        except OSError as err:
            raise self._wrap_os_error(name, err) from err

    def read(self, name: str) -> bytes:
        """Fetch a bitmap file's full content.

        Raises :class:`FileMissingError` for unknown names,
        :class:`TransientStorageError` for retryable failures (real or
        injected), and :class:`StorageReadError` for everything else.
        """
        if self._directory is None:
            try:
                payload = self._blobs[name]
            except KeyError:
                raise FileMissingError(name) from None
        else:
            path = self._path_for(name)
            try:
                payload = path.read_bytes()
            except FileNotFoundError:
                raise FileMissingError(name) from None
            except OSError as err:
                raise self._wrap_os_error(name, err) from err
        if self._fault_policy is not None:
            payload = self._fault_policy.filter_read(name, payload)
        return payload

    def size_bytes(self, name: str) -> int:
        """Size of a bitmap file, in bytes.

        Missing names raise :class:`FileMissingError` on both backends.
        """
        if self._directory is None:
            try:
                return len(self._blobs[name])
            except KeyError:
                raise FileMissingError(name) from None
        path = self._path_for(name)
        try:
            return path.stat().st_size
        except FileNotFoundError:
            raise FileMissingError(name) from None
        except OSError as err:
            raise self._wrap_os_error(name, err) from err

    def delete(self, name: str) -> None:
        """Remove a bitmap file (missing names raise
        :class:`FileMissingError`)."""
        if self._directory is None:
            try:
                del self._blobs[name]
            except KeyError:
                raise FileMissingError(name) from None
            return
        path = self._path_for(name)
        try:
            path.unlink()
        except FileNotFoundError:
            raise FileMissingError(name) from None
        except OSError as err:
            raise self._wrap_os_error(name, err) from err

    def exists(self, name: str) -> bool:
        """Whether a bitmap file with this name exists."""
        if self._directory is None:
            return name in self._blobs
        return self._path_for(name).exists()

    def names(self) -> Iterator[str]:
        """Iterate the names of all stored bitmap files."""
        if self._directory is None:
            yield from sorted(self._blobs)
        else:
            for path in sorted(self._directory.iterdir()):
                if path.is_file():
                    yield path.name

    def total_bytes(self) -> int:
        """Total size of every stored file."""
        return sum(self.size_bytes(name) for name in self.names())

    def __contains__(self, name: str) -> bool:
        return self.exists(name)

    def __repr__(self) -> str:
        backing = (
            str(self._directory) if self._directory else "memory"
        )
        faults = (
            "" if self._fault_policy is None
            else f", faults={self._fault_policy!r}"
        )
        return f"BitmapFileStore(backing={backing!r}{faults})"
