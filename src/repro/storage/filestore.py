"""Simulated secondary storage for bitmap files.

Each hierarchy node's bitmap lives in one named file; the paper's IO
metric — "amount of data read" — is the total size of the files fetched.
The store can be backed by a real directory (so file sizes are genuinely
what the OS reports) or kept in memory for fast tests.
"""

from __future__ import annotations

import os
from collections.abc import Iterator
from pathlib import Path

from ..errors import StorageError

__all__ = ["BitmapFileStore"]


class BitmapFileStore:
    """A flat namespace of immutable bitmap files.

    Args:
        directory: when given, files are written beneath this directory
            (created if missing); when ``None``, the store is in-memory.
    """

    def __init__(self, directory: str | os.PathLike | None = None):
        self._directory: Path | None = None
        self._blobs: dict[str, bytes] = {}
        if directory is not None:
            self._directory = Path(directory)
            self._directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def _path_for(self, name: str) -> Path:
        if "/" in name or "\\" in name or name in ("", ".", ".."):
            raise StorageError(f"invalid bitmap file name {name!r}")
        assert self._directory is not None
        return self._directory / name

    @property
    def is_persistent(self) -> bool:
        """Whether files are backed by a real directory."""
        return self._directory is not None

    def write(self, name: str, payload: bytes) -> None:
        """Store a bitmap file (overwrites any previous content)."""
        if self._directory is None:
            self._blobs[name] = bytes(payload)
        else:
            self._path_for(name).write_bytes(payload)

    def read(self, name: str) -> bytes:
        """Fetch a bitmap file's full content."""
        if self._directory is None:
            try:
                return self._blobs[name]
            except KeyError:
                raise StorageError(
                    f"no bitmap file named {name!r}"
                ) from None
        path = self._path_for(name)
        try:
            return path.read_bytes()
        except FileNotFoundError:
            raise StorageError(f"no bitmap file named {name!r}") from None

    def size_bytes(self, name: str) -> int:
        """Size of a bitmap file, in bytes."""
        if self._directory is None:
            try:
                return len(self._blobs[name])
            except KeyError:
                raise StorageError(
                    f"no bitmap file named {name!r}"
                ) from None
        path = self._path_for(name)
        try:
            return path.stat().st_size
        except FileNotFoundError:
            raise StorageError(f"no bitmap file named {name!r}") from None

    def exists(self, name: str) -> bool:
        """Whether a bitmap file with this name exists."""
        if self._directory is None:
            return name in self._blobs
        return self._path_for(name).exists()

    def names(self) -> Iterator[str]:
        """Iterate the names of all stored bitmap files."""
        if self._directory is None:
            yield from sorted(self._blobs)
        else:
            for path in sorted(self._directory.iterdir()):
                if path.is_file():
                    yield path.name

    def total_bytes(self) -> int:
        """Total size of every stored file."""
        return sum(self.size_bytes(name) for name in self.names())

    def __contains__(self, name: str) -> bool:
        return self.exists(name)

    def __repr__(self) -> str:
        backing = (
            str(self._directory) if self._directory else "memory"
        )
        return f"BitmapFileStore(backing={backing!r})"
