"""Simulated secondary storage for bitmap files.

Each hierarchy node's bitmap lives in one named file; the paper's IO
metric — "amount of data read" — is the total size of the files fetched.
The store can be backed by a real directory (so file sizes are genuinely
what the OS reports) or kept in memory for fast tests.

All failure modes surface as typed :class:`~repro.errors.StorageError`
subclasses carrying the file name and offset — raw ``OSError`` /
``KeyError`` never leak (reads raise :class:`~repro.errors.
StorageReadError` subclasses, writes and deletes raise
:class:`~repro.errors.StorageWriteError`).  An optional
:class:`~repro.storage.faults.FaultPolicy` lets tests and experiments
deterministically inject transient errors, torn reads, bit flips, and
slow reads on the read path, plus planned crashes and torn writes on
the write path.

Directory-backed writes are **atomic**: the payload lands in a hidden
``.<name>.tmp`` sibling, is fsynced, and is then ``os.replace``d over
the target — a crash at any byte leaves either the old file intact or
the new file complete, never a torn target.  Mutations (write, delete)
and the memory backend's map are serialized under one lock so a
concurrent scrubber observes ``exists``/``delete`` transitions
atomically.
"""

from __future__ import annotations

import errno
import os
import threading
from collections.abc import Iterator
from pathlib import Path

from ..errors import (
    FileMissingError,
    SimulatedCrashError,
    StorageError,
    StorageReadError,
    StorageWriteError,
    TransientStorageError,
)
from .faults import FaultPolicy, get_default_fault_policy

__all__ = ["BitmapFileStore"]

#: OS error codes that typically clear on retry.
_TRANSIENT_ERRNOS = frozenset(
    {errno.EIO, errno.EAGAIN, errno.EINTR, errno.EBUSY}
)


class BitmapFileStore:
    """A flat namespace of immutable bitmap files.

    Args:
        directory: when given, files are written beneath this directory
            (created if missing); when ``None``, the store is in-memory.
        fault_policy: read-fault injector; falls back to the module
            default installed via :func:`~repro.storage.faults.
            set_default_fault_policy` (``None`` = healthy storage).
    """

    def __init__(
        self,
        directory: str | os.PathLike | None = None,
        fault_policy: FaultPolicy | None = None,
    ):
        self._directory: Path | None = None
        self._blobs: dict[str, bytes] = {}
        # Serializes mutations (write/delete) and the memory backend's
        # blob map, so a concurrent scrubber sees exists/delete flips
        # atomically — the same discipline BufferPool applies to its
        # resident set.
        self._lock = threading.RLock()
        self._fault_policy = (
            fault_policy
            if fault_policy is not None
            else get_default_fault_policy()
        )
        if directory is not None:
            self._directory = Path(directory)
            self._directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def _path_for(self, name: str) -> Path:
        if "/" in name or "\\" in name or name in ("", ".", ".."):
            raise StorageError(f"invalid bitmap file name {name!r}")
        assert self._directory is not None
        return self._directory / name

    @property
    def is_persistent(self) -> bool:
        """Whether files are backed by a real directory."""
        return self._directory is not None

    @property
    def fault_policy(self) -> FaultPolicy | None:
        """The active read-fault injector (``None`` = healthy)."""
        return self._fault_policy

    def set_fault_policy(self, policy: FaultPolicy | None) -> None:
        """Install (or clear) the read-fault injector."""
        self._fault_policy = policy

    @staticmethod
    def _wrap_os_error(name: str, err: OSError) -> StorageReadError:
        if err.errno in _TRANSIENT_ERRNOS:
            return TransientStorageError(name, 0, err.strerror or str(err))
        return StorageReadError(name, 0, err.strerror or str(err))

    @staticmethod
    def _wrap_write_error(name: str, err: OSError) -> StorageWriteError:
        return StorageWriteError(name, err.strerror or str(err))

    def write(self, name: str, payload: bytes) -> None:
        """Store a bitmap file atomically (overwriting any previous
        content).

        On the directory backend the payload is written to a hidden
        ``.<name>.tmp`` sibling, fsynced, and ``os.replace``d over the
        target, so a crash mid-write never leaves a torn target: the
        old content survives until the rename commits the new one.
        Write-path ``OSError``s surface as typed
        :class:`~repro.errors.StorageWriteError`; an installed
        :class:`~repro.storage.faults.FaultPolicy` may inject planned
        crashes (``"write.begin"`` / ``"write.rename"`` crash points)
        and torn writes.
        """
        payload = bytes(payload)
        policy = self._fault_policy
        if self._directory is None:
            with self._lock:
                if policy is not None:
                    policy.crash_point("write.begin")
                self._blobs[name] = payload
            return
        path = self._path_for(name)
        try:
            with self._lock:
                self._atomic_replace(path, payload)
        except OSError as err:
            raise self._wrap_write_error(name, err) from err

    def _atomic_replace(
        self,
        path: Path,
        payload: bytes,
        label_prefix: str = "write",
    ) -> None:
        """Write ``payload`` to ``path`` via tmp + fsync + rename.

        The shared atomic-write primitive: used for bitmap files (label
        prefix ``write``) and by the manifest commit protocol (label
        prefix ``commit.manifest``), with crash points
        ``<prefix>.begin`` / ``<prefix>.torn`` / ``<prefix>.rename``
        consulted between steps.  The caller wraps ``OSError``.
        """
        policy = self._fault_policy
        tmp = path.with_name(f".{path.name}.tmp")
        prefix: int | None = None
        if policy is not None:
            policy.crash_point(f"{label_prefix}.begin")
            prefix = policy.torn_write_prefix(
                f"{label_prefix}.torn", len(payload)
            )
        with open(tmp, "wb") as handle:
            if prefix is not None:
                handle.write(payload[:prefix])
                handle.flush()
                os.fsync(handle.fileno())
                raise SimulatedCrashError(
                    f"torn write of {path.name!r} after "
                    f"{prefix} bytes"
                )
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        if policy is not None:
            policy.crash_point(f"{label_prefix}.rename")
        os.replace(tmp, path)

    def read(self, name: str) -> bytes:
        """Fetch a bitmap file's full content.

        Raises :class:`FileMissingError` for unknown names,
        :class:`TransientStorageError` for retryable failures (real or
        injected), and :class:`StorageReadError` for everything else.
        """
        if self._directory is None:
            try:
                with self._lock:
                    payload = self._blobs[name]
            except KeyError:
                raise FileMissingError(name) from None
        else:
            path = self._path_for(name)
            try:
                payload = path.read_bytes()
            except FileNotFoundError:
                raise FileMissingError(name) from None
            except OSError as err:
                raise self._wrap_os_error(name, err) from err
        if self._fault_policy is not None:
            payload = self._fault_policy.filter_read(name, payload)
        return payload

    def size_bytes(self, name: str) -> int:
        """Size of a bitmap file, in bytes.

        Missing names raise :class:`FileMissingError` on both backends.
        """
        if self._directory is None:
            try:
                with self._lock:
                    return len(self._blobs[name])
            except KeyError:
                raise FileMissingError(name) from None
        path = self._path_for(name)
        try:
            return path.stat().st_size
        except FileNotFoundError:
            raise FileMissingError(name) from None
        except OSError as err:
            raise self._wrap_os_error(name, err) from err

    def delete(self, name: str) -> None:
        """Remove a bitmap file (missing names raise
        :class:`FileMissingError`).

        Environmental write-path failures surface as typed
        :class:`~repro.errors.StorageWriteError`.  The deletion holds
        the store lock, so a concurrent ``exists`` never observes a
        half-applied removal.
        """
        with self._lock:
            if self._directory is None:
                try:
                    del self._blobs[name]
                except KeyError:
                    raise FileMissingError(name) from None
                return
            path = self._path_for(name)
            try:
                path.unlink()
            except FileNotFoundError:
                raise FileMissingError(name) from None
            except OSError as err:
                raise self._wrap_write_error(name, err) from err

    def exists(self, name: str) -> bool:
        """Whether a bitmap file with this name exists.

        Taken under the store lock, so the answer is consistent with
        any concurrent ``write``/``delete`` (no torn observations).
        """
        with self._lock:
            if self._directory is None:
                return name in self._blobs
            return self._path_for(name).exists()

    def names(self) -> Iterator[str]:
        """Iterate the names of all stored bitmap files.

        Hidden files (leading ``.``) are skipped: the atomic write
        protocol stages payloads in ``.<name>.tmp`` siblings, and a
        crashed write's leftover staging file must not masquerade as a
        stored bitmap.
        """
        if self._directory is None:
            with self._lock:
                names = sorted(self._blobs)
            yield from names
        else:
            for path in sorted(self._directory.iterdir()):
                if path.is_file() and not path.name.startswith("."):
                    yield path.name

    def total_bytes(self) -> int:
        """Total size of every stored file."""
        return sum(self.size_bytes(name) for name in self.names())

    def __contains__(self, name: str) -> bool:
        return self.exists(name)

    def __repr__(self) -> str:
        backing = (
            str(self._directory) if self._directory else "memory"
        )
        faults = (
            "" if self._fault_policy is None
            else f", faults={self._fault_policy!r}"
        )
        return f"BitmapFileStore(backing={backing!r}{faults})"
