"""Optional disk-latency model on top of the byte-accurate accounting.

The paper's metric is bytes read; translating bytes into wall-clock
time needs a device model (their testbed: a 500 GB 7200 RPM SATA drive
with a 16 MB buffer).  :class:`DiskProfile` provides a simple
seek-plus-bandwidth model so experiments can report *estimated seconds*
alongside MB — useful because, as noted in DESIGN.md, a pure-Python
harness cannot reproduce raw device timings faithfully.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from ..obs.trace import TraceEvent
from .accounting import IOSnapshot
from .costmodel import MB

__all__ = [
    "DiskProfile",
    "estimate_seconds",
    "estimate_seconds_from_events",
]


@dataclass(frozen=True, slots=True)
class DiskProfile:
    """A sequential-read device model.

    Attributes:
        name: human-readable label.
        seek_ms: average positioning latency charged per file read.
        bandwidth_mb_per_s: sustained sequential read bandwidth.
    """

    name: str
    seek_ms: float
    bandwidth_mb_per_s: float

    def __post_init__(self) -> None:
        if self.seek_ms < 0:
            raise ValueError(
                f"seek_ms must be >= 0, got {self.seek_ms}"
            )
        if self.bandwidth_mb_per_s <= 0:
            raise ValueError(
                f"bandwidth_mb_per_s must be > 0, got "
                f"{self.bandwidth_mb_per_s}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def sata_7200(cls) -> "DiskProfile":
        """The paper's testbed class: 7200 RPM SATA (≈8.5 ms seek,
        ≈120 MB/s sustained)."""
        return cls("sata-7200", seek_ms=8.5, bandwidth_mb_per_s=120.0)

    @classmethod
    def nvme(cls) -> "DiskProfile":
        """A modern NVMe SSD (negligible seek, multi-GB/s)."""
        return cls("nvme", seek_ms=0.02, bandwidth_mb_per_s=3000.0)

    @classmethod
    def cloud_object_store(cls) -> "DiskProfile":
        """Object storage: high first-byte latency, decent bandwidth."""
        return cls(
            "object-store", seek_ms=30.0, bandwidth_mb_per_s=200.0
        )

    # ------------------------------------------------------------------
    def read_seconds(self, nbytes: int, num_reads: int = 1) -> float:
        """Estimated time to perform ``num_reads`` reads totalling
        ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if num_reads < 0:
            raise ValueError(
                f"num_reads must be >= 0, got {num_reads}"
            )
        transfer = (nbytes / MB) / self.bandwidth_mb_per_s
        positioning = num_reads * self.seek_ms / 1000.0
        return transfer + positioning


def estimate_seconds(
    snapshot: IOSnapshot, profile: DiskProfile
) -> float:
    """Estimated wall-clock time of a recorded IO trace on a device."""
    return profile.read_seconds(
        snapshot.bytes_read, snapshot.read_count
    )


#: Event kinds that represent storage IO and are priced by
#: :func:`estimate_seconds_from_events`.
IO_EVENT_KINDS = frozenset(
    {"storage.read", "sim.pin", "sim.query"}
)


def estimate_seconds_from_events(
    events: Iterable[TraceEvent], profile: DiskProfile
) -> float:
    """Estimated device time of an event stream — measured or simulated.

    Accepts the unified trace schema: ``storage.read`` events recorded
    by a live :class:`~repro.storage.filestore.BitmapFileStore`
    (``nbytes`` per read) and ``sim.pin`` / ``sim.query`` events
    produced by :meth:`~repro.core.simulate.WorkloadSimulation.
    to_events` (``nbytes`` and ``reads`` per entry).  Both flavors are
    priced with the same :meth:`DiskProfile.read_seconds` model, so a
    simulated workload and a recorded execution of it can be compared
    directly.  Non-IO events are ignored.
    """
    total_bytes = 0
    total_reads = 0
    for event in events:
        if event.kind not in IO_EVENT_KINDS:
            continue
        total_bytes += int(event.attrs.get("nbytes", 0))
        total_reads += int(event.attrs.get("reads", 1))
    return profile.read_seconds(total_bytes, total_reads)
