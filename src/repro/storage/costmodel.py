"""The paper's piecewise bitmap read-cost model (§2.2.1, Fig. 1).

The cost of a bitmap operation is modeled as proportional to the size of
the compressed bitmap file on secondary storage, which for WAH is a
function of bit density.  The model also encodes the complement trick: a
bitmap denser than 0.5 is stored negated, so only the *effective* density
``min(d, 1 - d)`` matters (§2.2.1, citing [21]).

Model (densities ``0 < Dx1 < Dx2 < Dx3 < 0.5``, constants ``a``, ``b``,
``k1``..``k3``)::

    readCost(d) = 0              if d == 0 or d == 1
                = a * d' + b     if d' <= Dx1        (d' = min(d, 1-d))
                = k1             if Dx1 < d' <= Dx2
                = k2             if Dx2 < d' <= Dx3
                = k3             otherwise

Costs are expressed in **megabytes** (MiB), matching the paper's
"amount of data read (in mb)" axis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import CalibrationError

__all__ = ["CostModel", "MB"]

#: Bytes per megabyte used throughout the storage simulator.
MB = float(1 << 20)


@dataclass(frozen=True, slots=True)
class CostModel:
    """Piecewise read-cost model of §2.2.1.

    Attributes:
        a, b: slope/intercept of the sparse linear region (MB per unit
            density, MB).
        k1, k2, k3: plateau costs (MB) of the three denser regions.
        dx1, dx2, dx3: effective-density thresholds between regions.
    """

    a: float
    b: float
    k1: float
    k2: float
    k3: float
    dx1: float
    dx2: float
    dx3: float

    def __post_init__(self) -> None:
        if not 0.0 < self.dx1 < self.dx2 < self.dx3 < 0.5:
            raise ValueError(
                f"thresholds must satisfy 0 < Dx1 < Dx2 < Dx3 < 0.5, "
                f"got ({self.dx1}, {self.dx2}, {self.dx3})"
            )
        for label, value in (
            ("a", self.a),
            ("b", self.b),
            ("k1", self.k1),
            ("k2", self.k2),
            ("k3", self.k3),
        ):
            if value < 0 or not math.isfinite(value):
                raise ValueError(
                    f"constant {label} must be finite and >= 0, "
                    f"got {value}"
                )

    # ------------------------------------------------------------------
    @classmethod
    def paper_2014(cls) -> "CostModel":
        """The constants published in the paper (Fig. 1 caption).

        The paper gives ``Dx1=0.01, Dx2=0.015, Dx3=0.03`` and
        ``a=1043, b=0.5895`` for a 500 GB 7200 RPM SATA drive but omits
        ``k1..k3``; the plateau values here are read off Fig. 1 (≈15,
        ≈22 and ≈30 MB).  With 150M-row bitmaps these constants put the
        reproduction's "data read" numbers on the same absolute scale as
        the paper's charts.
        """
        return cls(
            a=1043.0,
            b=0.5895,
            k1=15.0,
            k2=22.0,
            k3=30.0,
            dx1=0.01,
            dx2=0.015,
            dx3=0.03,
        )

    @classmethod
    def fitted(
        cls,
        samples: dict[float, float],
        dx1: float = 0.01,
        dx2: float = 0.015,
        dx3: float = 0.03,
    ) -> "CostModel":
        """Fit the model to measured ``{density: size_mb}`` samples.

        ``a``/``b`` come from a least-squares fit over the sparse region;
        each plateau is the mean of its region's samples, clamped so the
        fitted curve is monotone non-decreasing in effective density
        (``a*dx1 + b <= k1 <= k2 <= k3``) even when sample noise would
        order the plateau means the other way.  Regions with no samples
        fall back to the previous region's boundary value.

        Raises:
            CalibrationError: if the sparse region has fewer than two
                samples (the line would be underdetermined).
        """
        sparse: list[tuple[float, float]] = []
        bands: dict[int, list[float]] = {1: [], 2: [], 3: []}
        for density, size_mb in samples.items():
            effective = min(density, 1.0 - density)
            if effective <= 0.0:
                continue
            if effective <= dx1:
                sparse.append((effective, size_mb))
            elif effective <= dx2:
                bands[1].append(size_mb)
            elif effective <= dx3:
                bands[2].append(size_mb)
            else:
                bands[3].append(size_mb)
        if len(sparse) < 2:
            raise CalibrationError(
                f"need >= 2 samples with effective density <= {dx1} to "
                f"fit the linear region, got {len(sparse)}"
            )
        n = len(sparse)
        sum_x = sum(x for x, _ in sparse)
        sum_y = sum(y for _, y in sparse)
        sum_xx = sum(x * x for x, _ in sparse)
        sum_xy = sum(x * y for x, y in sparse)
        denom = n * sum_xx - sum_x * sum_x
        if abs(denom) <= 1e-12 * max(1.0, n * sum_xx):
            raise CalibrationError(
                "sparse-region samples are degenerate (all at one density)"
            )
        a = (n * sum_xy - sum_x * sum_y) / denom
        b = (sum_y - a * sum_x) / n
        a = max(a, 0.0)
        b = max(b, 0.0)
        boundary = a * dx1 + b
        k1 = (
            max(sum(bands[1]) / len(bands[1]), boundary)
            if bands[1]
            else boundary
        )
        k2 = max(sum(bands[2]) / len(bands[2]), k1) if bands[2] else k1
        k3 = max(sum(bands[3]) / len(bands[3]), k2) if bands[3] else k2
        return cls(a=a, b=b, k1=k1, k2=k2, k3=k3,
                   dx1=dx1, dx2=dx2, dx3=dx3)

    # ------------------------------------------------------------------
    def effective_density(self, density: float) -> float:
        """Density after the complement-storage trick: ``min(d, 1-d)``."""
        if not 0.0 <= density <= 1.0:
            raise ValueError(
                f"density must lie in [0, 1], got {density}"
            )
        return min(density, 1.0 - density)

    def read_cost_mb(self, density: float) -> float:
        """Modeled cost (MB) of reading a bitmap with the given density."""
        effective = self.effective_density(density)
        if effective == 0.0:
            return 0.0
        if effective <= self.dx1:
            return self.a * effective + self.b
        if effective <= self.dx2:
            return self.k1
        if effective <= self.dx3:
            return self.k2
        return self.k3

    def size_mb(self, density: float) -> float:
        """Modeled on-disk/in-memory size of the bitmap (same curve).

        The paper models IO cost as proportional to file size, so the
        same function defines the memory footprint ``S_Bn`` used by the
        Case-3 budget constraint (§2.3.4).
        """
        return self.read_cost_mb(density)

    def size_bytes(self, density: float) -> int:
        """Modeled size rounded to whole bytes."""
        return int(round(self.read_cost_mb(density) * MB))
