"""Cost-model calibration against the in-repo WAH implementation.

Reproduces the methodology behind paper Fig. 1: generate bitmaps of known
density, measure their compressed on-disk size, and fit the piecewise
model of §2.2.1 to the measurements.  The paper calibrated against the
Java WAH library on 150M-row bitmaps; we calibrate against
:class:`~repro.bitmap.wah.WahBitmap` at a configurable row count.
"""

from __future__ import annotations

import numpy as np

from ..bitmap.serialization import serialize_wah
from ..bitmap.wah import WahBitmap
from .costmodel import MB, CostModel

__all__ = [
    "random_bitmap",
    "measure_wah_sizes",
    "calibrate_cost_model",
    "DEFAULT_CALIBRATION_DENSITIES",
]

#: Densities sampled for calibration; mirrors Fig. 1's log-spaced x axis.
DEFAULT_CALIBRATION_DENSITIES: tuple[float, ...] = (
    0.0005, 0.001, 0.002, 0.004, 0.006, 0.008, 0.01,
    0.0125, 0.015, 0.02, 0.025, 0.03, 0.05, 0.1, 0.2, 0.3, 0.5,
)


def random_bitmap(
    density: float, num_bits: int, rng: np.random.Generator
) -> WahBitmap:
    """A uniformly random bitmap with (expected) the given density.

    Uniform random bits are the worst case for run-length compression,
    which matches how bitmap libraries are usually characterized.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must lie in [0, 1], got {density}")
    target = int(round(density * num_bits))
    positions = rng.choice(num_bits, size=target, replace=False)
    return WahBitmap.from_positions(positions, num_bits)


def measure_wah_sizes(
    num_bits: int,
    densities: tuple[float, ...] = DEFAULT_CALIBRATION_DENSITIES,
    seed: int = 0,
    store_complement: bool = True,
) -> dict[float, float]:
    """Measure serialized WAH size (MB) for each density.

    Args:
        num_bits: rows per bitmap.
        densities: densities to sample.
        seed: RNG seed for reproducible measurements.
        store_complement: apply the complement-storage trick — a bitmap
            with density > 0.5 is measured as its negation (§2.2.1).
    """
    rng = np.random.default_rng(seed)
    sizes: dict[float, float] = {}
    for density in densities:
        effective = (
            min(density, 1.0 - density) if store_complement else density
        )
        bitmap = random_bitmap(effective, num_bits, rng)
        sizes[density] = len(serialize_wah(bitmap)) / MB
    return sizes


def calibrate_cost_model(
    num_bits: int,
    densities: tuple[float, ...] = DEFAULT_CALIBRATION_DENSITIES,
    seed: int = 0,
) -> tuple[CostModel, dict[float, float]]:
    """Fit a :class:`CostModel` to this machine's WAH sizes.

    Returns the fitted model together with the raw measurements so
    callers (Fig. 1's bench) can plot model-vs-measured.
    """
    sizes = measure_wah_sizes(num_bits, densities, seed)
    model = CostModel.fitted(sizes)
    return model, sizes
