"""Memory-budgeted buffer pool over the bitmap file store.

Implements the caching semantics the paper's three cases assume:

* **Case 1/2 (no memory constraint)** — an unbounded pool: every bitmap
  is read from storage at most once and then served from memory (Eq. 3).
* **Case 3 (budget ``S_total``)** — the selected cut is *pinned* (read
  once, kept for the whole workload); everything else is streamed, i.e.
  read from storage on every access, because "the operation nodes that
  are not in the cut cannot be cached in memory for re-use" (§2.3.4).

A small LRU overflow area can optionally use whatever budget the pinned
set leaves free — disabled by default to match the paper's accounting.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable

from ..errors import (
    BudgetExceededError,
    StorageError,
    TransientStorageError,
)
from ..obs import get_metrics, record
from .accounting import IOAccountant
from .faults import DEFAULT_RETRY_POLICY, RetryPolicy
from .filestore import BitmapFileStore

__all__ = ["BufferPool"]


class BufferPool:
    """Caches bitmap files read from a :class:`BitmapFileStore`.

    Args:
        store: the backing file store.
        accountant: receives a record for every fetch that actually hits
            storage (cache hits are free).
        budget_bytes: total memory budget; ``None`` means unbounded
            (the no-memory-constraint cases).
        use_spare_budget_lru: when true, unpinned reads may occupy
            leftover budget in an LRU area instead of being streamed.
        retry_policy: how transient storage failures are retried before
            propagating; defaults to a few immediate retries
            (:data:`~repro.storage.faults.DEFAULT_RETRY_POLICY`).  Pass
            ``RetryPolicy(max_attempts=1)`` to disable.
    """

    def __init__(
        self,
        store: BitmapFileStore,
        accountant: IOAccountant | None = None,
        budget_bytes: int | None = None,
        use_spare_budget_lru: bool = False,
        retry_policy: RetryPolicy | None = None,
    ):
        if budget_bytes is not None and budget_bytes < 0:
            raise ValueError(
                f"budget_bytes must be >= 0, got {budget_bytes}"
            )
        self._store = store
        self._accountant = accountant or IOAccountant()
        self._budget = budget_bytes
        self._use_spare_lru = use_spare_budget_lru
        self._retry = retry_policy or DEFAULT_RETRY_POLICY
        self._pinned: dict[str, bytes] = {}
        self._pinned_bytes = 0
        self._lru: OrderedDict[str, bytes] = OrderedDict()
        self._lru_bytes = 0

    # ------------------------------------------------------------------
    @property
    def accountant(self) -> IOAccountant:
        """The IO accountant recording storage fetches."""
        return self._accountant

    @property
    def budget_bytes(self) -> int | None:
        """Total memory budget (``None`` = unbounded)."""
        return self._budget

    @property
    def pinned_bytes(self) -> int:
        """Bytes currently held by pinned files."""
        return self._pinned_bytes

    @property
    def lru_bytes(self) -> int:
        """Bytes currently held by the LRU overflow area."""
        return self._lru_bytes

    @property
    def resident_bytes(self) -> int:
        """Total bytes resident in memory (pinned + LRU).

        Never exceeds ``budget_bytes`` when a budget is set (the
        Case-3 ``S_total`` constraint, §2.3.4).
        """
        return self._pinned_bytes + self._lru_bytes

    @property
    def cached_names(self) -> set[str]:
        """Names currently resident in memory (pinned or LRU)."""
        return set(self._pinned) | set(self._lru)

    @property
    def retry_policy(self) -> RetryPolicy:
        """How transient storage failures are retried."""
        return self._retry

    def _fetch(self, name: str) -> bytes:
        last_error: TransientStorageError | None = None
        metrics = get_metrics()
        for _attempt in self._retry.attempts():
            try:
                payload = self._store.read(name)
            except TransientStorageError as err:
                last_error = err
                self._accountant.record_retry(name)
                record("storage.retry", name, error=str(err))
                metrics.inc("storage_retries_total")
                continue
            self._accountant.record_read(name, len(payload))
            record("storage.read", name, nbytes=len(payload))
            metrics.inc("storage_reads_total")
            metrics.inc("storage_read_bytes_total", len(payload))
            return payload
        assert last_error is not None
        record("storage.error", name, error=str(last_error))
        metrics.inc("storage_errors_total")
        raise last_error

    # ------------------------------------------------------------------
    def pin(self, names: Iterable[str]) -> None:
        """Read the given files once and keep them resident.

        This is how a selected cut is installed before running a
        workload.  Raises :class:`BudgetExceededError` if the pinned
        working set would not fit the budget; no partial pinning happens
        in that case.
        """
        to_pin = [name for name in names if name not in self._pinned]
        additional = sum(
            self._store.size_bytes(name) for name in to_pin
        )
        if (
            self._budget is not None
            and self._pinned_bytes + additional > self._budget
        ):
            raise BudgetExceededError(
                self._pinned_bytes + additional, self._budget
            )
        for name in to_pin:
            if name in self._lru:
                payload = self._lru.pop(name)
                self._lru_bytes -= len(payload)
            else:
                payload = self._fetch(name)
            self._pinned[name] = payload
            self._pinned_bytes += len(payload)
            record("cache.pin", name, nbytes=len(payload))
        get_metrics().inc("cache_pins_total", len(to_pin))
        # Pinning shrinks the spare budget the LRU area may occupy;
        # evict until pinned + LRU fits the budget again, or the
        # resident set would violate the Case-3 S_total constraint.
        self._shrink_lru_to_spare()

    def _shrink_lru_to_spare(self) -> None:
        if self._budget is None:
            return
        spare = self._budget - self._pinned_bytes
        while self._lru and self._lru_bytes > spare:
            evicted_name, evicted = self._lru.popitem(last=False)
            self._lru_bytes -= len(evicted)
            record("cache.evict", evicted_name, nbytes=len(evicted))
            get_metrics().inc("cache_evictions_total")

    def unpin_all(self) -> None:
        """Release every pinned file (contents are dropped)."""
        self._pinned.clear()
        self._pinned_bytes = 0

    def get(self, name: str) -> bytes:
        """Fetch a file through the pool.

        Pinned files and (if enabled) LRU-resident files are served from
        memory; everything else is fetched from storage and charged to
        the accountant.
        """
        if name in self._pinned:
            record("cache.hit", name, tier="pinned")
            get_metrics().inc("cache_hits_total", tier="pinned")
            return self._pinned[name]
        if name in self._lru:
            self._lru.move_to_end(name)
            record("cache.hit", name, tier="lru")
            get_metrics().inc("cache_hits_total", tier="lru")
            return self._lru[name]
        record("cache.miss", name)
        get_metrics().inc("cache_misses_total")
        payload = self._fetch(name)
        self._maybe_admit(name, payload)
        return payload

    def _maybe_admit(self, name: str, payload: bytes) -> None:
        if self._budget is None:
            # Unconstrained: cache everything (Case 1/2 semantics).
            self._lru[name] = payload
            self._lru_bytes += len(payload)
            return
        if not self._use_spare_lru:
            return
        spare = self._budget - self._pinned_bytes
        if len(payload) > spare:
            return
        while self._lru_bytes + len(payload) > spare and self._lru:
            evicted_name, evicted = self._lru.popitem(last=False)
            self._lru_bytes -= len(evicted)
            record("cache.evict", evicted_name, nbytes=len(evicted))
            get_metrics().inc("cache_evictions_total")
        if self._lru_bytes + len(payload) <= spare:
            self._lru[name] = payload
            self._lru_bytes += len(payload)

    def invalidate(self, name: str) -> bool:
        """Drop a cached copy (pinned or LRU); returns whether it was
        pinned.

        Used when a resident payload turns out to be corrupt — the next
        :meth:`get` re-fetches from storage.
        """
        was_pinned = name in self._pinned
        if was_pinned:
            payload = self._pinned.pop(name)
            self._pinned_bytes -= len(payload)
            record("cache.invalidate", name, tier="pinned")
        elif name in self._lru:
            payload = self._lru.pop(name)
            self._lru_bytes -= len(payload)
            record("cache.invalidate", name, tier="lru")
        return was_pinned

    def reload(self, name: str) -> bytes:
        """Force a fresh fetch from storage, replacing any cached copy.

        A previously pinned file stays pinned (with the new payload);
        an LRU-resident file is re-admitted under the normal policy.
        The fetch is charged to the accountant like any storage read.
        """
        was_pinned = self.invalidate(name)
        payload = self._fetch(name)
        if was_pinned:
            self._pinned[name] = payload
            self._pinned_bytes += len(payload)
            self._shrink_lru_to_spare()
        else:
            self._maybe_admit(name, payload)
        return payload

    def contains(self, name: str) -> bool:
        """Whether a file is currently resident in memory."""
        return name in self._pinned or name in self._lru

    def clear(self) -> None:
        """Drop all cached content, pinned and unpinned."""
        self.unpin_all()
        self._lru.clear()
        self._lru_bytes = 0

    def verify_store_has(self, names: Iterable[str]) -> None:
        """Raise :class:`StorageError` unless every name exists."""
        missing = [
            name for name in names if not self._store.exists(name)
        ]
        if missing:
            raise StorageError(
                f"bitmap files missing from store: {missing[:5]}"
                + ("..." if len(missing) > 5 else "")
            )

    def __repr__(self) -> str:
        budget = (
            "unbounded" if self._budget is None else f"{self._budget}B"
        )
        return (
            f"BufferPool(budget={budget}, pinned={len(self._pinned)}, "
            f"lru={len(self._lru)})"
        )
