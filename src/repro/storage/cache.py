"""Memory-budgeted buffer pool over the bitmap file store.

Implements the caching semantics the paper's three cases assume:

* **Case 1/2 (no memory constraint)** — an unbounded pool: every bitmap
  is read from storage at most once and then served from memory (Eq. 3).
* **Case 3 (budget ``S_total``)** — the selected cut is *pinned* (read
  once, kept for the whole workload); everything else is streamed, i.e.
  read from storage on every access, because "the operation nodes that
  are not in the cut cannot be cached in memory for re-use" (§2.3.4).

A small LRU overflow area can optionally use whatever budget the pinned
set leaves free — disabled by default to match the paper's accounting.

The pool is **thread-safe** and built for the concurrent serving layer
(:mod:`repro.serve`):

* one lock protects the resident set, so the budget/eviction invariants
  (``resident_bytes <= budget_bytes``, atomic all-or-nothing pinning)
  hold under any interleaving of ``pin``/``get``/``invalidate``/
  ``reload``;
* concurrent misses on the same file are **single-flight deduplicated**:
  one thread performs (and is charged for) the storage read, every
  other requester waits and shares the payload — concurrent IO never
  exceeds what a serial run would have read;
* :meth:`attributing` charges the calling thread's fetches to an extra
  per-query accountant, which is how per-query IO stays exactly
  attributable when many queries share one pool (the sum of per-query
  accountants plus the pin phase reconciles with the shared accountant
  to the byte).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Iterable, Iterator
from contextlib import contextmanager

from ..errors import (
    BudgetExceededError,
    StorageError,
    TransientStorageError,
)
from ..obs import get_metrics, record
from .accounting import IOAccountant
from .faults import DEFAULT_RETRY_POLICY, RetryPolicy
from .filestore import BitmapFileStore

__all__ = ["BufferPool"]


def _node_group_key(name: str) -> int | None:
    """The hierarchy node a cached file name belongs to, if any.

    Base files (``node_<id>.wah``) and delta files
    (``delta_<seq>-node_<id>.wah``) of the same node form one
    *coherence group*: after a compaction folds deltas into a new
    base, a stale base payload and a stale delta payload are equally
    poisonous, so :meth:`BufferPool.invalidate` drops the whole group
    together.  Names outside both schemes group as ``None`` and are
    invalidated individually.
    """
    from .catalog import node_id_from_file_name
    from .manifest import parse_delta_file_name

    node_id = node_id_from_file_name(name)
    if node_id is not None:
        return node_id
    parsed = parse_delta_file_name(name)
    if parsed is not None:
        return parsed[1]
    return None


class _Flight:
    """One in-flight storage fetch, shared by concurrent requesters.

    The leader (the thread that created the flight) performs the fetch
    and publishes either ``payload`` or ``error`` before setting the
    event; waiters block on the event and take whichever was published.
    """

    __slots__ = ("event", "payload", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.payload: bytes | None = None
        self.error: Exception | None = None


class BufferPool:
    """Caches bitmap files read from a :class:`BitmapFileStore`.

    Safe for concurrent use by many query workers; see the module
    docstring for the locking, single-flight, and attribution design.

    Args:
        store: the backing file store.
        accountant: receives a record for every fetch that actually hits
            storage (cache hits are free).
        budget_bytes: total memory budget; ``None`` means unbounded
            (the no-memory-constraint cases).
        use_spare_budget_lru: when true, unpinned reads may occupy
            leftover budget in an LRU area instead of being streamed.
        retry_policy: how transient storage failures are retried before
            propagating; defaults to a few immediate retries
            (:data:`~repro.storage.faults.DEFAULT_RETRY_POLICY`).  Pass
            ``RetryPolicy(max_attempts=1)`` to disable.
    """

    def __init__(
        self,
        store: BitmapFileStore,
        accountant: IOAccountant | None = None,
        budget_bytes: int | None = None,
        use_spare_budget_lru: bool = False,
        retry_policy: RetryPolicy | None = None,
    ):
        if budget_bytes is not None and budget_bytes < 0:
            raise ValueError(
                f"budget_bytes must be >= 0, got {budget_bytes}"
            )
        self._store = store
        self._accountant = accountant or IOAccountant()
        self._budget = budget_bytes
        self._use_spare_lru = use_spare_budget_lru
        self._retry = retry_policy or DEFAULT_RETRY_POLICY
        self._pinned: dict[str, bytes] = {}
        self._pinned_bytes = 0
        self._lru: OrderedDict[str, bytes] = OrderedDict()
        self._lru_bytes = 0
        # Reentrant: clear() drops both tiers under one critical
        # section by calling unpin_all() with the lock already held.
        self._lock = threading.RLock()
        self._inflight: dict[str, _Flight] = {}
        self._local = threading.local()

    # ------------------------------------------------------------------
    @property
    def accountant(self) -> IOAccountant:
        """The IO accountant recording storage fetches."""
        return self._accountant

    @property
    def budget_bytes(self) -> int | None:
        """Total memory budget (``None`` = unbounded)."""
        return self._budget

    @property
    def pinned_bytes(self) -> int:
        """Bytes currently held by pinned files."""
        return self._pinned_bytes

    @property
    def lru_bytes(self) -> int:
        """Bytes currently held by the LRU overflow area."""
        return self._lru_bytes

    @property
    def resident_bytes(self) -> int:
        """Total bytes resident in memory (pinned + LRU).

        Never exceeds ``budget_bytes`` when a budget is set (the
        Case-3 ``S_total`` constraint, §2.3.4).
        """
        with self._lock:
            return self._pinned_bytes + self._lru_bytes

    @property
    def cached_names(self) -> set[str]:
        """Names currently resident in memory (pinned or LRU)."""
        with self._lock:
            return set(self._pinned) | set(self._lru)

    @property
    def retry_policy(self) -> RetryPolicy:
        """How transient storage failures are retried."""
        return self._retry

    # ------------------------------------------------------------------
    # Per-thread IO attribution.
    def _attributed(self) -> tuple[IOAccountant, ...]:
        return tuple(getattr(self._local, "accountants", ()))

    @contextmanager
    def attributing(
        self, accountant: IOAccountant
    ) -> Iterator[IOAccountant]:
        """Also charge this thread's fetches to ``accountant``.

        Every storage read, retry, and discard performed by the calling
        thread inside the block is recorded to the shared pool
        accountant *and* to ``accountant`` — other threads' IO is not.
        This is how the batch executor attributes IO to individual
        queries running concurrently over one pool: a fetch performed
        on behalf of a single-flight *leader* is charged to that
        leader's query; waiters sharing the payload are charged
        nothing, exactly like a cache hit.

        Nests: an inner ``attributing`` block charges both accountants.
        """
        stack = getattr(self._local, "accountants", None)
        if stack is None:
            stack = []
            self._local.accountants = stack
        stack.append(accountant)
        try:
            yield accountant
        finally:
            stack.pop()

    def record_discard(self, name: str, nbytes: int) -> None:
        """Charge a discarded (checksum-failed) payload to the shared
        accountant and to the calling thread's attributed accountants.

        The executor reports discards through the pool rather than the
        shared accountant directly so wasted IO lands in the same
        per-query ledger as the read that produced it.
        """
        self._accountant.record_discard(name, nbytes)
        for local in self._attributed():
            local.record_discard(name, nbytes)

    # ------------------------------------------------------------------
    def _fetch(self, name: str) -> bytes:
        last_error: TransientStorageError | None = None
        metrics = get_metrics()
        locals_ = self._attributed()
        for _attempt in self._retry.attempts():
            try:
                payload = self._store.read(name)
            except TransientStorageError as err:
                last_error = err
                self._accountant.record_retry(name)
                for local in locals_:
                    local.record_retry(name)
                record("storage.retry", name, error=str(err))
                metrics.inc("storage_retries_total")
                continue
            self._accountant.record_read(name, len(payload))
            for local in locals_:
                local.record_read(name, len(payload))
            record("storage.read", name, nbytes=len(payload))
            metrics.inc("storage_reads_total")
            metrics.inc("storage_read_bytes_total", len(payload))
            return payload
        assert last_error is not None
        record("storage.error", name, error=str(last_error))
        metrics.inc("storage_errors_total")
        raise last_error

    def _join_or_fetch(self, name: str) -> bytes:
        """Fetch ``name`` with single-flight deduplication.

        The first thread to request a non-resident name becomes the
        *leader*: it performs the storage read (charged to its
        attributed accountants) and publishes the payload.  Concurrent
        requesters wait on the leader's flight and share the result
        without touching storage — so a burst of misses on one bitmap
        costs exactly one read.  A leader error propagates to every
        waiter (the pool already retried transients; re-asking storage
        immediately would fail the same way).
        """
        with self._lock:
            flight = self._inflight.get(name)
            if flight is None:
                flight = _Flight()
                self._inflight[name] = flight
                leader = True
            else:
                leader = False
        if not leader:
            record("cache.wait", name)
            get_metrics().inc("cache_singleflight_waits_total")
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            assert flight.payload is not None
            return flight.payload
        try:
            payload = self._fetch(name)
        except Exception as err:
            flight.error = err
            self._retire_flight(name, flight)
            flight.event.set()
            raise
        flight.payload = payload
        self._retire_flight(name, flight)
        flight.event.set()
        return payload

    def _retire_flight(self, name: str, flight: _Flight) -> None:
        """Remove a completed flight — only if it is still the one
        registered.

        :meth:`invalidate` may have already dropped it (quarantine of
        the file mid-fetch) and a successor flight may have taken the
        slot; popping unconditionally would cancel that unrelated
        fetch's deduplication.
        """
        with self._lock:
            if self._inflight.get(name) is flight:
                del self._inflight[name]

    # ------------------------------------------------------------------
    def pin(self, names: Iterable[str]) -> None:
        """Read the given files once and keep them resident.

        This is how a selected cut is installed before running a
        workload.  Raises :class:`BudgetExceededError` if the pinned
        working set would not fit the budget; no partial pinning happens
        in that case.

        Duplicate names in ``names`` are deduplicated (first occurrence
        wins) so a repeated member costs one read, one budget charge,
        and one pin.  The budget is checked twice: against the store's
        reported sizes before any IO (fail fast without reading), and
        against the *actual* payload sizes before committing — so
        ``resident_bytes <= budget_bytes`` is an invariant even when a
        stored size disagrees with what the read returns (e.g. a torn
        read, or a backend whose ``size_bytes`` is an estimate).
        """
        with self._lock:
            to_pin = [
                name
                for name in dict.fromkeys(names)
                if name not in self._pinned
            ]
            if not to_pin:
                return
            if self._budget is not None:
                projected = sum(
                    len(self._lru[name])
                    if name in self._lru
                    else self._store.size_bytes(name)
                    for name in to_pin
                )
                if self._pinned_bytes + projected > self._budget:
                    raise BudgetExceededError(
                        self._pinned_bytes + projected, self._budget
                    )
        # Stage every payload before touching the resident set, so an
        # error (storage or budget) commits nothing.  Fetches go
        # through the single-flight path: a concurrent pin or get of
        # the same name shares one storage read.
        staged: dict[str, bytes] = {}
        for name in to_pin:
            with self._lock:
                if name in self._pinned:
                    continue  # a concurrent pin() won the race
                if name in self._lru:
                    staged[name] = self._lru[name]
                    continue
            staged[name] = self._join_or_fetch(name)
        with self._lock:
            fresh = {
                name: payload
                for name, payload in staged.items()
                if name not in self._pinned
            }
            if self._budget is not None:
                additional = sum(
                    len(payload) for payload in fresh.values()
                )
                if self._pinned_bytes + additional > self._budget:
                    raise BudgetExceededError(
                        self._pinned_bytes + additional, self._budget
                    )
            for name, payload in fresh.items():
                if name in self._lru:
                    dropped = self._lru.pop(name)
                    self._lru_bytes -= len(dropped)
                self._pinned[name] = payload
                self._pinned_bytes += len(payload)
                record("cache.pin", name, nbytes=len(payload))
            get_metrics().inc("cache_pins_total", len(fresh))
            # Pinning shrinks the spare budget the LRU area may occupy;
            # evict until pinned + LRU fits the budget again, or the
            # resident set would violate the Case-3 S_total constraint.
            self._shrink_lru_to_spare()

    def _shrink_lru_to_spare(self) -> None:
        # Caller holds the lock.
        if self._budget is None:
            return
        spare = self._budget - self._pinned_bytes
        while self._lru and self._lru_bytes > spare:
            evicted_name, evicted = self._lru.popitem(last=False)
            self._lru_bytes -= len(evicted)
            record("cache.evict", evicted_name, nbytes=len(evicted))
            get_metrics().inc("cache_evictions_total")

    def unpin_all(self) -> None:
        """Release every pinned file (contents are dropped)."""
        with self._lock:
            if self._pinned:
                record(
                    "cache.clear",
                    "pinned",
                    files=len(self._pinned),
                    nbytes=self._pinned_bytes,
                )
                get_metrics().inc(
                    "cache_invalidations_total",
                    len(self._pinned),
                    tier="pinned",
                )
            self._pinned.clear()
            self._pinned_bytes = 0

    def get(self, name: str) -> bytes:
        """Fetch a file through the pool.

        Pinned files and (if enabled) LRU-resident files are served from
        memory; everything else is fetched from storage and charged to
        the accountant.  Concurrent misses on the same name share one
        storage read (single-flight); only the thread that performs the
        read is charged.
        """
        metrics = get_metrics()
        with self._lock:
            if name in self._pinned:
                record("cache.hit", name, tier="pinned")
                metrics.inc("cache_hits_total", tier="pinned")
                return self._pinned[name]
            if name in self._lru:
                self._lru.move_to_end(name)
                record("cache.hit", name, tier="lru")
                metrics.inc("cache_hits_total", tier="lru")
                return self._lru[name]
        record("cache.miss", name)
        metrics.inc("cache_misses_total")
        payload = self._join_or_fetch(name)
        with self._lock:
            self._maybe_admit(name, payload)
        return payload

    def _maybe_admit(self, name: str, payload: bytes) -> None:
        # Caller holds the lock.
        if name in self._pinned:
            return
        if self._budget is None:
            # Unconstrained: cache everything (Case 1/2 semantics).
            if name in self._lru:
                return
            self._lru[name] = payload
            self._lru_bytes += len(payload)
            return
        if not self._use_spare_lru:
            return
        if name in self._lru:
            return
        spare = self._budget - self._pinned_bytes
        if len(payload) > spare:
            return
        while self._lru_bytes + len(payload) > spare and self._lru:
            evicted_name, evicted = self._lru.popitem(last=False)
            self._lru_bytes -= len(evicted)
            record("cache.evict", evicted_name, nbytes=len(evicted))
            get_metrics().inc("cache_evictions_total")
        if self._lru_bytes + len(payload) <= spare:
            self._lru[name] = payload
            self._lru_bytes += len(payload)

    def invalidate(self, name: str) -> bool:
        """Drop a cached copy (pinned or LRU); returns whether it was
        pinned.

        Used when a resident payload turns out to be corrupt — the next
        :meth:`get` re-fetches from storage.  Each actual drop counts
        toward ``cache_invalidations_total`` (labelled by tier) so
        EXPLAIN ANALYZE's warm/cold classification stays truthful after
        corruption recovery.

        Any in-flight single-flight fetch of the name is also
        forgotten: when a scrubber quarantines a file, a concurrent
        leader may be mid-read of the condemned bytes, and later
        requesters must not join that flight and inherit them.  The
        abandoned leader still completes (its waiters get its result),
        but it no longer publishes into the pool's dedup table.

        Invalidation is *node-coherent*: dropping a node's base
        payload also drops any resident delta payloads of the same
        node (and vice versa), along with their in-flight fetches.
        After a compaction replaces base + deltas with a new base in
        one atomic commit, there is no sequence of per-name
        invalidations that could otherwise prevent a reader from
        pairing the fresh base with a stale cached delta.  The return
        value reports the *named* entry's pinned status only.
        """
        metrics = get_metrics()
        with self._lock:
            targets = [name]
            group = _node_group_key(name)
            if group is not None:
                targets.extend(
                    other
                    for other in (
                        set(self._pinned)
                        | set(self._lru)
                        | set(self._inflight)
                    )
                    if other != name
                    and _node_group_key(other) == group
                )
            was_pinned = False
            for target in targets:
                self._inflight.pop(target, None)
                if target in self._pinned:
                    payload = self._pinned.pop(target)
                    self._pinned_bytes -= len(payload)
                    if target == name:
                        was_pinned = True
                    record(
                        "cache.invalidate", target, tier="pinned"
                    )
                    metrics.inc(
                        "cache_invalidations_total", tier="pinned"
                    )
                elif target in self._lru:
                    payload = self._lru.pop(target)
                    self._lru_bytes -= len(payload)
                    record("cache.invalidate", target, tier="lru")
                    metrics.inc(
                        "cache_invalidations_total", tier="lru"
                    )
            return was_pinned

    def reload(self, name: str) -> bytes:
        """Force a fresh fetch from storage, replacing any cached copy.

        A previously pinned file stays pinned (with the new payload);
        an LRU-resident file is re-admitted under the normal policy.
        The fetch is charged to the accountant like any storage read.
        Deliberately *not* single-flight deduplicated: a reload exists
        to replace a payload that just failed validation, so it must
        not be satisfied by an in-flight read that may be the same
        stale bytes.
        """
        was_pinned = self.invalidate(name)
        payload = self._fetch(name)
        with self._lock:
            if was_pinned:
                self._pinned[name] = payload
                self._pinned_bytes += len(payload)
                self._shrink_lru_to_spare()
            else:
                self._maybe_admit(name, payload)
        return payload

    def contains(self, name: str) -> bool:
        """Whether a file is currently resident in memory."""
        with self._lock:
            return name in self._pinned or name in self._lru

    def clear(self) -> None:
        """Drop all cached content, pinned and unpinned."""
        with self._lock:
            self.unpin_all()
            if self._lru:
                record(
                    "cache.clear",
                    "lru",
                    files=len(self._lru),
                    nbytes=self._lru_bytes,
                )
                get_metrics().inc(
                    "cache_invalidations_total",
                    len(self._lru),
                    tier="lru",
                )
            self._lru.clear()
            self._lru_bytes = 0

    def verify_store_has(self, names: Iterable[str]) -> None:
        """Raise :class:`StorageError` unless every name exists."""
        missing = [
            name for name in names if not self._store.exists(name)
        ]
        if missing:
            raise StorageError(
                f"bitmap files missing from store: {missing[:5]}"
                + ("..." if len(missing) > 5 else "")
            )

    def __repr__(self) -> str:
        budget = (
            "unbounded" if self._budget is None else f"{self._budget}B"
        )
        return (
            f"BufferPool(budget={budget}, pinned={len(self._pinned)}, "
            f"lru={len(self._lru)})"
        )
