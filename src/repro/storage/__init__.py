"""Simulated secondary storage: cost model, calibration, file store,
IO accounting, budgeted buffer pool, node catalogs, deterministic
fault injection, and the durable index lifecycle (manifest-committed
builds, crash recovery, scrub-and-repair, LSM-style delta ingest with
merge-on-read and compaction)."""

from .accounting import IOAccountant, IOSnapshot
from .cache import BufferPool
from .compactor import BackgroundCompactor, CompactionReport, Compactor
from .delta import DeltaAppender, DeltaAppendResult
from .faults import (
    DEFAULT_RETRY_POLICY,
    FaultKind,
    FaultPolicy,
    RetryPolicy,
    get_default_fault_policy,
    set_default_fault_policy,
)
from .calibration import (
    DEFAULT_CALIBRATION_DENSITIES,
    calibrate_cost_model,
    measure_wah_sizes,
    random_bitmap,
)
from .catalog import (
    MaterializedNodeCatalog,
    ModeledNodeCatalog,
    NodeCatalog,
    node_file_name,
    node_id_from_file_name,
)
from .costmodel import MB, CostModel
from .diskmodel import (
    DiskProfile,
    estimate_seconds,
    estimate_seconds_from_events,
)
from .filestore import BitmapFileStore
from .manifest import (
    MANIFEST_FORMAT_VERSION,
    MANIFEST_NAME,
    QUARANTINE_DIR_NAME,
    DeltaBuild,
    DeltaManifest,
    DurableBitmapStore,
    IndexBuild,
    Manifest,
    ManifestEntry,
    delta_file_name,
    hierarchy_fingerprint,
    parse_delta_file_name,
    physical_file_name,
)
from .scrub import ScrubFinding, ScrubReport, Scrubber

__all__ = [
    "CostModel",
    "MB",
    "DiskProfile",
    "estimate_seconds",
    "estimate_seconds_from_events",
    "BitmapFileStore",
    "DurableBitmapStore",
    "IndexBuild",
    "Manifest",
    "ManifestEntry",
    "MANIFEST_NAME",
    "MANIFEST_FORMAT_VERSION",
    "QUARANTINE_DIR_NAME",
    "hierarchy_fingerprint",
    "physical_file_name",
    "DeltaManifest",
    "DeltaBuild",
    "delta_file_name",
    "parse_delta_file_name",
    "DeltaAppender",
    "DeltaAppendResult",
    "Compactor",
    "BackgroundCompactor",
    "CompactionReport",
    "Scrubber",
    "ScrubReport",
    "ScrubFinding",
    "IOAccountant",
    "IOSnapshot",
    "BufferPool",
    "FaultKind",
    "FaultPolicy",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "set_default_fault_policy",
    "get_default_fault_policy",
    "NodeCatalog",
    "ModeledNodeCatalog",
    "MaterializedNodeCatalog",
    "node_file_name",
    "node_id_from_file_name",
    "calibrate_cost_model",
    "measure_wah_sizes",
    "random_bitmap",
    "DEFAULT_CALIBRATION_DENSITIES",
]
