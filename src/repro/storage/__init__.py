"""Simulated secondary storage: cost model, calibration, file store,
IO accounting, budgeted buffer pool, and node catalogs."""

from .accounting import IOAccountant, IOSnapshot
from .cache import BufferPool
from .calibration import (
    DEFAULT_CALIBRATION_DENSITIES,
    calibrate_cost_model,
    measure_wah_sizes,
    random_bitmap,
)
from .catalog import (
    MaterializedNodeCatalog,
    ModeledNodeCatalog,
    NodeCatalog,
    node_file_name,
)
from .costmodel import MB, CostModel
from .diskmodel import DiskProfile, estimate_seconds
from .filestore import BitmapFileStore

__all__ = [
    "CostModel",
    "MB",
    "DiskProfile",
    "estimate_seconds",
    "BitmapFileStore",
    "IOAccountant",
    "IOSnapshot",
    "BufferPool",
    "NodeCatalog",
    "ModeledNodeCatalog",
    "MaterializedNodeCatalog",
    "node_file_name",
    "calibrate_cost_model",
    "measure_wah_sizes",
    "random_bitmap",
    "DEFAULT_CALIBRATION_DENSITIES",
]
