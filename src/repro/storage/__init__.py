"""Simulated secondary storage: cost model, calibration, file store,
IO accounting, budgeted buffer pool, node catalogs, and deterministic
fault injection."""

from .accounting import IOAccountant, IOSnapshot
from .cache import BufferPool
from .faults import (
    DEFAULT_RETRY_POLICY,
    FaultKind,
    FaultPolicy,
    RetryPolicy,
    get_default_fault_policy,
    set_default_fault_policy,
)
from .calibration import (
    DEFAULT_CALIBRATION_DENSITIES,
    calibrate_cost_model,
    measure_wah_sizes,
    random_bitmap,
)
from .catalog import (
    MaterializedNodeCatalog,
    ModeledNodeCatalog,
    NodeCatalog,
    node_file_name,
)
from .costmodel import MB, CostModel
from .diskmodel import (
    DiskProfile,
    estimate_seconds,
    estimate_seconds_from_events,
)
from .filestore import BitmapFileStore

__all__ = [
    "CostModel",
    "MB",
    "DiskProfile",
    "estimate_seconds",
    "estimate_seconds_from_events",
    "BitmapFileStore",
    "IOAccountant",
    "IOSnapshot",
    "BufferPool",
    "FaultKind",
    "FaultPolicy",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "set_default_fault_policy",
    "get_default_fault_policy",
    "NodeCatalog",
    "ModeledNodeCatalog",
    "MaterializedNodeCatalog",
    "node_file_name",
    "calibrate_cost_model",
    "measure_wah_sizes",
    "random_bitmap",
    "DEFAULT_CALIBRATION_DENSITIES",
]
