"""Node catalogs: per-hierarchy-node densities, read costs, and sizes.

Every cut-selection algorithm consumes a :class:`NodeCatalog`, which maps
hierarchy nodes to the three quantities the paper's cost formulas need:

* **density** ``D_Bn`` — fraction of rows whose value falls under the node;
* **read cost** — the IO charge for fetching the node's bitmap (MB);
* **size** ``S_Bn`` — the bitmap's memory footprint for the Case-3 budget.

Two implementations:

* :class:`ModeledNodeCatalog` computes densities analytically from leaf
  value frequencies and prices them with a
  :class:`~repro.storage.costmodel.CostModel`.  This is how the
  experiments run at the paper's 150M-row scale without materializing
  150M-row bitmaps.
* :class:`MaterializedNodeCatalog` builds real WAH bitmaps from a column,
  serializes them into a :class:`~repro.storage.filestore.BitmapFileStore`,
  and reports *measured* file sizes.  Used for end-to-end execution tests
  and the Fig. 1 calibration.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from ..bitmap.builder import build_span_bitmap
from ..bitmap.serialization import deserialize_wah, serialize_wah
from ..bitmap.wah import WahBitmap
from ..errors import StorageError
from ..hierarchy.tree import Hierarchy
from .costmodel import MB, CostModel
from .filestore import BitmapFileStore

__all__ = [
    "NodeCatalog",
    "ModeledNodeCatalog",
    "MaterializedNodeCatalog",
    "node_file_name",
    "node_id_from_file_name",
]


def node_file_name(node_id: int) -> str:
    """Canonical bitmap file name for a hierarchy node."""
    return f"node_{node_id}.wah"


def node_id_from_file_name(name: str) -> int | None:
    """Inverse of :func:`node_file_name`.

    Returns the node id encoded in a canonical bitmap file name, or
    ``None`` when the name does not follow the ``node_<id>.wah``
    convention — used by the scrubber to decide whether a damaged file
    maps to a hierarchy node at all.
    """
    if not (name.startswith("node_") and name.endswith(".wah")):
        return None
    digits = name[len("node_"):-len(".wah")]
    if not digits.isdigit():
        return None
    return int(digits)


class NodeCatalog:
    """Shared bookkeeping for per-node densities, costs, and sizes.

    Subclasses populate ``_densities`` (array over node ids) and either
    rely on the cost model for costs/sizes or override them with
    measured values.
    """

    def __init__(
        self,
        hierarchy: Hierarchy,
        densities: np.ndarray,
        read_costs_mb: np.ndarray,
        sizes_mb: np.ndarray,
        num_rows: int,
    ):
        self._hierarchy = hierarchy
        self._densities = np.asarray(densities, dtype=float)
        self._read_costs = np.asarray(read_costs_mb, dtype=float)
        self._sizes = np.asarray(sizes_mb, dtype=float)
        self._num_rows = int(num_rows)
        expected = hierarchy.num_nodes
        for label, array in (
            ("densities", self._densities),
            ("read costs", self._read_costs),
            ("sizes", self._sizes),
        ):
            if array.shape != (expected,):
                raise ValueError(
                    f"{label} must have one entry per node "
                    f"({expected}), got shape {array.shape}"
                )
        # Prefix sums of *leaf* read costs in leaf-value order enable
        # O(1) range-sum lookups inside the cost formulas.
        leaf_costs = np.array(
            [
                self._read_costs[node_id]
                for node_id in hierarchy.leaf_ids()
            ],
            dtype=float,
        )
        self._leaf_cost_prefix = np.concatenate(
            ([0.0], np.cumsum(leaf_costs))
        )
        leaf_sizes = np.array(
            [
                self._sizes[node_id]
                for node_id in hierarchy.leaf_ids()
            ],
            dtype=float,
        )
        self._leaf_size_prefix = np.concatenate(
            ([0.0], np.cumsum(leaf_sizes))
        )

    # ------------------------------------------------------------------
    @property
    def hierarchy(self) -> Hierarchy:
        """The hierarchy this catalog describes."""
        return self._hierarchy

    @property
    def num_rows(self) -> int:
        """Number of rows in the indexed column."""
        return self._num_rows

    def density(self, node_id: int) -> float:
        """Bit density of the node's bitmap."""
        return float(self._densities[node_id])

    def read_cost_mb(self, node_id: int) -> float:
        """IO cost (MB) of reading the node's bitmap from storage."""
        return float(self._read_costs[node_id])

    def size_mb(self, node_id: int) -> float:
        """Memory footprint ``S_Bn`` (MB) of the node's bitmap."""
        return float(self._sizes[node_id])

    def read_cost_array(self) -> np.ndarray:
        """Read costs (MB) indexed by node id (read-only view)."""
        view = self._read_costs.view()
        view.flags.writeable = False
        return view

    def size_array(self) -> np.ndarray:
        """Sizes (MB) indexed by node id (read-only view)."""
        view = self._sizes.view()
        view.flags.writeable = False
        return view

    def node_span_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-node ``leaf_lo`` / ``leaf_hi`` arrays (cached views).

        These power the vectorized per-query statistics: one numpy
        expression computes every node's overlap with a range spec.
        """
        if not hasattr(self, "_span_lo"):
            nodes = self._hierarchy.nodes()
            self._span_lo = np.array(
                [node.leaf_lo for node in nodes], dtype=np.int64
            )
            self._span_hi = np.array(
                [node.leaf_hi for node in nodes], dtype=np.int64
            )
            self._span_lo.flags.writeable = False
            self._span_hi.flags.writeable = False
        return self._span_lo, self._span_hi

    @property
    def leaf_cost_prefix(self) -> np.ndarray:
        """Prefix sums of leaf read costs by leaf value (read-only):
        ``prefix[i]`` is the total cost of leaf values ``< i``."""
        view = self._leaf_cost_prefix.view()
        view.flags.writeable = False
        return view

    def leaf_range_cost(self, lo: int, hi: int) -> float:
        """Sum of leaf read costs over leaf values ``[lo, hi]`` inclusive.

        Empty ranges (``hi < lo``) cost zero.
        """
        if hi < lo:
            return 0.0
        return float(
            self._leaf_cost_prefix[hi + 1] - self._leaf_cost_prefix[lo]
        )

    def leaf_range_size(self, lo: int, hi: int) -> float:
        """Sum of leaf sizes (MB) over leaf values ``[lo, hi]``."""
        if hi < lo:
            return 0.0
        return float(
            self._leaf_size_prefix[hi + 1] - self._leaf_size_prefix[lo]
        )

    def subtree_leaf_cost(self, node_id: int) -> float:
        """Total read cost of all leaf bitmaps under a node."""
        node = self._hierarchy.node(node_id)
        return self.leaf_range_cost(node.leaf_lo, node.leaf_hi)


class ModeledNodeCatalog(NodeCatalog):
    """Analytic catalog: densities from leaf frequencies, costs from a
    :class:`CostModel`.

    This is the fast path used by all the paper-scale experiments: a
    150M-row dataset is represented by its leaf-value *distribution*, and
    every bitmap's density (hence modeled size/cost) follows from it.
    """

    def __init__(
        self,
        hierarchy: Hierarchy,
        leaf_probabilities: np.ndarray,
        cost_model: CostModel,
        num_rows: int,
    ):
        probabilities = np.asarray(leaf_probabilities, dtype=float)
        if probabilities.shape != (hierarchy.num_leaves,):
            raise ValueError(
                f"need one probability per leaf "
                f"({hierarchy.num_leaves}), got shape "
                f"{probabilities.shape}"
            )
        if (probabilities < 0).any():
            raise ValueError("leaf probabilities must be non-negative")
        total = probabilities.sum()
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(
                f"leaf probabilities must sum to 1, got {total}"
            )
        prefix = np.concatenate(([0.0], np.cumsum(probabilities)))
        densities = np.empty(hierarchy.num_nodes, dtype=float)
        for node in hierarchy:
            mass = prefix[node.leaf_hi + 1] - prefix[node.leaf_lo]
            densities[node.node_id] = min(max(float(mass), 0.0), 1.0)
        costs = np.array(
            [
                cost_model.read_cost_mb(density)
                for density in densities
            ],
            dtype=float,
        )
        super().__init__(
            hierarchy,
            densities=densities,
            read_costs_mb=costs,
            sizes_mb=costs.copy(),
            num_rows=num_rows,
        )
        self._cost_model = cost_model
        self._leaf_probabilities = probabilities

    @property
    def cost_model(self) -> CostModel:
        """The cost model pricing this catalog."""
        return self._cost_model

    @property
    def leaf_probabilities(self) -> np.ndarray:
        """Per-leaf value frequencies (read-only view)."""
        view = self._leaf_probabilities.view()
        view.flags.writeable = False
        return view

    @classmethod
    def from_leaf_counts(
        cls,
        hierarchy: Hierarchy,
        leaf_counts: np.ndarray,
        cost_model: CostModel,
    ) -> "ModeledNodeCatalog":
        """Build from raw per-leaf row counts (e.g. a histogram)."""
        counts = np.asarray(leaf_counts, dtype=float)
        total = counts.sum()
        if total <= 0:
            raise ValueError("leaf counts must sum to a positive total")
        return cls(
            hierarchy, counts / total, cost_model, num_rows=int(total)
        )


class MaterializedNodeCatalog(NodeCatalog):
    """Catalog backed by real WAH bitmaps in a file store.

    Builds one bitmap per hierarchy node from a column of leaf ids,
    serializes each to ``node_<id>.wah`` in the given store, and reports
    **measured** file sizes as both read cost and memory footprint.
    """

    def __init__(
        self,
        hierarchy: Hierarchy,
        column: np.ndarray,
        store: BitmapFileStore | None = None,
    ):
        column = np.asarray(column)
        self._store = store if store is not None else BitmapFileStore()
        densities = np.empty(hierarchy.num_nodes, dtype=float)
        sizes = np.empty(hierarchy.num_nodes, dtype=float)
        num_rows = int(column.size)
        with self._begin_write(hierarchy, num_rows) as write_file:
            for node in hierarchy:
                bitmap = build_span_bitmap(
                    column, node.leaf_lo, node.leaf_hi
                )
                payload = serialize_wah(bitmap)
                write_file(node_file_name(node.node_id), payload)
                densities[node.node_id] = bitmap.density()
                sizes[node.node_id] = len(payload) / MB
        super().__init__(
            hierarchy,
            densities=densities,
            read_costs_mb=sizes,
            sizes_mb=sizes.copy(),
            num_rows=num_rows,
        )

    @contextmanager
    def _begin_write(self, hierarchy: Hierarchy, num_rows: int):
        """Yield a ``write(name, payload)`` callable for the build.

        On a :class:`~repro.storage.manifest.DurableBitmapStore` the
        whole build is staged and committed as one atomic generation
        (with the hierarchy fingerprint and row count recorded in the
        manifest) — a crash mid-build leaves the previous generation
        fully live.  On a plain store, files are written directly.
        """
        from .manifest import DurableBitmapStore, hierarchy_fingerprint

        if isinstance(self._store, DurableBitmapStore):
            with self._store.begin_build(
                hierarchy_fingerprint=hierarchy_fingerprint(hierarchy),
                num_rows=num_rows,
            ) as build:
                yield build.add
        else:
            yield self._store.write

    @classmethod
    def from_store(
        cls,
        hierarchy: Hierarchy,
        store: BitmapFileStore,
    ) -> "MaterializedNodeCatalog":
        """Reopen a catalog over already-materialized bitmaps.

        Rehydrates densities and measured sizes by reading every node's
        stored bitmap instead of rebuilding from a column — this is the
        crash-recovery path: build once, reopen after restart.  On a
        :class:`~repro.storage.manifest.DurableBitmapStore` the
        manifest's hierarchy fingerprint is verified first, so an index
        built for a different hierarchy is rejected up front.  Raises
        :class:`~repro.errors.StorageError` when a node's bitmap is
        absent.
        """
        from .manifest import DurableBitmapStore

        if isinstance(store, DurableBitmapStore):
            store.verify_hierarchy(hierarchy)
        catalog = cls.__new__(cls)
        catalog._store = store
        densities = np.empty(hierarchy.num_nodes, dtype=float)
        sizes = np.empty(hierarchy.num_nodes, dtype=float)
        num_rows = 0
        for node in hierarchy:
            name = node_file_name(node.node_id)
            if not store.exists(name):
                raise StorageError(
                    f"store has no bitmap for node {node.node_id} "
                    f"({name!r}); cannot reopen catalog"
                )
            payload = store.read(name)
            bitmap = deserialize_wah(payload)
            densities[node.node_id] = bitmap.density()
            sizes[node.node_id] = len(payload) / MB
            num_rows = max(num_rows, bitmap.num_bits)
        NodeCatalog.__init__(
            catalog,
            hierarchy,
            densities=densities,
            read_costs_mb=sizes,
            sizes_mb=sizes.copy(),
            num_rows=num_rows,
        )
        return catalog

    @property
    def store(self) -> BitmapFileStore:
        """The file store holding the serialized bitmaps."""
        return self._store

    def file_name(self, node_id: int) -> str:
        """Bitmap file name for a node."""
        return node_file_name(node_id)

    def bitmap(self, node_id: int) -> WahBitmap:
        """Deserialize and return a node's bitmap (bypassing any cache)."""
        name = node_file_name(node_id)
        if not self._store.exists(name):
            raise StorageError(f"no bitmap stored for node {node_id}")
        return deserialize_wah(self._store.read(name))

    def reconstruct_column(self) -> np.ndarray:
        """Rebuild the indexed column from the leaf bitmaps.

        The leaf bitmaps partition the rows (every row's value is
        exactly one leaf), so scattering each leaf's set positions back
        to its leaf value reproduces the original column — no external
        copy needed.  Used by sharded execution to re-partition an
        already-materialized index into per-shard stores.
        """
        column = np.empty(self.num_rows, dtype=np.int64)
        covered = 0
        for leaf_value in range(self._hierarchy.num_leaves):
            node_id = self._hierarchy.leaf_node_id(leaf_value)
            positions = self.bitmap(node_id).to_positions()
            column[positions] = leaf_value
            covered += int(positions.size)
        if covered != self.num_rows:
            raise StorageError(
                f"leaf bitmaps cover {covered} rows but the catalog "
                f"has {self.num_rows}; index is inconsistent"
            )
        return column
