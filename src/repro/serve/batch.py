"""Batch execution of many queries over one shared buffer pool.

The serial path answers one query at a time; this module serves a
*batch* concurrently while keeping every observability contract the
serial path makes:

* **Ordering** — outcomes come back in query-index order, never
  completion order, so a batch run is a drop-in replacement for the
  serial loop.
* **Per-query attribution** — each worker wraps its query in a private
  :class:`~repro.storage.accounting.IOAccountant` (via
  :meth:`~repro.storage.cache.BufferPool.attributing`) and a private
  :class:`~repro.obs.TraceCollector` (via
  :func:`~repro.obs.thread_recording`), so bytes and events land on the
  query that caused them.  A single-flight fetch is charged to the
  query that performed it; queries that shared the payload record
  nothing, like a cache hit.
* **Exact reconciliation** — the shared accountant's delta for the
  batch equals the pin-phase IO plus the sum of per-query IO, to the
  byte, faults and retries included
  (:meth:`BatchReport.reconciles`).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from ..errors import QueryFailedError
from ..obs import TraceCollector, TraceEvent, thread_recording
from ..storage.accounting import IOAccountant, IOSnapshot
from ..workload.query import RangeQuery

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.executor import ExecutionResult, QueryExecutor

__all__ = [
    "BatchExecutor",
    "BatchReport",
    "QueryOutcome",
    "merge_event_streams",
    "reconcile_exactly",
]


def merge_event_streams(
    streams: Iterable[tuple[TraceEvent, ...]],
) -> tuple[TraceEvent, ...]:
    """Concatenate per-query trace streams and re-sequence densely.

    The order of ``streams`` (query order, then shard order for the
    sharded path) fully determines the output — wall-clock
    interleaving never leaks in, so two runs of the same batch over
    healthy storage merge byte-identically.
    """
    merged: list[TraceEvent] = []
    seq = 0
    for stream in streams:
        for event in stream:
            merged.append(
                TraceEvent(
                    seq=seq,
                    kind=event.kind,
                    name=event.name,
                    depth=event.depth,
                    attrs=dict(event.attrs),
                )
            )
            seq += 1
    return tuple(merged)

#: Counters that must balance between the shared accountant and the
#: pin-phase-plus-per-query attribution.  ``bytes_read``/``read_count``
#: cover useful IO; the fault-path counters catch a retry or discard
#: charged to the wrong accountant, which the byte tallies alone would
#: miss (retries transfer no bytes).
_RECONCILED_COUNTERS = (
    "bytes_read",
    "read_count",
    "retry_count",
    "discarded_bytes",
    "discard_count",
)


def reconcile_exactly(
    pin_io: IOSnapshot,
    per_query: Iterable[IOSnapshot],
    total: IOSnapshot,
) -> bool:
    """Whether pin-phase IO plus per-query IO explains ``total`` exactly.

    Checked counter by counter — useful bytes/reads *and* the fault
    path (retries, discarded bytes/count) — so misattributed waste
    cannot hide behind balanced byte tallies.  Shared by the thread
    batch report and the per-shard reports of the sharded path.
    """
    snapshots = list(per_query)
    return all(
        getattr(pin_io, counter)
        + sum(getattr(snapshot, counter) for snapshot in snapshots)
        == getattr(total, counter)
        for counter in _RECONCILED_COUNTERS
    )


@dataclass(frozen=True)
class QueryOutcome:
    """One query's result plus its exactly-attributed IO and trace.

    Attributes:
        index: the query's position in the submitted batch (outcomes
            are always sorted by this, not by completion).
        result: the execution result (answer, io_bytes, degradations),
            or ``None`` when the query failed.
        io: this query's private accountant snapshot — per-file reads
            and bytes, retries, and discards caused by this query
            alone (partial reads of a failed query included).
        events: the query's private trace stream (sequence numbers are
            per-query, starting at 0).
        wall_seconds: wall-clock latency of this query inside the
            batch.
        error: ``None`` on success; a
            :class:`~repro.errors.QueryFailedError` wrapping whatever
            the query raised.  Failures are isolated per query: one
            bad query never discards its siblings' outcomes.
    """

    index: int
    result: "ExecutionResult | None"
    io: IOSnapshot
    events: tuple[TraceEvent, ...]
    wall_seconds: float
    error: QueryFailedError | None = None

    @property
    def ok(self) -> bool:
        """Whether the query produced a result."""
        return self.error is None


@dataclass(frozen=True)
class BatchReport:
    """Everything a batch run produced, deterministically ordered.

    Attributes:
        outcomes: per-query outcomes, sorted by query index.
        pin_io: shared-accountant delta for the pin phase (zero when
            the batch did not pin).
        io: shared-accountant delta for the whole run (pin + queries).
        wall_seconds: wall-clock time for the whole batch (pin
            included).
        workers: thread count the batch actually ran with — clamped to
            the batch size, and 1 when the run degenerated to the
            serial loop (batches of ≤ 1 query).
    """

    outcomes: tuple[QueryOutcome, ...]
    pin_io: IOSnapshot
    io: IOSnapshot
    wall_seconds: float
    workers: int

    @property
    def results(self) -> tuple["ExecutionResult", ...]:
        """Execution results in query order (the serial-loop shape).

        Raises the first failed outcome's
        :class:`~repro.errors.QueryFailedError` — callers that want
        the per-query view of a partially-failed batch read
        :attr:`outcomes` (or :attr:`errors`) instead.
        """
        for outcome in self.outcomes:
            if outcome.error is not None:
                raise outcome.error
        return tuple(outcome.result for outcome in self.outcomes)

    @property
    def errors(self) -> tuple[QueryFailedError, ...]:
        """The failed outcomes' errors, in query order (empty when the
        whole batch succeeded)."""
        return tuple(
            outcome.error
            for outcome in self.outcomes
            if outcome.error is not None
        )

    @property
    def ok(self) -> bool:
        """Whether every query in the batch succeeded."""
        return not self.errors

    @property
    def attributed_bytes(self) -> int:
        """Total bytes charged to individual queries."""
        return sum(outcome.io.bytes_read for outcome in self.outcomes)

    def reconciles(self) -> bool:
        """Whether per-query IO plus the pin phase exactly explains the
        shared accountant's delta — every reconciled counter, fault
        path included (``retry_count``, ``discarded_bytes``,
        ``discard_count``), not just useful bytes/reads.

        True by construction — every fetch is charged to the pin phase
        or to exactly one query (single-flight waiters are charged
        nothing); failed queries still carry whatever IO they incurred
        before raising — and asserted by the chaos suite under fault
        injection at 2 and 8 workers.
        """
        return reconcile_exactly(
            self.pin_io,
            (outcome.io for outcome in self.outcomes),
            self.io,
        )

    def merged_events(self) -> tuple[TraceEvent, ...]:
        """One deterministic stream: per-query events concatenated in
        query order and re-sequenced densely.

        Concurrent workers interleave in wall-clock time, but the
        merged stream does not depend on that interleaving — two runs
        of the same batch over healthy storage merge byte-identically.
        """
        return merge_event_streams(
            outcome.events for outcome in self.outcomes
        )


class BatchExecutor:
    """Runs a list of queries concurrently against a shared pool.

    Wraps a :class:`~repro.core.executor.QueryExecutor` whose
    :class:`~repro.storage.cache.BufferPool` is thread-safe and
    single-flight deduplicated; the batch executor adds the fan-out,
    the per-query attribution plumbing, and the deterministic merge.

    Args:
        executor: the query executor to serve through.  All workers
            share its pool (and therefore its pinned cut, LRU area,
            and accountant).
        max_workers: thread count; 1 degenerates to a serial loop
            (useful as an oracle for the concurrent runs).
    """

    def __init__(self, executor: "QueryExecutor", max_workers: int = 8):
        if max_workers < 1:
            raise ValueError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self._executor = executor
        self._max_workers = max_workers

    @property
    def executor(self) -> "QueryExecutor":
        """The wrapped query executor."""
        return self._executor

    @property
    def max_workers(self) -> int:
        """Thread count used for a batch."""
        return self._max_workers

    @property
    def healthy(self) -> bool:
        """Whether the backing store can still serve this catalog.

        The in-process mirror of
        :attr:`~repro.serve.sharded.ShardedExecutor.healthy` — the
        gateway's :class:`~repro.serve.gateway.BatchReplica` probes it
        before re-admitting a replica.  Probes cheap store metadata
        (existence of the hierarchy root's bitmap file) rather than
        running a query; any storage-layer exception reads as
        unhealthy.
        """
        try:
            catalog = self._executor.catalog
            name = catalog.file_name(catalog.hierarchy.root_id)
            return bool(catalog.store.exists(name))
        except Exception:
            return False

    def _run_one(
        self,
        index: int,
        query: RangeQuery,
        cut_node_ids: Sequence[int],
        node_is_cached: bool,
    ) -> QueryOutcome:
        pool = self._executor.pool
        collector = TraceCollector()
        local = IOAccountant()
        started = time.perf_counter()
        result: "ExecutionResult | None" = None
        error: QueryFailedError | None = None
        try:
            with thread_recording(collector), pool.attributing(local):
                result = self._executor.execute_query(
                    query, cut_node_ids, node_is_cached=node_is_cached
                )
        except Exception as exc:
            # Isolate the failure to this query: siblings keep their
            # outcomes, and the partial IO this query performed stays
            # attributed to it so the batch still reconciles.
            error = QueryFailedError(
                index, type(exc).__name__, str(exc)
            )
            error.__cause__ = exc
        return QueryOutcome(
            index=index,
            result=result,
            io=local.snapshot(),
            events=tuple(collector.events),
            wall_seconds=time.perf_counter() - started,
            error=error,
        )

    def run(
        self,
        queries: Iterable[RangeQuery],
        cut_node_ids: Sequence[int] = (),
        pin: bool = True,
        node_is_cached: bool | None = None,
    ) -> BatchReport:
        """Execute a batch of queries; outcomes return in query order.

        Args:
            queries: the queries to serve (a list or a
                :class:`~repro.workload.query.Workload`).
            cut_node_ids: cut members to plan against.
            pin: pin the cut's bitmaps first (Case-2/3 "read the cut
                once"); already-pinned members are skipped.
            node_is_cached: plan under the assumption that cut members
                are resident.  Defaults to ``pin and bool(
                cut_node_ids)`` — the same rule as
                :meth:`~repro.core.executor.QueryExecutor.
                execute_workload` — and must be set explicitly when the
                caller pinned the cut beforehand.

        Returns:
            A :class:`BatchReport` whose accounting reconciles exactly:
            ``pin_io + sum(per-query io) == io``.  A raising query
            becomes an error outcome (its siblings still return);
            :attr:`BatchReport.results` re-raises the first failure,
            :attr:`BatchReport.outcomes` exposes the per-query view.
        """
        batch = list(queries)
        accountant = self._executor.pool.accountant
        started = time.perf_counter()
        before = accountant.snapshot()
        if pin and cut_node_ids:
            self._executor.pin_cut(cut_node_ids)
        after_pin = accountant.snapshot()
        if node_is_cached is None:
            node_is_cached = pin and bool(cut_node_ids)
        if self._max_workers == 1 or len(batch) <= 1:
            workers = 1
            outcomes = [
                self._run_one(
                    index, query, cut_node_ids, node_is_cached
                )
                for index, query in enumerate(batch)
            ]
        else:
            workers = min(self._max_workers, len(batch))
            with ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix="hcs-serve",
            ) as tpe:
                outcomes = list(
                    tpe.map(
                        lambda pair: self._run_one(
                            pair[0],
                            pair[1],
                            cut_node_ids,
                            node_is_cached,
                        ),
                        enumerate(batch),
                    )
                )
        # Deterministic merge: results are ordered by query index, not
        # completion (ThreadPoolExecutor.map already preserves input
        # order; the sort makes the contract explicit and future-proof).
        outcomes.sort(key=lambda outcome: outcome.index)
        return BatchReport(
            outcomes=tuple(outcomes),
            pin_io=after_pin.diff(before),
            io=accountant.diff_since(before),
            wall_seconds=time.perf_counter() - started,
            workers=workers,
        )
