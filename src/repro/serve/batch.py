"""Batch execution of many queries over one shared buffer pool.

The serial path answers one query at a time; this module serves a
*batch* concurrently while keeping every observability contract the
serial path makes:

* **Ordering** — outcomes come back in query-index order, never
  completion order, so a batch run is a drop-in replacement for the
  serial loop.
* **Per-query attribution** — each worker wraps its query in a private
  :class:`~repro.storage.accounting.IOAccountant` (via
  :meth:`~repro.storage.cache.BufferPool.attributing`) and a private
  :class:`~repro.obs.TraceCollector` (via
  :func:`~repro.obs.thread_recording`), so bytes and events land on the
  query that caused them.  A single-flight fetch is charged to the
  query that performed it; queries that shared the payload record
  nothing, like a cache hit.
* **Exact reconciliation** — the shared accountant's delta for the
  batch equals the pin-phase IO plus the sum of per-query IO, to the
  byte, faults and retries included
  (:meth:`BatchReport.reconciles`).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from ..obs import TraceCollector, TraceEvent, thread_recording
from ..storage.accounting import IOAccountant, IOSnapshot
from ..workload.query import RangeQuery

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.executor import ExecutionResult, QueryExecutor

__all__ = ["BatchExecutor", "BatchReport", "QueryOutcome"]


@dataclass(frozen=True)
class QueryOutcome:
    """One query's result plus its exactly-attributed IO and trace.

    Attributes:
        index: the query's position in the submitted batch (outcomes
            are always sorted by this, not by completion).
        result: the execution result (answer, io_bytes, degradations).
        io: this query's private accountant snapshot — per-file reads
            and bytes, retries, and discards caused by this query
            alone.
        events: the query's private trace stream (sequence numbers are
            per-query, starting at 0).
        wall_seconds: wall-clock latency of this query inside the
            batch.
    """

    index: int
    result: "ExecutionResult"
    io: IOSnapshot
    events: tuple[TraceEvent, ...]
    wall_seconds: float


@dataclass(frozen=True)
class BatchReport:
    """Everything a batch run produced, deterministically ordered.

    Attributes:
        outcomes: per-query outcomes, sorted by query index.
        pin_io: shared-accountant delta for the pin phase (zero when
            the batch did not pin).
        io: shared-accountant delta for the whole run (pin + queries).
        wall_seconds: wall-clock time for the whole batch (pin
            included).
        workers: thread count the batch ran with.
    """

    outcomes: tuple[QueryOutcome, ...]
    pin_io: IOSnapshot
    io: IOSnapshot
    wall_seconds: float
    workers: int

    @property
    def results(self) -> tuple["ExecutionResult", ...]:
        """Execution results in query order (the serial-loop shape)."""
        return tuple(outcome.result for outcome in self.outcomes)

    @property
    def attributed_bytes(self) -> int:
        """Total bytes charged to individual queries."""
        return sum(outcome.io.bytes_read for outcome in self.outcomes)

    def reconciles(self) -> bool:
        """Whether per-query IO plus the pin phase exactly explains the
        shared accountant's delta.

        True by construction — every fetch is charged to the pin phase
        or to exactly one query (single-flight waiters are charged
        nothing) — and asserted by the chaos suite under fault
        injection at 2 and 8 workers.
        """
        return (
            self.pin_io.bytes_read + self.attributed_bytes
            == self.io.bytes_read
            and self.pin_io.read_count
            + sum(o.io.read_count for o in self.outcomes)
            == self.io.read_count
        )

    def merged_events(self) -> tuple[TraceEvent, ...]:
        """One deterministic stream: per-query events concatenated in
        query order and re-sequenced densely.

        Concurrent workers interleave in wall-clock time, but the
        merged stream does not depend on that interleaving — two runs
        of the same batch over healthy storage merge byte-identically.
        """
        merged: list[TraceEvent] = []
        seq = 0
        for outcome in self.outcomes:
            for event in outcome.events:
                merged.append(
                    TraceEvent(
                        seq=seq,
                        kind=event.kind,
                        name=event.name,
                        depth=event.depth,
                        attrs=dict(event.attrs),
                    )
                )
                seq += 1
        return tuple(merged)


class BatchExecutor:
    """Runs a list of queries concurrently against a shared pool.

    Wraps a :class:`~repro.core.executor.QueryExecutor` whose
    :class:`~repro.storage.cache.BufferPool` is thread-safe and
    single-flight deduplicated; the batch executor adds the fan-out,
    the per-query attribution plumbing, and the deterministic merge.

    Args:
        executor: the query executor to serve through.  All workers
            share its pool (and therefore its pinned cut, LRU area,
            and accountant).
        max_workers: thread count; 1 degenerates to a serial loop
            (useful as an oracle for the concurrent runs).
    """

    def __init__(self, executor: "QueryExecutor", max_workers: int = 8):
        if max_workers < 1:
            raise ValueError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self._executor = executor
        self._max_workers = max_workers

    @property
    def executor(self) -> "QueryExecutor":
        """The wrapped query executor."""
        return self._executor

    @property
    def max_workers(self) -> int:
        """Thread count used for a batch."""
        return self._max_workers

    def _run_one(
        self,
        index: int,
        query: RangeQuery,
        cut_node_ids: Sequence[int],
        node_is_cached: bool,
    ) -> QueryOutcome:
        pool = self._executor.pool
        collector = TraceCollector()
        local = IOAccountant()
        started = time.perf_counter()
        with thread_recording(collector), pool.attributing(local):
            result = self._executor.execute_query(
                query, cut_node_ids, node_is_cached=node_is_cached
            )
        return QueryOutcome(
            index=index,
            result=result,
            io=local.snapshot(),
            events=tuple(collector.events),
            wall_seconds=time.perf_counter() - started,
        )

    def run(
        self,
        queries: Iterable[RangeQuery],
        cut_node_ids: Sequence[int] = (),
        pin: bool = True,
        node_is_cached: bool | None = None,
    ) -> BatchReport:
        """Execute a batch of queries; outcomes return in query order.

        Args:
            queries: the queries to serve (a list or a
                :class:`~repro.workload.query.Workload`).
            cut_node_ids: cut members to plan against.
            pin: pin the cut's bitmaps first (Case-2/3 "read the cut
                once"); already-pinned members are skipped.
            node_is_cached: plan under the assumption that cut members
                are resident.  Defaults to ``pin and bool(
                cut_node_ids)`` — the same rule as
                :meth:`~repro.core.executor.QueryExecutor.
                execute_workload` — and must be set explicitly when the
                caller pinned the cut beforehand.

        Returns:
            A :class:`BatchReport` whose accounting reconciles exactly:
            ``pin_io + sum(per-query io) == io``.
        """
        batch = list(queries)
        accountant = self._executor.pool.accountant
        started = time.perf_counter()
        before = accountant.snapshot()
        if pin and cut_node_ids:
            self._executor.pin_cut(cut_node_ids)
        after_pin = accountant.snapshot()
        if node_is_cached is None:
            node_is_cached = pin and bool(cut_node_ids)
        if self._max_workers == 1 or len(batch) <= 1:
            outcomes = [
                self._run_one(
                    index, query, cut_node_ids, node_is_cached
                )
                for index, query in enumerate(batch)
            ]
        else:
            workers = min(self._max_workers, len(batch))
            with ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix="hcs-serve",
            ) as tpe:
                outcomes = list(
                    tpe.map(
                        lambda pair: self._run_one(
                            pair[0],
                            pair[1],
                            cut_node_ids,
                            node_is_cached,
                        ),
                        enumerate(batch),
                    )
                )
        # Deterministic merge: results are ordered by query index, not
        # completion (ThreadPoolExecutor.map already preserves input
        # order; the sort makes the contract explicit and future-proof).
        outcomes.sort(key=lambda outcome: outcome.index)
        return BatchReport(
            outcomes=tuple(outcomes),
            pin_io=after_pin.diff(before),
            io=accountant.diff_since(before),
            wall_seconds=time.perf_counter() - started,
            workers=self._max_workers,
        )
