"""Asyncio serving gateway: admission control, micro-batching, SLOs,
and replica failover over the sharded fleet.

PR 6/7 built the compute tier — :class:`~repro.serve.batch.
BatchExecutor` threads and :class:`~repro.serve.sharded.
ShardedExecutor` process fleets — but clients still called it
in-process, one blocking batch at a time.  This module is the network
front-end the ROADMAP asks for:

* **Concurrent intake.**  Requests arrive over an in-process async API
  (:meth:`Gateway.submit`) or a TCP/JSON-lines socket
  (:meth:`Gateway.serve_tcp`); the event loop coalesces them into
  bounded micro-batches for the blocking executors, which run on a
  small thread pool so the loop never blocks.
* **Admission control.**  The intake queue is bounded
  (``max_queue_depth``); a request that would overflow it is shed
  *synchronously* with a typed
  :class:`~repro.errors.OverloadedError` — it never enters a batch, so
  shedding cannot poison admitted siblings.  Per-request deadlines are
  enforced both while queued (the backend never sees an expired
  request) and in flight (a late answer is discarded), with the phase
  recorded on the :class:`~repro.errors.DeadlineExceededError`.
* **SLO metrics.**  Request latency lands in the PR 3
  :class:`~repro.obs.MetricsRegistry` as ``gateway_request_seconds``
  (p50/p95/p99 via the registry's quantile-capable histograms) next to
  queue-depth and batch-size histograms and
  ``gateway_requests_total{status=...}`` counters;
  :meth:`Gateway.stats` snapshots the same numbers without any ambient
  registry installed.
* **Replica failover.**  The gateway holds N *replicas* — independent
  serving fleets over the same logical column.  When a fleet raises
  :class:`~repro.errors.ShardError` (a shard died, hung, or errored,
  and the fleet tore itself down), the batch is retried on the next
  healthy replica instead of surfacing the failure: the paper's
  hierarchy re-derives a damaged internal node from its children, and
  the gateway re-derives an answer from a sibling fleet the same way.
  Failovers surface as ``gateway.failover`` trace events, the
  ``gateway_failovers_total`` counter, and per-batch
  :class:`GatewayBatchRecord` rows.

Determinism discipline: gateway *trace events* carry no wall-clock
data (latencies go to metrics), answers are whatever the backend
produced — bit-identical to the serial oracle by the serving tier's
own contracts — and failover retries are safe because the serving
path is read-only.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

from ..errors import (
    AllReplicasFailedError,
    DeadlineExceededError,
    GatewayClosedError,
    GatewayError,
    OverloadedError,
    ShardError,
)
from ..obs import TraceCollector, TraceEvent, get_metrics
from ..workload.query import RangeQuery

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.executor import ExecutionResult
    from .batch import BatchExecutor, QueryOutcome
    from .sharded import ShardedExecutor

__all__ = [
    "BatchReplica",
    "Gateway",
    "GatewayBatchRecord",
    "GatewayConfig",
    "GatewayStats",
    "Replica",
    "ShardedReplica",
]

#: Latency-histogram quantiles the gateway reports (the SLO trio).
SLO_QUANTILES = (0.50, 0.95, 0.99)


@dataclass(frozen=True)
class GatewayConfig:
    """Tuning knobs for admission control and micro-batching.

    Attributes:
        max_batch_size: most requests coalesced into one backend batch.
        max_batch_delay_s: how long an open micro-batch waits for more
            requests before flushing (the latency the gateway *spends*
            to buy batching throughput).
        max_queue_depth: admission bound — requests beyond this many
            queued are shed with :class:`~repro.errors.OverloadedError`.
        max_inflight_batches: backend batches allowed to run
            concurrently (also the size of the dispatch thread pool).
        default_deadline_s: deadline applied to requests that do not
            carry their own (``None`` = no deadline).
    """

    max_batch_size: int = 16
    max_batch_delay_s: float = 0.002
    max_queue_depth: int = 64
    max_inflight_batches: int = 2
    default_deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_batch_delay_s < 0:
            raise ValueError(
                f"max_batch_delay_s must be >= 0, got "
                f"{self.max_batch_delay_s}"
            )
        if self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got "
                f"{self.max_queue_depth}"
            )
        if self.max_inflight_batches < 1:
            raise ValueError(
                f"max_inflight_batches must be >= 1, got "
                f"{self.max_inflight_batches}"
            )
        if (
            self.default_deadline_s is not None
            and self.default_deadline_s <= 0
        ):
            raise ValueError(
                f"default_deadline_s must be > 0, got "
                f"{self.default_deadline_s}"
            )


class Replica:
    """One independently-serving fleet the gateway can route batches to.

    Subclasses adapt a concrete backend; the contract is small:
    :meth:`run_batch` executes a tuple of queries *synchronously*
    (the gateway calls it from its dispatch thread pool) and returns a
    report exposing ``outcomes`` — per-query
    :class:`~repro.serve.batch.QueryOutcome`\\ s in query order — and
    ``reconciles()``.  A raise of
    :class:`~repro.errors.ShardError` means "this fleet is gone";
    the gateway marks the replica unhealthy, closes it, and retries the
    batch on a sibling.

    Args:
        replica_id: dense id used in metrics, traces, and reports.
    """

    def __init__(self, replica_id: int):
        self.replica_id = replica_id

    def run_batch(self, queries: tuple[RangeQuery, ...]):
        """Serve one micro-batch; return a report with ``outcomes``."""
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (idempotent)."""

    def is_healthy(self) -> bool:
        """Backend-level liveness (the gateway also tracks its own
        view and stops routing to replicas that failed a batch)."""
        return True


class ShardedReplica(Replica):
    """A replica backed by a started, prepared
    :class:`~repro.serve.sharded.ShardedExecutor` fleet.

    The executor must already be ``start()``-ed and ``prepare()``-d;
    the gateway only sends read batches through it.  A
    :class:`~repro.errors.ShardFailedError` from the fleet (which has
    then torn itself down) triggers gateway failover.
    """

    def __init__(self, replica_id: int, executor: "ShardedExecutor"):
        super().__init__(replica_id)
        self.executor = executor

    def run_batch(self, queries: tuple[RangeQuery, ...]):
        """Scatter-gather the batch across the fleet's shards."""
        return self.executor.run(queries)

    def close(self) -> None:
        """Tear the fleet down and reap its worker processes."""
        self.executor.close()

    def is_healthy(self) -> bool:
        """Whether the fleet's worker processes are all alive."""
        return self.executor.healthy


class BatchReplica(Replica):
    """A replica backed by an in-process thread-pool
    :class:`~repro.serve.batch.BatchExecutor`.

    Useful on single-core hosts (and in the gateway experiment's CI
    runs) where process fleets buy nothing; thread replicas never
    raise fleet-level :class:`~repro.errors.ShardError`, so they do
    not exercise failover.

    Args:
        replica_id: dense replica id.
        batch_executor: the executor serving this replica's batches.
        cut_node_ids: cut members pinned for every batch.
    """

    def __init__(
        self,
        replica_id: int,
        batch_executor: "BatchExecutor",
        cut_node_ids: Sequence[int] = (),
    ):
        super().__init__(replica_id)
        self.batch_executor = batch_executor
        self.cut_node_ids = tuple(cut_node_ids)

    def run_batch(self, queries: tuple[RangeQuery, ...]):
        """Run the batch over the shared pool, pinning the cut."""
        return self.batch_executor.run(
            queries, self.cut_node_ids, pin=True
        )


@dataclass(frozen=True)
class GatewayBatchRecord:
    """One dispatched micro-batch, as seen by the gateway.

    The ``explain_analyze``-style row stream for the serving tier:
    which replica answered, how many fleets had to be tried, and the
    backend report whose accounting the tests reconcile byte-exactly.

    Attributes:
        batch_id: dense dispatch counter.
        size: requests in the batch after queued-deadline filtering.
        replica_id: the replica that produced the answers.
        attempts: replicas tried (1 = no failover).
        failed_replica_ids: replicas that raised mid-batch, in order.
        report: the backend's batch report (``BatchReport`` or
            ``ShardedBatchReport``), carrying outcomes and IO.
    """

    batch_id: int
    size: int
    replica_id: int
    attempts: int
    failed_replica_ids: tuple[int, ...]
    report: Any

    @property
    def failed_over(self) -> bool:
        """Whether this batch needed at least one failover."""
        return bool(self.failed_replica_ids)


@dataclass
class GatewayStats:
    """A point-in-time snapshot of the gateway's SLO counters.

    Attributes:
        requests_total: requests submitted (admitted or shed).
        ok: requests answered within their deadline.
        shed: requests refused at admission (queue full).
        deadline_queued: deadlines that expired while queued.
        deadline_inflight: deadlines that expired during execution.
        failed: requests whose query raised (typed per-query errors)
            or whose every replica failed.
        batches: backend batches dispatched (empty flushes excluded).
        empty_flushes: micro-batches that emptied out (every member
            expired while queued) and were never sent to a backend.
        failovers: replica failovers performed.
        replicas_healthy: replicas the gateway still routes to.
        queue_depth_peak: highest observed intake-queue depth.
        latency_p50_s: median request latency (seconds).
        latency_p95_s: 95th-percentile request latency.
        latency_p99_s: 99th-percentile request latency.
    """

    requests_total: int = 0
    ok: int = 0
    shed: int = 0
    deadline_queued: int = 0
    deadline_inflight: int = 0
    failed: int = 0
    batches: int = 0
    empty_flushes: int = 0
    failovers: int = 0
    replicas_healthy: int = 0
    queue_depth_peak: int = 0
    latency_p50_s: float = 0.0
    latency_p95_s: float = 0.0
    latency_p99_s: float = 0.0

    def to_dict(self) -> dict[str, float]:
        """JSON-ready snapshot (what ``hcs-experiments gateway``
        prints per sweep row)."""
        return dict(vars(self))


@dataclass
class _PendingRequest:
    """One admitted request waiting for (or riding) a micro-batch."""

    query: RangeQuery
    future: "asyncio.Future[ExecutionResult]"
    enqueued_at: float
    deadline_at: float | None
    deadline_s: float | None

    def expired(self, now: float) -> bool:
        """Whether the request's deadline has passed at ``now``."""
        return self.deadline_at is not None and now >= self.deadline_at


class Gateway:
    """Asyncio front-end coalescing requests into backend micro-batches.

    Lifecycle: construct over one or more :class:`Replica`\\ s, then
    ``async with gateway:`` (or :meth:`start` / :meth:`aclose`).
    Requests enter through :meth:`submit` (in-process) or the
    TCP/JSON-lines listener from :meth:`serve_tcp`; both go through the
    same admission control, batcher, and failover machinery.

    Args:
        replicas: serving fleets, tried round-robin; at least one.
        config: admission/batching knobs (defaults are sensible for
            tests; see ``docs/gateway.md`` for tuning guidance).
        close_replicas_on_exit: close every replica in :meth:`aclose`
            (set False when the caller manages replica lifecycle).
    """

    def __init__(
        self,
        replicas: Sequence[Replica],
        config: GatewayConfig | None = None,
        close_replicas_on_exit: bool = True,
    ):
        if not replicas:
            raise ValueError("need at least one replica")
        self._replicas = list(replicas)
        self._config = config or GatewayConfig()
        self._close_replicas = close_replicas_on_exit
        self._queue: asyncio.Queue[_PendingRequest] | None = None
        self._batcher_task: asyncio.Task | None = None
        self._dispatch_tasks: set[asyncio.Task] = set()
        self._inflight: asyncio.Semaphore | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._closed = False
        self._started = False
        # Cross-thread state (dispatch threads mutate these).
        self._lock = threading.Lock()
        self._unhealthy: set[int] = set()
        self._next_replica = 0
        self._trace = TraceCollector()
        self._stats = GatewayStats()
        self._latencies = _LatencyReservoir()
        self._batch_records: list[GatewayBatchRecord] = []
        self._batch_counter = 0

    # ------------------------------------------------------------------
    @property
    def config(self) -> GatewayConfig:
        """The gateway's admission/batching configuration."""
        return self._config

    @property
    def replicas(self) -> tuple[Replica, ...]:
        """All replicas, healthy or not, in construction order."""
        return tuple(self._replicas)

    @property
    def healthy_replicas(self) -> tuple[Replica, ...]:
        """Replicas the gateway still routes batches to."""
        with self._lock:
            return tuple(
                replica
                for replica in self._replicas
                if replica.replica_id not in self._unhealthy
            )

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        """The gateway's deterministic trace stream (batches,
        failovers, sheds, deadline expiries — no wall-clock data)."""
        with self._lock:
            return tuple(self._trace.events)

    @property
    def batch_records(self) -> tuple[GatewayBatchRecord, ...]:
        """Per-batch dispatch records, in dispatch order."""
        with self._lock:
            return tuple(self._batch_records)

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a micro-batch slot."""
        return self._queue.qsize() if self._queue is not None else 0

    def stats(self) -> GatewayStats:
        """Snapshot the SLO counters (latency quantiles included)."""
        with self._lock:
            snapshot = GatewayStats(**vars(self._stats))
            snapshot.replicas_healthy = len(self._replicas) - len(
                self._unhealthy
            )
            p50, p95, p99 = (
                self._latencies.quantile(q) for q in SLO_QUANTILES
            )
            snapshot.latency_p50_s = p50
            snapshot.latency_p95_s = p95
            snapshot.latency_p99_s = p99
        return snapshot

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind to the running event loop and start the batcher."""
        if self._started:
            raise GatewayError("gateway already started")
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._inflight = asyncio.Semaphore(
            self._config.max_inflight_batches
        )
        self._batcher_task = asyncio.create_task(
            self._batcher(), name="hcs-gateway-batcher"
        )
        self._started = True
        self._closed = False

    async def aclose(self) -> None:
        """Stop intake, fail stranded requests, reap dispatch tasks,
        and (by default) close every replica.  Idempotent."""
        if not self._started or self._closed:
            self._closed = True
            return
        self._closed = True
        if self._batcher_task is not None:
            self._batcher_task.cancel()
            try:
                await self._batcher_task
            except asyncio.CancelledError:
                pass
        # In-flight batches finish (their clients get real answers);
        # requests still queued are stranded and must fail typed.
        if self._dispatch_tasks:
            await asyncio.gather(
                *tuple(self._dispatch_tasks), return_exceptions=True
            )
        assert self._queue is not None
        while not self._queue.empty():
            request = self._queue.get_nowait()
            if not request.future.done():
                request.future.set_exception(
                    GatewayClosedError(
                        "gateway closed before the request was served"
                    )
                )
        if self._close_replicas:
            for replica in self._replicas:
                replica.close()
        self._started = False

    async def __aenter__(self) -> "Gateway":
        """Start the gateway and return it."""
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        """Close the gateway."""
        await self.aclose()

    # ------------------------------------------------------------------
    async def submit(
        self,
        query: RangeQuery,
        deadline_s: float | None = None,
    ) -> "ExecutionResult":
        """Submit one range query; await its full-width answer.

        Admission control happens *here*, synchronously: a full queue
        sheds the request with :class:`~repro.errors.OverloadedError`
        before it can touch any batch.  The returned result is exactly
        what the backend executor produced (bit-identical to the
        serial oracle by the serving tier's contracts).

        Args:
            query: the range query to answer.
            deadline_s: per-request deadline in seconds (defaults to
                ``config.default_deadline_s``; ``None`` = no deadline).

        Raises:
            OverloadedError: shed at admission (queue full).
            DeadlineExceededError: the deadline expired while queued
                or in flight.
            QueryFailedError: the query itself failed on the backend.
            AllReplicasFailedError: every replica failed the batch.
            GatewayClosedError: the gateway is (or went) closed.
        """
        if not self._started or self._closed:
            raise GatewayClosedError()
        assert self._queue is not None and self._loop is not None
        depth = self._queue.qsize()
        if depth >= self._config.max_queue_depth:
            with self._lock:
                self._stats.requests_total += 1
                self._stats.shed += 1
                self._trace.emit(
                    "gateway.shed",
                    query.label or repr(query),
                    queue_depth=depth,
                )
            get_metrics().inc(
                "gateway_requests_total", status="shed"
            )
            raise OverloadedError(depth, self._config.max_queue_depth)
        if deadline_s is None:
            deadline_s = self._config.default_deadline_s
        now = self._loop.time()
        request = _PendingRequest(
            query=query,
            future=self._loop.create_future(),
            enqueued_at=now,
            deadline_at=(
                now + deadline_s if deadline_s is not None else None
            ),
            deadline_s=deadline_s,
        )
        self._queue.put_nowait(request)
        depth_after = self._queue.qsize()
        with self._lock:
            self._stats.requests_total += 1
            if depth_after > self._stats.queue_depth_peak:
                self._stats.queue_depth_peak = depth_after
        metrics = get_metrics()
        metrics.observe("gateway_queue_depth", depth_after)
        return await request.future

    # ------------------------------------------------------------------
    async def _batcher(self) -> None:
        """Coalesce queued requests into bounded micro-batches."""
        assert self._queue is not None
        assert self._inflight is not None
        assert self._loop is not None
        config = self._config
        while True:
            batch: list[_PendingRequest] = []
            try:
                batch.append(await self._queue.get())
                flush_at = (
                    self._loop.time() + config.max_batch_delay_s
                )
                while len(batch) < config.max_batch_size:
                    timeout = flush_at - self._loop.time()
                    if timeout <= 0:
                        break
                    try:
                        batch.append(
                            await asyncio.wait_for(
                                self._queue.get(), timeout
                            )
                        )
                    except asyncio.TimeoutError:
                        break
                await self._inflight.acquire()
            except asyncio.CancelledError:
                # aclose() cancelled us: requests already pulled off
                # the queue must fail typed, not hang forever.
                for request in batch:
                    if not request.future.done():
                        request.future.set_exception(
                            GatewayClosedError(
                                "gateway closed before the request "
                                "was served"
                            )
                        )
                raise
            live = self._expire_queued(batch)
            if not live:
                # Zero-length flush: every member expired while
                # queued; never bother a backend with it.
                self._inflight.release()
                with self._lock:
                    self._stats.empty_flushes += 1
                    self._trace.emit(
                        "gateway.empty_flush",
                        "batch",
                        expired=len(batch),
                    )
                get_metrics().inc("gateway_empty_flushes_total")
                continue
            task = self._loop.create_task(self._dispatch(live))
            self._dispatch_tasks.add(task)
            task.add_done_callback(self._dispatch_done)

    def _dispatch_done(self, task: asyncio.Task) -> None:
        self._dispatch_tasks.discard(task)
        assert self._inflight is not None
        self._inflight.release()

    def _expire_queued(
        self, batch: list[_PendingRequest]
    ) -> list[_PendingRequest]:
        """Fail queued-expired members; return the live remainder."""
        assert self._loop is not None
        now = self._loop.time()
        live: list[_PendingRequest] = []
        metrics = get_metrics()
        for request in batch:
            if request.expired(now):
                with self._lock:
                    self._stats.deadline_queued += 1
                    self._trace.emit(
                        "gateway.deadline",
                        request.query.label or repr(request.query),
                        phase="queued",
                    )
                metrics.inc(
                    "gateway_requests_total", status="deadline_queued"
                )
                if not request.future.done():
                    request.future.set_exception(
                        DeadlineExceededError(
                            request.deadline_s or 0.0, "queued"
                        )
                    )
            else:
                live.append(request)
        return live

    async def _dispatch(self, batch: list[_PendingRequest]) -> None:
        """Run one micro-batch on a replica (thread side) and deliver
        answers, enforcing in-flight deadlines."""
        assert self._loop is not None
        queries = tuple(request.query for request in batch)
        metrics = get_metrics()
        metrics.inc("gateway_batches_total")
        metrics.observe("gateway_batch_size", len(batch))
        try:
            record = await self._loop.run_in_executor(
                None, self._run_with_failover, queries
            )
        except GatewayError as exc:
            now = self._loop.time()
            for request in batch:
                self._finish(request, now, error=exc)
            return
        now = self._loop.time()
        for request, outcome in zip(batch, record.report.outcomes):
            if request.expired(now):
                self._finish(
                    request,
                    now,
                    error=DeadlineExceededError(
                        request.deadline_s or 0.0, "inflight"
                    ),
                )
            elif outcome.error is not None:
                self._finish(request, now, error=outcome.error)
            else:
                self._finish(request, now, result=outcome.result)

    def _finish(
        self,
        request: _PendingRequest,
        now: float,
        result: "ExecutionResult | None" = None,
        error: Exception | None = None,
    ) -> None:
        """Resolve one request's future and record its SLO numbers."""
        latency = now - request.enqueued_at
        metrics = get_metrics()
        metrics.observe("gateway_request_seconds", latency)
        if error is None:
            status = "ok"
        elif isinstance(error, DeadlineExceededError):
            status = f"deadline_{error.phase}"
        else:
            status = "failed"
        metrics.inc("gateway_requests_total", status=status)
        with self._lock:
            self._latencies.observe(latency)
            if status == "ok":
                self._stats.ok += 1
            elif status == "deadline_inflight":
                self._stats.deadline_inflight += 1
                self._trace.emit(
                    "gateway.deadline",
                    request.query.label or repr(request.query),
                    phase="inflight",
                )
            elif status == "failed":
                self._stats.failed += 1
        if request.future.done():  # pragma: no cover - defensive
            return
        if error is not None:
            request.future.set_exception(error)
        else:
            request.future.set_result(result)

    # ------------------------------------------------------------------
    def _pick_replicas(self) -> list[Replica]:
        """Healthy replicas in round-robin try order."""
        with self._lock:
            healthy = [
                replica
                for replica in self._replicas
                if replica.replica_id not in self._unhealthy
            ]
            if not healthy:
                return []
            start = self._next_replica % len(healthy)
            self._next_replica += 1
        return healthy[start:] + healthy[:start]

    def _run_with_failover(
        self, queries: tuple[RangeQuery, ...]
    ) -> GatewayBatchRecord:
        """Serve one batch, failing over across replicas on
        :class:`~repro.errors.ShardError` (runs on a dispatch thread).
        """
        attempts: list[tuple[int, str, str]] = []
        failed_ids: list[int] = []
        candidates = self._pick_replicas()
        metrics = get_metrics()
        for replica in candidates:
            try:
                report = replica.run_batch(queries)
            except ShardError as exc:
                attempts.append(
                    (replica.replica_id, type(exc).__name__, str(exc))
                )
                failed_ids.append(replica.replica_id)
                self._mark_unhealthy(replica, exc)
                metrics.inc(
                    "gateway_failovers_total",
                    replica=replica.replica_id,
                )
                continue
            with self._lock:
                batch_id = self._batch_counter
                self._batch_counter += 1
                self._stats.batches += 1
                record = GatewayBatchRecord(
                    batch_id=batch_id,
                    size=len(queries),
                    replica_id=replica.replica_id,
                    attempts=len(attempts) + 1,
                    failed_replica_ids=tuple(failed_ids),
                    report=report,
                )
                self._batch_records.append(record)
                self._trace.emit(
                    "gateway.batch",
                    f"batch-{batch_id}",
                    size=len(queries),
                    replica=replica.replica_id,
                    attempts=len(attempts) + 1,
                )
            return record
        raise AllReplicasFailedError(
            attempts
            or [(-1, "GatewayError", "no healthy replicas")]
        )

    def _mark_unhealthy(
        self, replica: Replica, exc: Exception
    ) -> None:
        """Stop routing to a failed replica and reap its backend."""
        with self._lock:
            already = replica.replica_id in self._unhealthy
            self._unhealthy.add(replica.replica_id)
            self._stats.failovers += 1
            self._trace.emit(
                "gateway.failover",
                f"replica-{replica.replica_id}",
                error=type(exc).__name__,
            )
        if not already:
            try:
                replica.close()
            except Exception:  # pragma: no cover - best-effort reap
                pass

    # ------------------------------------------------------------------
    #: Per-line stream limit for the TCP endpoint.  Asyncio's default
    #: (64 KiB) is too small for a ``"positions": true`` response over
    #: a wide column; clients reading such responses need the same
    #: limit on their side of the socket.
    TCP_LINE_LIMIT = 16 * 1024 * 1024

    async def serve_tcp(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> asyncio.AbstractServer:
        """Listen for JSON-lines range queries on a TCP socket.

        One request per line::

            {"id": 7, "ranges": [[0, 3], [9, 12]],
             "deadline_s": 0.5, "positions": false}

        One response line per request (requests on a connection are
        served concurrently; responses carry the request ``id``)::

            {"id": 7, "status": "ok", "count": 1234,
             "io_bytes": 5678}
            {"id": 8, "status": "error", "error": "OverloadedError",
             "message": "..."}

        ``"positions": true`` adds the matching row positions to the
        response (omitted by default — answers over wide columns are
        large).  Request and response lines may be up to
        ``TCP_LINE_LIMIT`` bytes; clients expecting large responses
        should open their connection with the same ``limit``.  The
        returned server is started; callers close it via
        ``server.close()`` / ``await server.wait_closed()``.
        """
        if not self._started or self._closed:
            raise GatewayClosedError(
                "start the gateway before serving TCP"
            )
        return await asyncio.start_server(
            self._handle_connection,
            host=host,
            port=port,
            limit=self.TCP_LINE_LIMIT,
        )

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Serve one client connection, pipelining its requests."""
        get_metrics().inc("gateway_connections_total")
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                task = asyncio.ensure_future(
                    self._handle_request_line(
                        text, writer, write_lock
                    )
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _handle_request_line(
        self,
        text: str,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        """Parse, serve, and answer one JSON-lines request."""
        request_id: Any = None
        try:
            payload = json.loads(text)
            request_id = payload.get("id")
            ranges = payload["ranges"]
            query = RangeQuery(
                [(int(lo), int(hi)) for lo, hi in ranges],
                label=str(payload.get("label", "")),
            )
            deadline_s = payload.get("deadline_s")
            result = await self.submit(
                query,
                deadline_s=(
                    float(deadline_s)
                    if deadline_s is not None
                    else None
                ),
            )
            response: dict[str, Any] = {
                "id": request_id,
                "status": "ok",
                "count": result.answer.count(),
                "io_bytes": result.io_bytes,
            }
            if payload.get("positions"):
                response["positions"] = [
                    int(position)
                    for position in result.answer.to_positions()
                ]
        except Exception as exc:
            response = {
                "id": request_id,
                "status": "error",
                "error": type(exc).__name__,
                "message": str(exc),
            }
        data = (
            json.dumps(response, sort_keys=True) + "\n"
        ).encode("utf-8")
        async with write_lock:
            writer.write(data)
            await writer.drain()

    def __repr__(self) -> str:
        healthy = len(self.healthy_replicas)
        return (
            f"Gateway(replicas={len(self._replicas)} "
            f"({healthy} healthy), started={self._started}, "
            f"closed={self._closed})"
        )


class _LatencyReservoir:
    """Bounded latency sample buffer for the gateway's own SLO view.

    Mirrors the deterministic decimation of
    :class:`~repro.obs.metrics.HistogramSummary` so :meth:`quantile`
    stays O(cap) regardless of traffic volume.  (The gateway also
    observes into the ambient registry; this keeps :meth:`Gateway.
    stats` self-contained when none is installed.)
    """

    CAP = 8192

    def __init__(self) -> None:
        self._samples: list[float] = []
        self._stride = 1
        self._phase = 0

    def observe(self, value: float) -> None:
        """Fold one latency sample in (caller holds the gateway lock).
        """
        if self._phase == 0:
            if len(self._samples) >= self.CAP:
                self._samples = self._samples[::2]
                self._stride *= 2
            self._samples.append(value)
        self._phase = (self._phase + 1) % self._stride

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile of the retained samples (0.0 when
        empty)."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = min(
            len(ordered) - 1, max(0, round(q * (len(ordered) - 1)))
        )
        return ordered[rank]
