"""Asyncio serving gateway: admission control, micro-batching, SLOs,
and a self-healing replica fleet.

PR 6/7 built the compute tier — :class:`~repro.serve.batch.
BatchExecutor` threads and :class:`~repro.serve.sharded.
ShardedExecutor` process fleets — but clients still called it
in-process, one blocking batch at a time.  This module is the network
front-end the ROADMAP asks for:

* **Concurrent intake.**  Requests arrive over an in-process async API
  (:meth:`Gateway.submit`) or a TCP/JSON-lines socket
  (:meth:`Gateway.serve_tcp`); the event loop coalesces them into
  bounded micro-batches for the blocking executors, which run on a
  small thread pool so the loop never blocks.
* **Priority-aware admission control.**  The intake queue is bounded
  (``max_queue_depth``) and partitioned by priority class; a request
  that would overflow it is shed *synchronously* with a typed
  :class:`~repro.errors.OverloadedError` — low-priority traffic is
  shed first (an incoming high-priority request may evict the newest
  queued low-priority one), and a shed request never enters a batch,
  so shedding cannot poison admitted siblings.  Per-request deadlines
  are enforced both while queued (the backend never sees an expired
  request) and in flight (a late answer is discarded), with the phase
  recorded on the :class:`~repro.errors.DeadlineExceededError`.
* **SLO metrics.**  Request latency lands in the PR 3
  :class:`~repro.obs.MetricsRegistry` as ``gateway_request_seconds``
  (p50/p95/p99 via the registry's quantile-capable histograms) next to
  queue-depth and batch-size histograms, per-priority latency/shed
  series, and ``gateway_requests_total{status=...}`` counters;
  :meth:`Gateway.stats` snapshots the same numbers without any ambient
  registry installed.
* **Replica lifecycle with re-admission.**  The gateway holds N
  *replicas* — independent serving fleets over the same logical
  column — each tracked by the :mod:`~repro.serve.lifecycle` state
  machine (``ACTIVE → SUSPECTED → PROBATION → ACTIVE | DEAD``).  A
  fleet that raises :class:`~repro.errors.ShardError`, fails a health
  scan, or trips its rolling circuit breaker is *suspected* (out of
  rotation) and its batch retried on a sibling; a background
  supervisor then revives the backend and re-admits it once a
  deterministic canary query answers bit-identical to a healthy peer,
  with seeded exponential backoff between probes.  Replicas only die
  for good when the probe budget is exhausted (or re-admission is
  disabled with ``max_probe_attempts=0``).
* **Hedged requests.**  When a batch's inflight time exceeds a
  quantile-derived hedge delay (from the same latency reservoir the
  SLOs read), the gateway dispatches the identical batch to a second
  healthy replica and takes the first answer — safe because the
  serving path is read-only and any two healthy replicas answer
  bit-identically.  Hedges are counted honestly
  (``gateway_hedges_total{outcome}``) and the loser's work is recorded
  separately (:attr:`Gateway.hedge_records`) so IO reconciliation
  never double-charges a batch.

Determinism discipline: gateway *trace events* carry no wall-clock
data (latencies go to metrics), the supervisor's probe schedule draws
from a seeded RNG, and answers are whatever the backend produced —
bit-identical to the serial oracle by the serving tier's own
contracts, which is also what makes failover, hedging, and canary
re-admission provably safe.
"""

from __future__ import annotations

import asyncio
import json
import random
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from ..errors import (
    AllReplicasFailedError,
    DeadlineExceededError,
    GatewayClosedError,
    GatewayError,
    OverloadedError,
    QueryFailedError,
    ShardError,
)
from ..obs import TraceCollector, TraceEvent, get_metrics
from ..obs.metrics import QuantileReservoir
from ..workload.query import RangeQuery
from .lifecycle import (
    ReplicaSlot,
    ReplicaState,
    RollingBreaker,
    probe_backoff,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.executor import ExecutionResult
    from .batch import BatchExecutor
    from .sharded import ShardedExecutor

__all__ = [
    "BatchReplica",
    "Gateway",
    "GatewayBatchRecord",
    "GatewayConfig",
    "GatewayHedgeRecord",
    "GatewayStats",
    "Replica",
    "ShardedReplica",
]

#: Latency-histogram quantiles the gateway reports (the SLO trio).
SLO_QUANTILES = (0.50, 0.95, 0.99)


@dataclass(frozen=True)
class GatewayConfig:
    """Tuning knobs for admission, batching, and self-healing.

    Attributes:
        max_batch_size: most requests coalesced into one backend batch.
        max_batch_delay_s: how long an open micro-batch waits for more
            requests before flushing (the latency the gateway *spends*
            to buy batching throughput).
        max_queue_depth: admission bound — requests beyond this many
            queued are shed with :class:`~repro.errors.OverloadedError`
            (lowest priority class first).
        max_inflight_batches: backend batches allowed to run
            concurrently (also the size of the dispatch thread pool).
        default_deadline_s: deadline applied to requests that do not
            carry their own (``None`` = no deadline).
        priority_classes: admission classes from most to least
            important; under overload the *last* class sheds first.
        default_priority: class assigned to requests that do not name
            one (must be a member of ``priority_classes``).
        hedge_quantile: latency quantile (of the gateway's own request
            reservoir) that sets the hedge delay — a batch still
            inflight past that delay is hedged to a second healthy
            replica.  ``None`` disables quantile-derived hedging.
        hedge_delay_s: fixed hedge delay in seconds, taking precedence
            over ``hedge_quantile`` (useful for deterministic tests
            and known-SLO deployments).  ``None`` defers to the
            quantile.
        hedge_min_samples: observed request latencies required before
            a quantile-derived hedge delay is trusted (cold reservoirs
            would hedge everything).
        breaker_window: per-replica rolling window of per-query
            outcomes feeding the circuit breaker.
        breaker_failures: failures within ``breaker_window`` that open
            the breaker and suspect the replica.
        max_probe_attempts: re-admission probes before a suspected
            replica is declared ``DEAD``.  ``0`` disables the
            supervisor entirely — a failed replica is retired
            permanently (the pre-self-healing behavior).
        probe_backoff_base_s: delay before the first re-admission
            probe; doubles per failed probe.
        probe_backoff_max_s: cap on the un-jittered probe delay.
        probe_jitter: fractional jitter on probe delays, drawn from
            the seeded supervisor RNG (deterministic per seed).
        supervisor_interval_s: how often the supervisor scans replica
            health and checks for due probes.
        supervisor_seed: seed for the supervisor's backoff RNG.
        canary_query: query replayed to a probed replica before
            re-admission; its answer must be bit-identical to a
            healthy peer's.  ``None`` uses the most recent
            successfully-served query as the canary.
    """

    max_batch_size: int = 16
    max_batch_delay_s: float = 0.002
    max_queue_depth: int = 64
    max_inflight_batches: int = 2
    default_deadline_s: float | None = None
    priority_classes: tuple[str, ...] = ("high", "normal", "low")
    default_priority: str = "normal"
    hedge_quantile: float | None = None
    hedge_delay_s: float | None = None
    hedge_min_samples: int = 16
    breaker_window: int = 16
    breaker_failures: int = 4
    max_probe_attempts: int = 6
    probe_backoff_base_s: float = 0.05
    probe_backoff_max_s: float = 2.0
    probe_jitter: float = 0.1
    supervisor_interval_s: float = 0.05
    supervisor_seed: int = 0
    canary_query: RangeQuery | None = None

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_batch_delay_s < 0:
            raise ValueError(
                f"max_batch_delay_s must be >= 0, got "
                f"{self.max_batch_delay_s}"
            )
        if self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got "
                f"{self.max_queue_depth}"
            )
        if self.max_inflight_batches < 1:
            raise ValueError(
                f"max_inflight_batches must be >= 1, got "
                f"{self.max_inflight_batches}"
            )
        if (
            self.default_deadline_s is not None
            and self.default_deadline_s <= 0
        ):
            raise ValueError(
                f"default_deadline_s must be > 0, got "
                f"{self.default_deadline_s}"
            )
        if not self.priority_classes:
            raise ValueError("need at least one priority class")
        if len(set(self.priority_classes)) != len(
            self.priority_classes
        ):
            raise ValueError(
                f"priority classes must be unique, got "
                f"{self.priority_classes}"
            )
        if self.default_priority not in self.priority_classes:
            raise ValueError(
                f"default_priority {self.default_priority!r} is not "
                f"one of {self.priority_classes}"
            )
        if self.hedge_quantile is not None and not (
            0.0 < self.hedge_quantile <= 1.0
        ):
            raise ValueError(
                f"hedge_quantile must be in (0, 1], got "
                f"{self.hedge_quantile}"
            )
        if self.hedge_delay_s is not None and self.hedge_delay_s <= 0:
            raise ValueError(
                f"hedge_delay_s must be > 0, got {self.hedge_delay_s}"
            )
        if self.hedge_min_samples < 1:
            raise ValueError(
                f"hedge_min_samples must be >= 1, got "
                f"{self.hedge_min_samples}"
            )
        if self.breaker_window < 1:
            raise ValueError(
                f"breaker_window must be >= 1, got "
                f"{self.breaker_window}"
            )
        if not 1 <= self.breaker_failures <= self.breaker_window:
            raise ValueError(
                f"breaker_failures must be in [1, "
                f"{self.breaker_window}], got {self.breaker_failures}"
            )
        if self.max_probe_attempts < 0:
            raise ValueError(
                f"max_probe_attempts must be >= 0, got "
                f"{self.max_probe_attempts}"
            )
        if self.probe_backoff_base_s <= 0:
            raise ValueError(
                f"probe_backoff_base_s must be > 0, got "
                f"{self.probe_backoff_base_s}"
            )
        if self.probe_backoff_max_s < self.probe_backoff_base_s:
            raise ValueError(
                f"probe_backoff_max_s must be >= "
                f"probe_backoff_base_s, got {self.probe_backoff_max_s}"
            )
        if self.probe_jitter < 0:
            raise ValueError(
                f"probe_jitter must be >= 0, got {self.probe_jitter}"
            )
        if self.supervisor_interval_s <= 0:
            raise ValueError(
                f"supervisor_interval_s must be > 0, got "
                f"{self.supervisor_interval_s}"
            )


class Replica:
    """One independently-serving fleet the gateway can route batches to.

    Subclasses adapt a concrete backend; the contract is small:
    :meth:`run_batch` executes a tuple of queries *synchronously*
    (the gateway calls it from its dispatch thread pool, via
    :meth:`serve_batch`) and returns a report exposing ``outcomes`` —
    per-query :class:`~repro.serve.batch.QueryOutcome`\\ s in query
    order — and ``reconciles()``.  A raise of
    :class:`~repro.errors.ShardError` means "this fleet is gone"; the
    gateway suspects the replica, closes it, and retries the batch on
    a sibling.  The supervisor may later call :meth:`revive` and
    replay a canary query to re-admit it.

    :meth:`close` is idempotent and race-safe: the supervisor, a
    failover path, and :meth:`Gateway.aclose` may all reach for it
    concurrently and the backend is torn down exactly once.

    Args:
        replica_id: dense id used in metrics, traces, and reports.
    """

    #: Whether the gateway must serialize batches through this replica
    #: (backends that multiplex a single channel, like the sharded
    #: fleet's per-shard pipes, are not safe to call concurrently).
    serialize_batches = False

    def __init__(self, replica_id: int):
        self.replica_id = replica_id
        self._closed = False
        self._close_lock = threading.Lock()
        self._batch_lock = threading.Lock()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (and no revive since)."""
        return self._closed

    def serve_batch(self, queries: tuple[RangeQuery, ...]):
        """Run one micro-batch, serializing when the backend needs it.

        The gateway's entry point; dispatch threads (and the
        supervisor's canary probe) call this instead of
        :meth:`run_batch` directly so backends that are not safe to
        call concurrently (``serialize_batches = True``) see one batch
        at a time.
        """
        if self.serialize_batches:
            with self._batch_lock:
                return self.run_batch(queries)
        return self.run_batch(queries)

    def run_batch(self, queries: tuple[RangeQuery, ...]):
        """Serve one micro-batch; return a report with ``outcomes``."""
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (idempotent and race-safe).

        Concurrent callers race on a lock; exactly one runs
        :meth:`_do_close`, the rest return immediately.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._do_close()

    def _do_close(self) -> None:
        """Subclass hook releasing backend resources (called once per
        close/revive cycle)."""

    def is_healthy(self) -> bool:
        """Backend-level liveness (the gateway also tracks its own
        lifecycle view and stops routing to suspected replicas)."""
        return not self._closed

    def revive(self) -> bool:
        """Attempt to restore the backend after a failure.

        Called by the gateway supervisor (on a dispatch thread) before
        the canary check.  The base implementation just reopens intake
        — clears the closed flag and reports backend health;
        subclasses rebuild real backends.  Returns ``True`` when the
        replica is ready to probe.
        """
        with self._close_lock:
            self._closed = False
        return self.is_healthy()


class ShardedReplica(Replica):
    """A replica backed by a started, prepared
    :class:`~repro.serve.sharded.ShardedExecutor` fleet.

    The executor must already be ``start()``-ed and ``prepare()``-d;
    the gateway only sends read batches through it.  A
    :class:`~repro.errors.ShardFailedError` from the fleet (which has
    then torn itself down) triggers gateway failover; the supervisor
    later rebuilds the fleet via
    :meth:`~repro.serve.sharded.ShardedExecutor.restart`.
    """

    serialize_batches = True

    def __init__(self, replica_id: int, executor: "ShardedExecutor"):
        super().__init__(replica_id)
        self.executor = executor

    def run_batch(self, queries: tuple[RangeQuery, ...]):
        """Scatter-gather the batch across the fleet's shards."""
        return self.executor.run(queries)

    def _do_close(self) -> None:
        """Tear the fleet down and reap its worker processes."""
        self.executor.close()

    def is_healthy(self) -> bool:
        """Whether the fleet's worker processes are all alive."""
        return not self._closed and self.executor.healthy

    def revive(self) -> bool:
        """Rebuild the fleet from its on-disk shard stores.

        Respawns the worker processes and replays the last
        ``prepare()`` so the restarted fleet pins the same cut it
        served before; any failure reads as an unsuccessful revive
        (the supervisor will back off and retry).
        """
        try:
            self.executor.restart()
        except Exception:
            return False
        with self._close_lock:
            self._closed = False
        return self.executor.healthy


class BatchReplica(Replica):
    """A replica backed by an in-process thread-pool
    :class:`~repro.serve.batch.BatchExecutor`.

    Useful on single-core hosts (and in the gateway experiment's CI
    runs) where process fleets buy nothing.  Health is probed for real
    via :attr:`~repro.serve.batch.BatchExecutor.healthy` (cheap store
    metadata, not a query), so the supervisor can notice a store that
    went away underneath the executor.

    Args:
        replica_id: dense replica id.
        batch_executor: the executor serving this replica's batches.
        cut_node_ids: cut members pinned for every batch.
    """

    def __init__(
        self,
        replica_id: int,
        batch_executor: "BatchExecutor",
        cut_node_ids: Sequence[int] = (),
    ):
        super().__init__(replica_id)
        self.batch_executor = batch_executor
        self.cut_node_ids = tuple(cut_node_ids)

    def run_batch(self, queries: tuple[RangeQuery, ...]):
        """Run the batch over the shared pool, pinning the cut."""
        return self.batch_executor.run(
            queries, self.cut_node_ids, pin=True
        )

    def is_healthy(self) -> bool:
        """Whether the executor's store still answers metadata reads."""
        return not self._closed and self.batch_executor.healthy

    def revive(self) -> bool:
        """Reopen intake and re-probe the store.

        The thread-pool executor holds no processes to respawn; a
        revive succeeds exactly when the underlying store is readable
        again.
        """
        with self._close_lock:
            self._closed = False
        return self.batch_executor.healthy


@dataclass(frozen=True)
class GatewayBatchRecord:
    """One dispatched micro-batch, as seen by the gateway.

    The ``explain_analyze``-style row stream for the serving tier:
    which replica answered, how many fleets had to be tried, whether
    the batch was hedged, and the backend report whose accounting the
    tests reconcile byte-exactly.

    Attributes:
        batch_id: dense dispatch counter.
        size: requests in the batch after queued-deadline filtering.
        replica_id: the replica that produced the answers (the hedge
            winner, for hedged batches).
        attempts: replicas tried (1 = no failover).
        failed_replica_ids: replicas that raised mid-batch, in order.
        report: the backend's batch report (``BatchReport`` or
            ``ShardedBatchReport``), carrying outcomes and IO.
        hedged: whether a hedge request was dispatched for this batch.
        hedge_replica_id: the replica the hedge ran on (``None`` when
            not hedged).
    """

    batch_id: int
    size: int
    replica_id: int
    attempts: int
    failed_replica_ids: tuple[int, ...]
    report: Any
    hedged: bool = False
    hedge_replica_id: int | None = None

    @property
    def failed_over(self) -> bool:
        """Whether this batch needed at least one failover."""
        return bool(self.failed_replica_ids)


@dataclass(frozen=True)
class GatewayHedgeRecord:
    """One side of a hedged batch (winner or discarded loser).

    Hedge work must be counted honestly: the winner's report is the
    one clients are billed from (it rides the
    :class:`GatewayBatchRecord`), and the loser's report — real IO a
    backend performed for an answer nobody used — is recorded here so
    reconciliation can account for it byte-exactly without ever
    double-charging the batch.

    Attributes:
        batch_id: the batch this hedge side served.
        replica_id: the replica that ran this side.
        role: ``"primary"`` or ``"hedge"``.
        used: whether this side's answers were delivered to clients.
        error: ``type(exc).__name__`` when this side failed instead of
            completing (``None`` on success).
        report: the side's backend report (``None`` when it failed).
    """

    batch_id: int
    replica_id: int
    role: str
    used: bool
    error: str | None
    report: Any

    @property
    def discarded(self) -> bool:
        """Whether this side's work was thrown away (hedge loser)."""
        return not self.used


@dataclass
class GatewayStats:
    """A point-in-time snapshot of the gateway's SLO counters.

    Attributes:
        requests_total: requests submitted (admitted or shed).
        ok: requests answered within their deadline.
        shed: requests refused or evicted at admission (queue full).
        deadline_queued: deadlines that expired while queued.
        deadline_inflight: deadlines that expired during execution.
        failed: requests whose query raised (typed per-query errors)
            or whose every replica failed.
        batches: backend batches dispatched (empty flushes excluded).
        empty_flushes: micro-batches that emptied out (every member
            expired while queued) and were never sent to a backend.
        failovers: replica failovers performed.
        hedges: hedge requests dispatched.
        hedges_won: hedged batches answered by the hedge replica.
        breaker_opens: circuit-breaker trips (rolling per-query
            failure windows).
        readmissions: suspected replicas returned to ``ACTIVE`` after
            passing a canary probe.
        replicas_healthy: replicas in ``ACTIVE`` rotation.
        replicas_suspected: replicas out of rotation but still being
            probed (``SUSPECTED`` or ``PROBATION``).
        replicas_dead: replicas whose probe budget is exhausted.
        queue_depth_peak: highest observed intake-queue depth.
        shed_by_priority: sheds per priority class (refusals and
            evictions combined).
        latency_p50_s: median request latency (seconds).
        latency_p95_s: 95th-percentile request latency.
        latency_p99_s: 99th-percentile request latency.
    """

    requests_total: int = 0
    ok: int = 0
    shed: int = 0
    deadline_queued: int = 0
    deadline_inflight: int = 0
    failed: int = 0
    batches: int = 0
    empty_flushes: int = 0
    failovers: int = 0
    hedges: int = 0
    hedges_won: int = 0
    breaker_opens: int = 0
    readmissions: int = 0
    replicas_healthy: int = 0
    replicas_suspected: int = 0
    replicas_dead: int = 0
    queue_depth_peak: int = 0
    shed_by_priority: dict[str, int] = field(default_factory=dict)
    latency_p50_s: float = 0.0
    latency_p95_s: float = 0.0
    latency_p99_s: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot (what ``hcs-experiments gateway``
        prints per sweep row)."""
        return dict(vars(self))


@dataclass
class _PendingRequest:
    """One admitted request waiting for (or riding) a micro-batch."""

    query: RangeQuery
    future: "asyncio.Future[ExecutionResult]"
    enqueued_at: float
    deadline_at: float | None
    deadline_s: float | None
    priority: str
    priority_index: int

    def expired(self, now: float) -> bool:
        """Whether the request's deadline has passed at ``now``."""
        return self.deadline_at is not None and now >= self.deadline_at


class _PriorityIntake:
    """Per-priority-class FIFO intake with eviction for admission.

    One deque per priority class (most important first); the batcher
    drains the most important non-empty class, and admission may evict
    the *newest* member of the *least* important non-empty class
    strictly below an incoming request.  Runs entirely on the event
    loop — no internal locking needed.
    """

    def __init__(self, num_classes: int):
        self._queues = [deque() for _ in range(num_classes)]
        self._ready = asyncio.Event()

    def qsize(self) -> int:
        """Requests queued across every class."""
        return sum(len(queue) for queue in self._queues)

    def put_nowait(self, request: _PendingRequest) -> None:
        """Enqueue into the request's priority class."""
        self._queues[request.priority_index].append(request)
        self._ready.set()

    def _pop_nowait(self) -> _PendingRequest | None:
        for queue in self._queues:
            if queue:
                request = queue.popleft()
                if not any(self._queues):
                    self._ready.clear()
                return request
        return None

    async def get(self) -> _PendingRequest:
        """Await and return the most important queued request."""
        while True:
            request = self._pop_nowait()
            if request is not None:
                return request
            self._ready.clear()
            await self._ready.wait()

    def evict_lower(
        self, priority_index: int
    ) -> _PendingRequest | None:
        """Evict the newest request of the least important class
        strictly below ``priority_index`` (``None`` when no such
        request is queued)."""
        for cls in range(len(self._queues) - 1, priority_index, -1):
            queue = self._queues[cls]
            if queue:
                request = queue.pop()
                if not any(self._queues):
                    self._ready.clear()
                return request
        return None

    def drain(self) -> list[_PendingRequest]:
        """Remove and return every queued request (shutdown path)."""
        stranded = [
            request for queue in self._queues for request in queue
        ]
        for queue in self._queues:
            queue.clear()
        self._ready.clear()
        return stranded


class Gateway:
    """Asyncio front-end coalescing requests into backend micro-batches.

    Lifecycle: construct over one or more :class:`Replica`\\ s, then
    ``async with gateway:`` (or :meth:`start` / :meth:`aclose`).
    Requests enter through :meth:`submit` (in-process) or the
    TCP/JSON-lines listener from :meth:`serve_tcp`; both go through
    the same admission control, batcher, failover, and hedging
    machinery.  A background supervisor task (enabled whenever
    ``config.max_probe_attempts > 0``) probes suspected replicas and
    re-admits the ones that pass a canary check.

    Args:
        replicas: serving fleets, tried round-robin; at least one.
        config: admission/batching/self-healing knobs (defaults are
            sensible for tests; see ``docs/gateway.md`` for tuning
            guidance).
        close_replicas_on_exit: close every replica in :meth:`aclose`
            (set False when the caller manages replica lifecycle).
    """

    def __init__(
        self,
        replicas: Sequence[Replica],
        config: GatewayConfig | None = None,
        close_replicas_on_exit: bool = True,
    ):
        if not replicas:
            raise ValueError("need at least one replica")
        self._replicas = list(replicas)
        self._config = config or GatewayConfig()
        self._close_replicas = close_replicas_on_exit
        self._intake: _PriorityIntake | None = None
        self._batcher_task: asyncio.Task | None = None
        self._supervisor_task: asyncio.Task | None = None
        self._dispatch_tasks: set[asyncio.Task] = set()
        self._hedge_tasks: set[asyncio.Task] = set()
        self._inflight: asyncio.Semaphore | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._closed = False
        self._started = False
        # Cross-thread state (dispatch threads mutate these).
        self._lock = threading.Lock()
        self._slots: dict[int, ReplicaSlot] = {
            replica.replica_id: ReplicaSlot(
                replica=replica,
                breaker=RollingBreaker(
                    self._config.breaker_window,
                    self._config.breaker_failures,
                ),
            )
            for replica in self._replicas
        }
        if len(self._slots) != len(self._replicas):
            raise ValueError("replica ids must be unique")
        self._rng = random.Random(self._config.supervisor_seed)
        self._next_replica = 0
        self._trace = TraceCollector()
        self._stats = GatewayStats()
        self._latencies = QuantileReservoir()
        self._batch_records: list[GatewayBatchRecord] = []
        self._hedge_records: list[GatewayHedgeRecord] = []
        self._batch_counter = 0
        self._canary_ref: (
            tuple[RangeQuery, tuple[int, ...]] | None
        ) = None

    # ------------------------------------------------------------------
    @property
    def config(self) -> GatewayConfig:
        """The gateway's admission/batching configuration."""
        return self._config

    @property
    def replicas(self) -> tuple[Replica, ...]:
        """All replicas, whatever their state, in construction order."""
        return tuple(self._replicas)

    @property
    def healthy_replicas(self) -> tuple[Replica, ...]:
        """Replicas in ``ACTIVE`` rotation (batches route here)."""
        with self._lock:
            return tuple(
                slot.replica
                for slot in self._iter_slots()
                if slot.state is ReplicaState.ACTIVE
            )

    def replica_states(self) -> dict[int, str]:
        """Each replica's lifecycle state, keyed by replica id."""
        with self._lock:
            return {
                replica_id: slot.state.value
                for replica_id, slot in sorted(self._slots.items())
            }

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        """The gateway's deterministic trace stream (batches,
        failovers, sheds, state transitions, probes, hedges — no
        wall-clock data)."""
        with self._lock:
            return tuple(self._trace.events)

    @property
    def batch_records(self) -> tuple[GatewayBatchRecord, ...]:
        """Per-batch dispatch records, in dispatch order."""
        with self._lock:
            return tuple(self._batch_records)

    @property
    def hedge_records(self) -> tuple[GatewayHedgeRecord, ...]:
        """Both sides of every hedged batch, winners and discarded
        losers, in completion order (how tests reconcile hedge IO
        without double-charging)."""
        with self._lock:
            return tuple(self._hedge_records)

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a micro-batch slot."""
        return self._intake.qsize() if self._intake is not None else 0

    def stats(self) -> GatewayStats:
        """Snapshot the SLO counters (latency quantiles included)."""
        with self._lock:
            snapshot = GatewayStats(**vars(self._stats))
            snapshot.shed_by_priority = dict(
                self._stats.shed_by_priority
            )
            healthy = suspected = dead = 0
            for slot in self._slots.values():
                if slot.state is ReplicaState.ACTIVE:
                    healthy += 1
                elif slot.state is ReplicaState.DEAD:
                    dead += 1
                else:
                    suspected += 1
            snapshot.replicas_healthy = healthy
            snapshot.replicas_suspected = suspected
            snapshot.replicas_dead = dead
            p50, p95, p99 = (
                self._latencies.quantile(q) for q in SLO_QUANTILES
            )
            snapshot.latency_p50_s = p50
            snapshot.latency_p95_s = p95
            snapshot.latency_p99_s = p99
        return snapshot

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind to the running event loop and start the batcher (and
        the self-healing supervisor, unless re-admission is disabled).
        """
        if self._started:
            raise GatewayError("gateway already started")
        self._loop = asyncio.get_running_loop()
        self._intake = _PriorityIntake(
            len(self._config.priority_classes)
        )
        self._inflight = asyncio.Semaphore(
            self._config.max_inflight_batches
        )
        self._batcher_task = asyncio.create_task(
            self._batcher(), name="hcs-gateway-batcher"
        )
        if self._config.max_probe_attempts > 0:
            self._supervisor_task = asyncio.create_task(
                self._supervisor(), name="hcs-gateway-supervisor"
            )
        self._started = True
        self._closed = False

    async def aclose(self) -> None:
        """Stop intake, fail stranded requests, reap dispatch and
        hedge tasks, and (by default) close every replica.  Idempotent.
        """
        if not self._started or self._closed:
            self._closed = True
            return
        self._closed = True
        for task in (self._batcher_task, self._supervisor_task):
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        self._batcher_task = None
        self._supervisor_task = None
        # In-flight batches finish (their clients get real answers);
        # requests still queued are stranded and must fail typed.
        if self._dispatch_tasks:
            await asyncio.gather(
                *tuple(self._dispatch_tasks), return_exceptions=True
            )
        if self._hedge_tasks:
            await asyncio.gather(
                *tuple(self._hedge_tasks), return_exceptions=True
            )
        assert self._intake is not None
        for request in self._intake.drain():
            if not request.future.done():
                request.future.set_exception(
                    GatewayClosedError(
                        "gateway closed before the request was served"
                    )
                )
        if self._close_replicas:
            for replica in self._replicas:
                try:
                    replica.close()
                except Exception:  # pragma: no cover - best effort
                    pass
        self._started = False

    async def __aenter__(self) -> "Gateway":
        """Start the gateway and return it."""
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        """Close the gateway."""
        await self.aclose()

    # ------------------------------------------------------------------
    async def submit(
        self,
        query: RangeQuery,
        deadline_s: float | None = None,
        priority: str | None = None,
    ) -> "ExecutionResult":
        """Submit one range query; await its full-width answer.

        Admission control happens *here*, synchronously: a full queue
        sheds a request with :class:`~repro.errors.OverloadedError`
        before it can touch any batch, preferring to evict queued
        traffic of a strictly lower priority class over refusing the
        incoming request.  The returned result is exactly what the
        backend executor produced (bit-identical to the serial oracle
        by the serving tier's contracts).

        Args:
            query: the range query to answer.
            deadline_s: per-request deadline in seconds (defaults to
                ``config.default_deadline_s``; ``None`` = no deadline).
            priority: priority class name (defaults to
                ``config.default_priority``).

        Raises:
            ValueError: ``priority`` is not a configured class.
            OverloadedError: shed at admission (queue full), either
                refused at the door or evicted by higher-priority
                traffic.
            DeadlineExceededError: the deadline expired while queued
                or in flight.
            QueryFailedError: the query itself failed on the backend.
            AllReplicasFailedError: every replica failed the batch.
            GatewayClosedError: the gateway is (or went) closed.
        """
        if not self._started or self._closed:
            raise GatewayClosedError()
        assert self._intake is not None and self._loop is not None
        if priority is None:
            priority = self._config.default_priority
        try:
            priority_index = self._config.priority_classes.index(
                priority
            )
        except ValueError:
            raise ValueError(
                f"unknown priority {priority!r}; configured classes: "
                f"{self._config.priority_classes}"
            ) from None
        depth = self._intake.qsize()
        if depth >= self._config.max_queue_depth:
            victim = self._intake.evict_lower(priority_index)
            if victim is None:
                self._note_shed(query, priority, depth, "refused")
                with self._lock:
                    self._stats.requests_total += 1
                raise OverloadedError(
                    depth,
                    self._config.max_queue_depth,
                    priority=priority,
                    kind="refused",
                )
            self._note_shed(
                victim.query, victim.priority, depth, "evicted"
            )
            if not victim.future.done():
                victim.future.set_exception(
                    OverloadedError(
                        depth,
                        self._config.max_queue_depth,
                        priority=victim.priority,
                        kind="evicted",
                    )
                )
        if deadline_s is None:
            deadline_s = self._config.default_deadline_s
        now = self._loop.time()
        request = _PendingRequest(
            query=query,
            future=self._loop.create_future(),
            enqueued_at=now,
            deadline_at=(
                now + deadline_s if deadline_s is not None else None
            ),
            deadline_s=deadline_s,
            priority=priority,
            priority_index=priority_index,
        )
        self._intake.put_nowait(request)
        depth_after = self._intake.qsize()
        with self._lock:
            self._stats.requests_total += 1
            if depth_after > self._stats.queue_depth_peak:
                self._stats.queue_depth_peak = depth_after
        get_metrics().observe("gateway_queue_depth", depth_after)
        return await request.future

    def _note_shed(
        self, query: RangeQuery, priority: str, depth: int, kind: str
    ) -> None:
        """Record one shed (refusal or eviction) in stats/metrics."""
        with self._lock:
            self._stats.shed += 1
            by_priority = self._stats.shed_by_priority
            by_priority[priority] = by_priority.get(priority, 0) + 1
            self._trace.emit(
                "gateway.shed",
                query.label or repr(query),
                queue_depth=depth,
                priority=priority,
                shed=kind,
            )
        metrics = get_metrics()
        metrics.inc("gateway_requests_total", status="shed")
        metrics.inc(
            "gateway_sheds_total", priority=priority, kind=kind
        )

    # ------------------------------------------------------------------
    async def _batcher(self) -> None:
        """Coalesce queued requests into bounded micro-batches."""
        assert self._intake is not None
        assert self._inflight is not None
        assert self._loop is not None
        config = self._config
        while True:
            batch: list[_PendingRequest] = []
            try:
                batch.append(await self._intake.get())
                flush_at = (
                    self._loop.time() + config.max_batch_delay_s
                )
                while len(batch) < config.max_batch_size:
                    timeout = flush_at - self._loop.time()
                    if timeout <= 0:
                        break
                    try:
                        batch.append(
                            await asyncio.wait_for(
                                self._intake.get(), timeout
                            )
                        )
                    except asyncio.TimeoutError:
                        break
                await self._inflight.acquire()
            except asyncio.CancelledError:
                # aclose() cancelled us: requests already pulled off
                # the queue must fail typed, not hang forever.
                for request in batch:
                    if not request.future.done():
                        request.future.set_exception(
                            GatewayClosedError(
                                "gateway closed before the request "
                                "was served"
                            )
                        )
                raise
            live = self._expire_queued(batch)
            if not live:
                # Zero-length flush: every member expired while
                # queued; never bother a backend with it.
                self._inflight.release()
                with self._lock:
                    self._stats.empty_flushes += 1
                    self._trace.emit(
                        "gateway.empty_flush",
                        "batch",
                        expired=len(batch),
                    )
                get_metrics().inc("gateway_empty_flushes_total")
                continue
            task = self._loop.create_task(self._dispatch(live))
            self._dispatch_tasks.add(task)
            task.add_done_callback(self._dispatch_done)

    def _dispatch_done(self, task: asyncio.Task) -> None:
        self._dispatch_tasks.discard(task)
        assert self._inflight is not None
        self._inflight.release()

    def _expire_queued(
        self, batch: list[_PendingRequest]
    ) -> list[_PendingRequest]:
        """Fail queued-expired members; return the live remainder."""
        assert self._loop is not None
        now = self._loop.time()
        live: list[_PendingRequest] = []
        metrics = get_metrics()
        for request in batch:
            if request.expired(now):
                with self._lock:
                    self._stats.deadline_queued += 1
                    self._trace.emit(
                        "gateway.deadline",
                        request.query.label or repr(request.query),
                        phase="queued",
                    )
                metrics.inc(
                    "gateway_requests_total", status="deadline_queued"
                )
                if not request.future.done():
                    request.future.set_exception(
                        DeadlineExceededError(
                            request.deadline_s or 0.0, "queued"
                        )
                    )
            else:
                live.append(request)
        return live

    async def _dispatch(self, batch: list[_PendingRequest]) -> None:
        """Serve one micro-batch (failover + hedging) and deliver
        answers, enforcing in-flight deadlines."""
        assert self._loop is not None
        queries = tuple(request.query for request in batch)
        metrics = get_metrics()
        metrics.inc("gateway_batches_total")
        metrics.observe("gateway_batch_size", len(batch))
        try:
            record = await self._serve_batch(queries)
        except GatewayError as exc:
            now = self._loop.time()
            for request in batch:
                self._finish(request, now, error=exc)
            return
        now = self._loop.time()
        for request, outcome in zip(batch, record.report.outcomes):
            if request.expired(now):
                self._finish(
                    request,
                    now,
                    error=DeadlineExceededError(
                        request.deadline_s or 0.0, "inflight"
                    ),
                )
            elif outcome.error is not None:
                self._finish(request, now, error=outcome.error)
            else:
                self._finish(request, now, result=outcome.result)

    def _finish(
        self,
        request: _PendingRequest,
        now: float,
        result: "ExecutionResult | None" = None,
        error: Exception | None = None,
    ) -> None:
        """Resolve one request's future and record its SLO numbers."""
        latency = now - request.enqueued_at
        metrics = get_metrics()
        metrics.observe("gateway_request_seconds", latency)
        metrics.observe(
            "gateway_priority_request_seconds",
            latency,
            priority=request.priority,
        )
        if error is None:
            status = "ok"
        elif isinstance(error, DeadlineExceededError):
            status = f"deadline_{error.phase}"
        else:
            status = "failed"
        metrics.inc("gateway_requests_total", status=status)
        metrics.inc(
            "gateway_priority_requests_total",
            status=status,
            priority=request.priority,
        )
        with self._lock:
            self._latencies.observe(latency)
            if status == "ok":
                self._stats.ok += 1
            elif status == "deadline_inflight":
                self._stats.deadline_inflight += 1
                self._trace.emit(
                    "gateway.deadline",
                    request.query.label or repr(request.query),
                    phase="inflight",
                )
            elif status == "failed":
                self._stats.failed += 1
        if request.future.done():  # pragma: no cover - defensive
            return
        if error is not None:
            request.future.set_exception(error)
        else:
            request.future.set_result(result)

    # ------------------------------------------------------------------
    def _iter_slots(self) -> list[ReplicaSlot]:
        """Slots in construction order (caller holds the lock)."""
        return [
            self._slots[replica.replica_id]
            for replica in self._replicas
        ]

    def _next_candidate(self, tried: set[int]) -> Replica | None:
        """Round-robin pick of an ``ACTIVE`` replica not yet tried
        for the current batch (``None`` when none remain)."""
        with self._lock:
            active = [
                slot.replica
                for slot in self._iter_slots()
                if slot.state is ReplicaState.ACTIVE
                and slot.replica.replica_id not in tried
            ]
            if not active:
                return None
            start = self._next_replica % len(active)
            self._next_replica += 1
        return active[start]

    async def _attempt(
        self, replica: Replica, queries: tuple[RangeQuery, ...]
    ) -> tuple[str, Any]:
        """Run one batch attempt on a dispatch thread; never raises
        :class:`~repro.errors.ShardError` (returned as data so hedge
        races can reap losers without exception plumbing)."""
        assert self._loop is not None
        try:
            report = await self._loop.run_in_executor(
                None, replica.serve_batch, queries
            )
        except ShardError as exc:
            return ("error", exc)
        return ("ok", report)

    def _hedge_delay(self) -> float | None:
        """The effective hedge delay in seconds, or ``None`` when
        hedging is disabled (or the latency reservoir is too cold for
        a quantile-derived delay)."""
        config = self._config
        if config.hedge_delay_s is not None:
            return config.hedge_delay_s
        if config.hedge_quantile is None:
            return None
        with self._lock:
            if self._latencies.observed < config.hedge_min_samples:
                return None
            return self._latencies.quantile(config.hedge_quantile)

    async def _serve_batch(
        self, queries: tuple[RangeQuery, ...]
    ) -> GatewayBatchRecord:
        """Serve one batch with failover and (first attempt only)
        hedging; raises :class:`~repro.errors.AllReplicasFailedError`
        when the fleet is exhausted."""
        assert self._loop is not None
        attempts: list[tuple[int, str, str]] = []
        failed_ids: list[int] = []
        tried: set[int] = set()
        hedged = False
        hedge_replica_id: int | None = None
        metrics = get_metrics()
        while True:
            replica = self._next_candidate(tried)
            if replica is None:
                raise AllReplicasFailedError(
                    attempts
                    or [(-1, "GatewayError", "no healthy replicas")]
                )
            tried.add(replica.replica_id)
            primary_fut = asyncio.ensure_future(
                self._attempt(replica, queries)
            )
            hedge_fut: asyncio.Future | None = None
            hedge_replica: Replica | None = None
            delay = None if (attempts or hedged) else self._hedge_delay()
            if delay is not None:
                done, _pending = await asyncio.wait(
                    {primary_fut}, timeout=delay
                )
                if not done:
                    hedge_replica = self._next_candidate(tried)
                    if hedge_replica is not None:
                        tried.add(hedge_replica.replica_id)
                        hedged = True
                        hedge_replica_id = hedge_replica.replica_id
                        with self._lock:
                            self._stats.hedges += 1
                            self._trace.emit(
                                "gateway.hedge",
                                f"replica-{hedge_replica.replica_id}",
                                primary=replica.replica_id,
                                size=len(queries),
                            )
                        metrics.inc(
                            "gateway_hedges_total", outcome="fired"
                        )
                        hedge_fut = asyncio.ensure_future(
                            self._attempt(hedge_replica, queries)
                        )
            if hedge_fut is not None:
                assert hedge_replica is not None
                winner, outcome, loser = await self._race_hedge(
                    replica, primary_fut, hedge_replica, hedge_fut
                )
                if winner is None:
                    # Both sides failed; fail over past both of them.
                    for side, fut in (
                        (replica, primary_fut),
                        (hedge_replica, hedge_fut),
                    ):
                        exc = fut.result()[1]
                        attempts.append(
                            (
                                side.replica_id,
                                type(exc).__name__,
                                str(exc),
                            )
                        )
                        failed_ids.append(side.replica_id)
                        await self._note_failover(side, exc)
                    metrics.inc(
                        "gateway_hedges_total", outcome="failed"
                    )
                    continue
                report = outcome[1]
                hedge_won = winner is hedge_replica
                if hedge_won:
                    with self._lock:
                        self._stats.hedges_won += 1
                    metrics.inc("gateway_hedges_total", outcome="won")
                record, tripped = self._record_batch(
                    queries,
                    winner,
                    report,
                    attempts,
                    failed_ids,
                    hedged=True,
                    hedge_replica_id=hedge_replica_id,
                )
                with self._lock:
                    self._hedge_records.append(
                        GatewayHedgeRecord(
                            batch_id=record.batch_id,
                            replica_id=winner.replica_id,
                            role="hedge" if hedge_won else "primary",
                            used=True,
                            error=None,
                            report=report,
                        )
                    )
                loser_replica, loser_fut = loser
                loser_role = (
                    "primary" if hedge_won else "hedge"
                )
                self._spawn_hedge_reaper(
                    record.batch_id,
                    loser_replica,
                    loser_fut,
                    loser_role,
                )
                if tripped:
                    await self._suspect(winner, "breaker")
                return record
            kind, payload = await primary_fut
            if kind == "ok":
                record, tripped = self._record_batch(
                    queries,
                    replica,
                    payload,
                    attempts,
                    failed_ids,
                    hedged=hedged,
                    hedge_replica_id=hedge_replica_id,
                )
                if tripped:
                    await self._suspect(replica, "breaker")
                return record
            exc = payload
            attempts.append(
                (replica.replica_id, type(exc).__name__, str(exc))
            )
            failed_ids.append(replica.replica_id)
            await self._note_failover(replica, exc)

    async def _race_hedge(
        self,
        primary: Replica,
        primary_fut: asyncio.Future,
        hedge: Replica,
        hedge_fut: asyncio.Future,
    ):
        """Race the primary and hedge attempts; return
        ``(winner_replica, winner_outcome, (loser_replica,
        loser_future))`` — or ``(None, None, None)`` when both sides
        failed.  The primary wins ties."""
        pair = ((primary, primary_fut), (hedge, hedge_fut))
        pending = {primary_fut, hedge_fut}
        while pending:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            for side_replica, side_fut in pair:
                if side_fut.done() and side_fut.result()[0] == "ok":
                    loser = next(
                        (r, f) for r, f in pair if f is not side_fut
                    )
                    return side_replica, side_fut.result(), loser
        return None, None, None

    def _spawn_hedge_reaper(
        self,
        batch_id: int,
        replica: Replica,
        future: asyncio.Future,
        role: str,
    ) -> None:
        """Track the hedge loser until it completes so its work is
        recorded (and its failure suspected) honestly."""
        assert self._loop is not None
        task = self._loop.create_task(
            self._reap_hedge_loser(batch_id, replica, future, role)
        )
        self._hedge_tasks.add(task)
        task.add_done_callback(self._hedge_tasks.discard)

    async def _reap_hedge_loser(
        self,
        batch_id: int,
        replica: Replica,
        future: asyncio.Future,
        role: str,
    ) -> None:
        """Await the losing side of a hedge race; its report (real IO
        for an unused answer) is recorded but never billed to the
        batch, and a loser that *failed* is suspected like any other
        fleet fault."""
        kind, payload = await future
        metrics = get_metrics()
        if kind == "ok":
            with self._lock:
                self._hedge_records.append(
                    GatewayHedgeRecord(
                        batch_id=batch_id,
                        replica_id=replica.replica_id,
                        role=role,
                        used=False,
                        error=None,
                        report=payload,
                    )
                )
            if role == "hedge":
                metrics.inc("gateway_hedges_total", outcome="lost")
            return
        exc = payload
        with self._lock:
            self._hedge_records.append(
                GatewayHedgeRecord(
                    batch_id=batch_id,
                    replica_id=replica.replica_id,
                    role=role,
                    used=False,
                    error=type(exc).__name__,
                    report=None,
                )
            )
        if role == "hedge":
            metrics.inc("gateway_hedges_total", outcome="failed")
        await self._suspect(replica, type(exc).__name__)

    async def _note_failover(
        self, replica: Replica, exc: Exception
    ) -> None:
        """Count one failover and suspect the failed replica."""
        with self._lock:
            self._stats.failovers += 1
            self._trace.emit(
                "gateway.failover",
                f"replica-{replica.replica_id}",
                error=type(exc).__name__,
            )
        get_metrics().inc(
            "gateway_failovers_total", replica=replica.replica_id
        )
        await self._suspect(replica, type(exc).__name__)

    def _record_batch(
        self,
        queries: tuple[RangeQuery, ...],
        replica: Replica,
        report: Any,
        attempts: list[tuple[int, str, str]],
        failed_ids: list[int],
        hedged: bool,
        hedge_replica_id: int | None,
    ) -> tuple[GatewayBatchRecord, bool]:
        """Record a served batch; returns the record and whether the
        replica's circuit breaker just tripped."""
        tripped = False
        with self._lock:
            batch_id = self._batch_counter
            self._batch_counter += 1
            self._stats.batches += 1
            record = GatewayBatchRecord(
                batch_id=batch_id,
                size=len(queries),
                replica_id=replica.replica_id,
                attempts=len(attempts) + 1,
                failed_replica_ids=tuple(failed_ids),
                report=report,
                hedged=hedged,
                hedge_replica_id=hedge_replica_id,
            )
            self._batch_records.append(record)
            self._trace.emit(
                "gateway.batch",
                f"batch-{batch_id}",
                size=len(queries),
                replica=replica.replica_id,
                attempts=len(attempts) + 1,
                hedged=hedged,
            )
            slot = self._slots[replica.replica_id]
            for query, batch_outcome in zip(queries, report.outcomes):
                ok = batch_outcome.error is None
                slot.breaker.record(ok)
                if (
                    ok
                    and batch_outcome.result is not None
                    and self._canary_ref is None
                ):
                    self._canary_ref = (
                        query,
                        tuple(batch_outcome.result.answer.words),
                    )
            if (
                slot.state is ReplicaState.ACTIVE
                and slot.breaker.open
            ):
                tripped = True
                self._stats.breaker_opens += 1
                self._trace.emit(
                    "gateway.breaker_open",
                    f"replica-{replica.replica_id}",
                    failures=slot.breaker.failure_count,
                    window=slot.breaker.window,
                )
        if tripped:
            get_metrics().inc("gateway_breaker_opens_total")
        return record, tripped

    # ------------------------------------------------------------------
    def _set_state_locked(
        self, slot: ReplicaSlot, state: ReplicaState, reason: str
    ) -> None:
        """Transition one slot (caller holds the gateway lock)."""
        slot.state = state
        self._trace.emit(
            "gateway.replica_state",
            f"replica-{slot.replica.replica_id}",
            to=state.value,
            reason=reason,
        )
        get_metrics().inc(
            "gateway_replica_transitions_total", to=state.value
        )

    async def _suspect(self, replica: Replica, reason: str) -> None:
        """Take a replica out of rotation (idempotent) and close its
        backend off the event loop."""
        assert self._loop is not None
        with self._lock:
            slot = self._slots[replica.replica_id]
            if slot.state is not ReplicaState.ACTIVE:
                return
            slot.last_error = reason
            self._set_state_locked(
                slot, ReplicaState.SUSPECTED, reason
            )
            slot.probe_attempts = 0
            slot.breaker.reset()
            if self._config.max_probe_attempts > 0:
                slot.next_probe_at = self._loop.time() + probe_backoff(
                    0,
                    self._config.probe_backoff_base_s,
                    self._config.probe_backoff_max_s,
                    self._config.probe_jitter,
                    self._rng,
                )
            else:
                self._set_state_locked(
                    slot, ReplicaState.DEAD, "re-admission disabled"
                )
        await self._loop.run_in_executor(
            None, self._close_replica, replica
        )

    @staticmethod
    def _close_replica(replica: Replica) -> None:
        try:
            replica.close()
        except Exception:  # pragma: no cover - best-effort reap
            pass

    # ------------------------------------------------------------------
    async def _supervisor(self) -> None:
        """Background self-healing loop: health-scan active replicas,
        probe suspected ones, re-admit canary passers."""
        interval = self._config.supervisor_interval_s
        while True:
            await asyncio.sleep(interval)
            try:
                await self._supervise_once()
            except asyncio.CancelledError:  # pragma: no cover
                raise
            except Exception:  # pragma: no cover - must survive
                continue

    async def _supervise_once(self) -> None:
        """One supervisor tick: scan health, run due probes."""
        assert self._loop is not None
        with self._lock:
            active = [
                slot.replica
                for slot in self._iter_slots()
                if slot.state is ReplicaState.ACTIVE
            ]
        for replica in active:
            healthy = await self._loop.run_in_executor(
                None, self._probe_health, replica
            )
            if not healthy:
                await self._suspect(replica, "health-scan")
        now = self._loop.time()
        due: list[ReplicaSlot] = []
        with self._lock:
            for slot in self._iter_slots():
                if (
                    slot.state is ReplicaState.SUSPECTED
                    and now >= slot.next_probe_at
                ):
                    self._set_state_locked(
                        slot, ReplicaState.PROBATION, "probe"
                    )
                    due.append(slot)
        for slot in due:
            await self._probe_slot(slot)

    @staticmethod
    def _probe_health(replica: Replica) -> bool:
        try:
            return bool(replica.is_healthy())
        except Exception:
            return False

    async def _probe_slot(self, slot: ReplicaSlot) -> None:
        """Run one re-admission probe for a slot in ``PROBATION``."""
        assert self._loop is not None
        replica = slot.replica
        passed = await self._loop.run_in_executor(
            None, self._probe_replica_sync, replica
        )
        metrics = get_metrics()
        dead = False
        with self._lock:
            if slot.state is not ReplicaState.PROBATION:
                return  # pragma: no cover - raced with shutdown
            if passed:
                attempt = slot.probe_attempts
                slot.probe_attempts = 0
                slot.breaker.reset()
                self._set_state_locked(
                    slot, ReplicaState.ACTIVE, "readmitted"
                )
                self._stats.readmissions += 1
                self._trace.emit(
                    "gateway.readmit",
                    f"replica-{replica.replica_id}",
                    attempt=attempt,
                )
            else:
                slot.probe_attempts += 1
                if (
                    slot.probe_attempts
                    >= self._config.max_probe_attempts
                ):
                    self._set_state_locked(
                        slot,
                        ReplicaState.DEAD,
                        "probe budget exhausted",
                    )
                    dead = True
                else:
                    self._set_state_locked(
                        slot, ReplicaState.SUSPECTED, "probe failed"
                    )
                    slot.next_probe_at = (
                        self._loop.time()
                        + probe_backoff(
                            slot.probe_attempts,
                            self._config.probe_backoff_base_s,
                            self._config.probe_backoff_max_s,
                            self._config.probe_jitter,
                            self._rng,
                        )
                    )
        if passed:
            metrics.inc("gateway_readmissions_total")
            metrics.inc("gateway_probes_total", outcome="readmitted")
        elif dead:
            metrics.inc("gateway_probes_total", outcome="dead")
            await self._loop.run_in_executor(
                None, self._close_replica, replica
            )
        else:
            metrics.inc("gateway_probes_total", outcome="retry")

    def _canary_expectation(
        self,
    ) -> tuple[RangeQuery, tuple[int, ...] | None] | None:
        """The canary query and (when known) its expected answer words.
        ``None`` when no canary is available yet."""
        with self._lock:
            configured = self._config.canary_query
            ref = self._canary_ref
        if configured is not None:
            if ref is not None and ref[0] == configured:
                return configured, ref[1]
            return configured, None
        if ref is not None:
            return ref
        return None

    def _active_peer(self, exclude: int) -> Replica | None:
        """An ``ACTIVE`` replica other than ``exclude`` (canary
        reference source), or ``None``."""
        with self._lock:
            for slot in self._iter_slots():
                if (
                    slot.state is ReplicaState.ACTIVE
                    and slot.replica.replica_id != exclude
                ):
                    return slot.replica
        return None

    def _probe_replica_sync(self, replica: Replica) -> bool:
        """Revive a replica's backend and canary-check it (runs on a
        dispatch thread).

        The canary answer must be bit-identical to the expected words
        — recorded from live traffic, or replayed on a healthy peer.
        With no reference available (no traffic served yet and no
        peer), a clean canary run is accepted.
        """
        try:
            if not replica.revive():
                return False
            if not replica.is_healthy():
                return False
            canary = self._canary_expectation()
            if canary is None:
                return True
            query, expected_words = canary
            report = replica.serve_batch((query,))
            outcome = report.outcomes[0]
            if outcome.error is not None or outcome.result is None:
                return False
            words = tuple(outcome.result.answer.words)
            if expected_words is None:
                peer = self._active_peer(exclude=replica.replica_id)
                if peer is None:
                    return True
                peer_report = peer.serve_batch((query,))
                peer_outcome = peer_report.outcomes[0]
                if (
                    peer_outcome.error is not None
                    or peer_outcome.result is None
                ):
                    # The peer's trouble is not the candidate's fault.
                    return True
                expected_words = tuple(
                    peer_outcome.result.answer.words
                )
            return words == tuple(expected_words)
        except Exception:
            return False

    # ------------------------------------------------------------------
    #: Per-line stream limit for the TCP endpoint.  Asyncio's default
    #: (64 KiB) is too small for a ``"positions": true`` response over
    #: a wide column; clients reading such responses need the same
    #: limit on their side of the socket.
    TCP_LINE_LIMIT = 16 * 1024 * 1024

    async def serve_tcp(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> asyncio.AbstractServer:
        """Listen for JSON-lines range queries on a TCP socket.

        One request per line::

            {"id": 7, "ranges": [[0, 3], [9, 12]],
             "deadline_s": 0.5, "priority": "high",
             "positions": false}

        One response line per request (requests on a connection are
        served concurrently; responses carry the request ``id``)::

            {"id": 7, "status": "ok", "count": 1234,
             "io_bytes": 5678}
            {"id": 8, "status": "error", "error": "OverloadedError",
             "message": "...",
             "detail": {"kind": "refused", "priority": "low",
                        "queue_depth": 64, "max_queue_depth": 64,
                        "retryable": true}}

        Error responses carry a typed ``detail`` object so clients can
        tell shed from failure: ``OverloadedError`` reports the queue
        state, shed ``kind``, and ``priority``;
        ``DeadlineExceededError`` reports the ``phase`` (queued vs
        inflight) and the deadline; ``AllReplicasFailedError`` lists
        every per-replica attempt; all carry a ``retryable`` hint.

        ``"positions": true`` adds the matching row positions to the
        response (omitted by default — answers over wide columns are
        large).  Request and response lines may be up to
        ``TCP_LINE_LIMIT`` bytes; clients expecting large responses
        should open their connection with the same ``limit``.  The
        returned server is started; callers close it via
        ``server.close()`` / ``await server.wait_closed()``.
        """
        if not self._started or self._closed:
            raise GatewayClosedError(
                "start the gateway before serving TCP"
            )
        return await asyncio.start_server(
            self._handle_connection,
            host=host,
            port=port,
            limit=self.TCP_LINE_LIMIT,
        )

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Serve one client connection, pipelining its requests."""
        get_metrics().inc("gateway_connections_total")
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                task = asyncio.ensure_future(
                    self._handle_request_line(
                        text, writer, write_lock
                    )
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    @staticmethod
    def _error_response(request_id: Any, exc: Exception) -> dict:
        """Build a typed JSON error response for the TCP endpoint."""
        response: dict[str, Any] = {
            "id": request_id,
            "status": "error",
            "error": type(exc).__name__,
            "message": str(exc),
        }
        detail: dict[str, Any] = {}
        if isinstance(exc, OverloadedError):
            detail = {
                "kind": exc.kind,
                "priority": exc.priority,
                "queue_depth": exc.queue_depth,
                "max_queue_depth": exc.max_queue_depth,
                "retryable": True,
            }
        elif isinstance(exc, DeadlineExceededError):
            detail = {
                "phase": exc.phase,
                "deadline_s": exc.deadline_s,
                "retryable": True,
            }
        elif isinstance(exc, AllReplicasFailedError):
            detail = {
                "attempts": [
                    [replica_id, error_type, message]
                    for replica_id, error_type, message in exc.attempts
                ],
                "retryable": False,
            }
        elif isinstance(exc, QueryFailedError):
            detail = {
                "query_index": exc.query_index,
                "error_type": exc.error_type,
                "shard_id": exc.shard_id,
                "retryable": False,
            }
        elif isinstance(exc, GatewayClosedError):
            detail = {"retryable": False}
        if detail:
            response["detail"] = detail
        return response

    async def _handle_request_line(
        self,
        text: str,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        """Parse, serve, and answer one JSON-lines request."""
        request_id: Any = None
        try:
            payload = json.loads(text)
            request_id = payload.get("id")
            ranges = payload["ranges"]
            query = RangeQuery(
                [(int(lo), int(hi)) for lo, hi in ranges],
                label=str(payload.get("label", "")),
            )
            deadline_s = payload.get("deadline_s")
            priority = payload.get("priority")
            result = await self.submit(
                query,
                deadline_s=(
                    float(deadline_s)
                    if deadline_s is not None
                    else None
                ),
                priority=(
                    str(priority) if priority is not None else None
                ),
            )
            response: dict[str, Any] = {
                "id": request_id,
                "status": "ok",
                "count": result.answer.count(),
                "io_bytes": result.io_bytes,
            }
            if payload.get("positions"):
                response["positions"] = [
                    int(position)
                    for position in result.answer.to_positions()
                ]
        except Exception as exc:
            response = self._error_response(request_id, exc)
        data = (
            json.dumps(response, sort_keys=True) + "\n"
        ).encode("utf-8")
        async with write_lock:
            writer.write(data)
            await writer.drain()

    def __repr__(self) -> str:
        healthy = len(self.healthy_replicas)
        return (
            f"Gateway(replicas={len(self._replicas)} "
            f"({healthy} healthy), started={self._started}, "
            f"closed={self._closed})"
        )
