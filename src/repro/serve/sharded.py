"""Sharded multiprocess scatter-gather serving.

The thread-pool :class:`~repro.serve.batch.BatchExecutor` saturates on
WAH decode/union CPU — the GIL caps the serving path at one core's
worth of compute.  This module scales past that by *sharding the rows*:
the column is partitioned into ``N`` contiguous row ranges, each shard
owning its own hierarchy-node bitmaps, store directory,
:class:`~repro.storage.cache.BufferPool`, and H-CS cut selected under a
per-shard slice of the Case-3 budget ``S_total``.  Shards run in worker
*processes* (spawn-safe), each free to run its own small thread pool —
a process/thread hybrid.  Every :class:`~repro.workload.query.RangeQuery`
is scattered to all shards and the per-shard answers are merged by
row-offset concatenation.

The discipline of the thread path survives the process boundary:

* **Bit-identical answers** — each shard's answer and the merged
  concatenation are canonical WAH, so the merged bitmap's words equal
  the single-shard serial oracle's exactly.
* **Exact reconciliation** — each shard's
  :class:`~repro.storage.accounting.IOSnapshot`\\ s ship back over the
  result pipe and must satisfy ``io == pin_io + Σ per-query io`` (all
  counters, fault path included) *per shard*, and the batch totals are
  the per-shard sums.
* **Deterministic trace merge** — per-shard per-query streams merge
  query-major then shard-major, re-sequenced densely; wall-clock
  interleaving never leaks in.
* **Typed failure** — a dead, hung, or erroring shard raises
  :class:`~repro.errors.ShardFailedError` (no hang, no silent partial
  answer); a query that fails on one shard becomes a per-query
  :class:`~repro.errors.QueryFailedError` outcome carrying the shard
  id, and its siblings still return.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from ..bitmap.wah import WahBitmap
from ..errors import QueryFailedError, ShardError, ShardFailedError
from ..hierarchy.serialization import (
    hierarchy_from_dict,
    hierarchy_to_dict,
)
from ..hierarchy.tree import Hierarchy
from ..obs import TraceEvent
from ..storage.accounting import IOSnapshot
from ..workload.query import RangeQuery, Workload
from .batch import (
    QueryOutcome,
    merge_event_streams,
    reconcile_exactly,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.executor import ExecutionResult
    from ..storage.compactor import CompactionReport
    from ..storage.delta import DeltaAppendResult

__all__ = [
    "ShardCutInfo",
    "ShardRunReport",
    "ShardSpec",
    "ShardedBatchReport",
    "ShardedExecutor",
    "shard_row_ranges",
]

#: Per-shard k for budgeted (Case-3) cut selection.
DEFAULT_SHARD_K = 4

#: How long the parent waits on a shard's reply before declaring it
#: hung.  Generous — the point is "no infinite hang", not latency SLO.
DEFAULT_RECV_TIMEOUT_S = 120.0


def shard_row_ranges(
    num_rows: int, num_shards: int
) -> tuple[tuple[int, int], ...]:
    """Partition ``[0, num_rows)`` into ``num_shards`` contiguous
    half-open ranges whose sizes differ by at most one row.

    Raises:
        ValueError: when ``num_shards`` is not in ``[1, num_rows]``
            (an empty shard would own zero-bit bitmaps, which the
            reopen path cannot size).
    """
    if num_shards < 1:
        raise ValueError(
            f"num_shards must be >= 1, got {num_shards}"
        )
    if num_shards > num_rows:
        raise ValueError(
            f"cannot cut {num_rows} rows into {num_shards} non-empty "
            f"shards"
        )
    base, extra = divmod(num_rows, num_shards)
    ranges = []
    lo = 0
    for shard_id in range(num_shards):
        hi = lo + base + (1 if shard_id < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return tuple(ranges)


@dataclass(frozen=True)
class ShardSpec:
    """One shard's identity: its store directory and row range.

    Attributes:
        shard_id: dense shard index, ``0 .. num_shards-1``.
        store_dir: directory holding this shard's ``node_<id>.wah``
            bitmap files (and MANIFEST when durable).
        row_lo: first global row owned by the shard (inclusive).
        row_hi: end of the shard's global row range (exclusive).
    """

    shard_id: int
    store_dir: str
    row_lo: int
    row_hi: int

    @property
    def num_rows(self) -> int:
        """Rows owned by this shard."""
        return self.row_hi - self.row_lo


@dataclass(frozen=True)
class ShardCutInfo:
    """What one shard prepared: its cut and its pool budget.

    Attributes:
        shard_id: the shard that selected the cut.
        cut_node_ids: hierarchy node ids of the shard's cut (the
            hierarchy is shared, so ids are comparable across shards).
        budget_bytes: the shard's buffer-pool budget — the per-shard
            ``S_total`` slice when one was given, otherwise the cut's
            measured file bytes (``None`` for an unbounded pool).
    """

    shard_id: int
    cut_node_ids: tuple[int, ...]
    budget_bytes: int | None


@dataclass(frozen=True)
class _WorkerConfig:
    """Everything a spawn-started worker needs (all fields picklable)."""

    shard_id: int
    store_dir: str
    hierarchy_payload: dict
    threads: int
    durable: bool
    fault_policy_kwargs: dict | None
    retry_max_attempts: int | None
    expected_rows: int


class _WorkerState:
    """Worker-process state: reopened catalog, pool, batch executor."""

    def __init__(self, config: _WorkerConfig):
        from ..storage.catalog import MaterializedNodeCatalog
        from ..storage.faults import FaultPolicy
        from ..storage.filestore import BitmapFileStore
        from ..storage.manifest import DurableBitmapStore

        self._config = config
        hierarchy = hierarchy_from_dict(config.hierarchy_payload)
        policy = (
            FaultPolicy(**config.fault_policy_kwargs)
            if config.fault_policy_kwargs
            else None
        )
        store_cls = (
            DurableBitmapStore if config.durable else BitmapFileStore
        )
        self._store = store_cls(
            config.store_dir, fault_policy=policy
        )
        # The manifest-reopen path: rehydrate sizes/densities from the
        # stored bitmaps (and, when durable, verify the manifest's
        # hierarchy fingerprint) instead of rebuilding from a column.
        self._catalog = MaterializedNodeCatalog.from_store(
            hierarchy, self._store
        )
        if self._catalog.num_rows != config.expected_rows:
            raise ShardError(
                f"shard {config.shard_id} store holds "
                f"{self._catalog.num_rows} rows, expected "
                f"{config.expected_rows}"
            )
        self._batch = None
        self._pool = None
        self._cut: tuple[int, ...] = ()
        self._auto_budget = False

    @property
    def num_rows(self) -> int:
        """Rows in the shard's reopened catalog."""
        return self._catalog.num_rows

    def prepare(
        self,
        queries: tuple[RangeQuery, ...],
        budget_bytes: int | None,
        cut_node_ids: tuple[int, ...] | None,
        k: int,
    ) -> tuple:
        """Select (or accept) a cut and build the shard's pool."""
        from ..core.constrained import k_cut_selection
        from ..core.multi import select_cut_multi
        from ..storage.costmodel import MB

        workload = Workload(queries) if queries else None
        if cut_node_ids is not None:
            cut = tuple(cut_node_ids)
        elif workload is None:
            raise ShardError(
                "prepare needs a workload to select a cut from, or "
                "an explicit cut"
            )
        elif budget_bytes is not None:
            selected = k_cut_selection(
                self._catalog, workload, budget_bytes / MB, k=k
            )
            cut = tuple(selected.cut.node_ids)
        else:
            cut = tuple(
                select_cut_multi(
                    self._catalog, workload
                ).cut.node_ids
            )
        if budget_bytes is not None:
            pool_budget: int | None = int(budget_bytes)
        elif cut:
            pool_budget = self._cut_file_bytes(cut)
        else:
            pool_budget = None
        self._auto_budget = budget_bytes is None
        self._cut = cut
        self._build_serving(pool_budget)
        return (
            "prepared",
            self._config.shard_id,
            cut,
            pool_budget,
        )

    def _cut_file_bytes(self, cut: tuple[int, ...]) -> int:
        """Total stored bytes of the cut members' bitmap files."""
        from ..storage.catalog import node_file_name

        return sum(
            self._store.size_bytes(node_file_name(node_id))
            for node_id in cut
        )

    def _build_serving(self, pool_budget: int | None) -> None:
        """(Re)build the shard's pool and batch executor."""
        from ..core.executor import QueryExecutor
        from ..storage.cache import BufferPool
        from ..storage.faults import RetryPolicy
        from .batch import BatchExecutor

        retry = (
            RetryPolicy(
                max_attempts=self._config.retry_max_attempts
            )
            if self._config.retry_max_attempts is not None
            else None
        )
        self._pool = BufferPool(
            self._store,
            budget_bytes=pool_budget,
            retry_policy=retry,
        )
        self._batch = BatchExecutor(
            QueryExecutor(self._catalog, self._pool),
            max_workers=self._config.threads,
        )

    def run(
        self, queries: tuple[RangeQuery, ...], pin: bool
    ) -> tuple:
        """Serve the batch locally and ship the full report back."""
        if self._batch is None:
            raise ShardError("run received before prepare")
        report = self._batch.run(queries, self._cut, pin=pin)
        return (
            "report",
            self._config.shard_id,
            report,
            self._pool.resident_bytes,
        )

    def ingest(self, values: np.ndarray) -> tuple:
        """Append a row batch to this shard's store as one delta
        generation; queries merge it on read from then on."""
        from ..storage.delta import DeltaAppender

        appender = DeltaAppender(
            self._store, self._catalog.hierarchy
        )
        result = appender.append(np.asarray(values))
        return ("ingested", self._config.shard_id, result)

    def compact(self, max_deltas: int | None) -> tuple:
        """Fold this shard's delta generations into a new base, then
        drop the shard pool's now-stale cached payloads.

        A pool budgeted to the cut's *file bytes* (no explicit budget
        at prepare time) is rebuilt against the new base generation:
        folded bases are larger than the ones the budget was sized
        for, and a stale budget would reject the very cut it exists
        to hold.
        """
        from ..storage.compactor import Compactor

        report = Compactor(
            self._store, max_deltas_per_run=max_deltas
        ).run()
        if self._pool is not None:
            self._pool.clear()
            if report.did_work and self._auto_budget and self._cut:
                self._build_serving(
                    self._cut_file_bytes(self._cut)
                )
        return ("compacted", self._config.shard_id, report)


def _send_safely(conn, message) -> None:
    """Best-effort send; a gone parent is not the worker's problem."""
    try:
        conn.send(message)
    except (BrokenPipeError, OSError):  # pragma: no cover - teardown
        pass


def _shard_worker_main(conn, config: _WorkerConfig) -> None:
    """Entry point of one shard worker process (spawn-safe: module
    level, all arguments picklable).

    Replies on ``conn`` with ``("ready", ...)`` after reopening its
    store, then serves ``("prepare", ...)`` / ``("run", ...)`` commands
    until ``("stop",)`` or EOF.  Any exception becomes an
    ``("error", shard_id, type_name, message)`` reply — errors cross
    the pipe as strings, never as pickled exception objects.
    """
    try:
        state = _WorkerState(config)
        conn.send(("ready", config.shard_id, state.num_rows))
    except Exception as exc:
        _send_safely(
            conn,
            ("error", config.shard_id, type(exc).__name__, str(exc)),
        )
        conn.close()
        return
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        command = message[0]
        if command == "stop":
            _send_safely(conn, ("stopped", config.shard_id))
            break
        try:
            if command == "prepare":
                reply = state.prepare(*message[1:])
            elif command == "run":
                reply = state.run(*message[1:])
            elif command == "ingest":
                reply = state.ingest(*message[1:])
            elif command == "compact":
                reply = state.compact(*message[1:])
            else:
                raise ShardError(f"unknown command {command!r}")
            conn.send(reply)
        except Exception as exc:
            _send_safely(
                conn,
                (
                    "error",
                    config.shard_id,
                    type(exc).__name__,
                    str(exc),
                ),
            )
    conn.close()


@dataclass(frozen=True)
class ShardRunReport:
    """One shard's view of a batch, reconstructed parent-side.

    Everything here crossed the result pipe from the worker process:
    per-query outcomes (shard-local answers over the shard's rows),
    the shard's pin-phase and total accountant deltas, and the
    resident-set size of its budgeted pool.

    Attributes:
        shard_id: which shard produced the report.
        row_lo: the shard's first global row (inclusive).
        row_hi: end of the shard's global row range (exclusive).
        outcomes: the shard's per-query outcomes in query order
            (answers are bitmaps over ``row_hi - row_lo`` bits).
        pin_io: the shard accountant's delta for its pin phase.
        io: the shard accountant's delta for the whole batch.
        wall_seconds: the shard's local batch wall clock.
        workers: threads the shard's batch actually used.
        resident_bytes: the shard pool's resident bytes after the run
            (must stay within the shard's budget slice).
    """

    shard_id: int
    row_lo: int
    row_hi: int
    outcomes: tuple[QueryOutcome, ...]
    pin_io: IOSnapshot
    io: IOSnapshot
    wall_seconds: float
    workers: int
    resident_bytes: int

    def reconciles(self) -> bool:
        """Whether this shard's shipped snapshots balance exactly:
        ``io == pin_io + Σ per-query io`` on every counter."""
        return reconcile_exactly(
            self.pin_io,
            (outcome.io for outcome in self.outcomes),
            self.io,
        )


@dataclass(frozen=True)
class ShardedBatchReport:
    """A scatter-gather batch: merged outcomes plus per-shard reports.

    Attributes:
        outcomes: merged per-query outcomes in query order — answers
            are full-width bitmaps (per-shard answers concatenated by
            row offset), IO snapshots are per-shard sums, events are
            the deterministic query-major/shard-major merge.
        shard_reports: the per-shard views, in shard order.
        pin_io: sum of the shards' pin-phase deltas.
        io: sum of the shards' total deltas.
        wall_seconds: parent-side scatter→gather wall clock.
        workers: total worker threads across shards.
        num_rows: total rows across shards (the merged answers' width).
    """

    outcomes: tuple[QueryOutcome, ...]
    shard_reports: tuple[ShardRunReport, ...]
    pin_io: IOSnapshot
    io: IOSnapshot
    wall_seconds: float
    workers: int
    num_rows: int

    @property
    def num_shards(self) -> int:
        """How many shards served the batch."""
        return len(self.shard_reports)

    @property
    def results(self) -> tuple["ExecutionResult", ...]:
        """Merged execution results in query order; raises the first
        failed outcome's :class:`~repro.errors.QueryFailedError`."""
        for outcome in self.outcomes:
            if outcome.error is not None:
                raise outcome.error
        return tuple(outcome.result for outcome in self.outcomes)

    @property
    def errors(self) -> tuple[QueryFailedError, ...]:
        """Failed merged outcomes' errors, in query order."""
        return tuple(
            outcome.error
            for outcome in self.outcomes
            if outcome.error is not None
        )

    @property
    def ok(self) -> bool:
        """Whether every query succeeded on every shard."""
        return not self.errors

    @property
    def attributed_bytes(self) -> int:
        """Total bytes charged to individual (merged) queries."""
        return sum(
            outcome.io.bytes_read for outcome in self.outcomes
        )

    def reconciles(self) -> bool:
        """Whether IO reconciles byte-exactly across the process
        boundaries: every shard internally (``io == pin_io +
        Σ per-query io``, fault counters included) and the batch
        totals as the per-shard sums."""
        return (
            all(
                report.reconciles()
                for report in self.shard_reports
            )
            and IOSnapshot.combine(
                report.io for report in self.shard_reports
            )
            == self.io
            and IOSnapshot.combine(
                report.pin_io for report in self.shard_reports
            )
            == self.pin_io
        )

    def merged_events(self) -> tuple[TraceEvent, ...]:
        """One deterministic stream: merged per-query streams (already
        shard-major within each query) concatenated in query order and
        re-sequenced densely."""
        return merge_event_streams(
            outcome.events for outcome in self.outcomes
        )


class ShardedExecutor:
    """Scatter-gather serving over row shards in worker processes.

    Lifecycle: :meth:`build` (or construct over existing
    :class:`ShardSpec`\\ s) → :meth:`start` → :meth:`prepare` →
    :meth:`run` (any number of times) → :meth:`close`.  The class is a
    context manager; ``__enter__`` starts the workers.

    Args:
        hierarchy: the shared domain hierarchy (shipped to workers as
            a JSON payload; every shard indexes the same tree).
        shard_specs: the shards' store directories and row ranges, in
            shard order; ranges must tile ``[0, num_rows)``.
        threads_per_shard: size of each shard's local thread pool.
        durable: open shard stores as
            :class:`~repro.storage.manifest.DurableBitmapStore`
            (manifest verified on reopen).
        fault_policy_kwargs: keyword arguments for a per-shard
            :class:`~repro.storage.faults.FaultPolicy` constructed
            inside each worker (policies themselves hold locks and
            cannot cross the spawn boundary).
        retry_max_attempts: per-shard pool
            :class:`~repro.storage.faults.RetryPolicy` attempts, or
            ``None`` for the pool default.
        recv_timeout_s: how long to wait on a shard reply before
            raising :class:`~repro.errors.ShardFailedError`.
    """

    def __init__(
        self,
        hierarchy: Hierarchy,
        shard_specs: Sequence[ShardSpec],
        threads_per_shard: int = 1,
        durable: bool = False,
        fault_policy_kwargs: dict | None = None,
        retry_max_attempts: int | None = None,
        recv_timeout_s: float = DEFAULT_RECV_TIMEOUT_S,
    ):
        if not shard_specs:
            raise ValueError("need at least one shard")
        if threads_per_shard < 1:
            raise ValueError(
                f"threads_per_shard must be >= 1, got "
                f"{threads_per_shard}"
            )
        expected_lo = 0
        for spec in shard_specs:
            if spec.row_lo != expected_lo or spec.num_rows <= 0:
                raise ValueError(
                    f"shard specs must tile [0, num_rows) with "
                    f"non-empty contiguous ranges; shard "
                    f"{spec.shard_id} covers "
                    f"[{spec.row_lo}, {spec.row_hi})"
                )
            expected_lo = spec.row_hi
        self._hierarchy = hierarchy
        self._specs = tuple(shard_specs)
        self._threads = threads_per_shard
        self._durable = durable
        self._fault_policy_kwargs = fault_policy_kwargs
        self._retry_max_attempts = retry_max_attempts
        self._recv_timeout_s = recv_timeout_s
        self._handles: list = []
        self._prepared = False
        self._appended_rows = 0
        self._last_prepare: dict | None = None

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        hierarchy: Hierarchy,
        column: np.ndarray,
        num_shards: int,
        base_dir: str | Path,
        **kwargs,
    ) -> "ShardedExecutor":
        """Partition a column into per-shard stores and wire up an
        executor over them (workers not yet started).

        Each shard's bitmaps are materialized from its row slice into
        ``base_dir/shard_<i>`` (a MANIFEST-committed build when
        ``durable=True`` is passed through); workers later *reopen*
        those stores via
        :meth:`~repro.storage.catalog.MaterializedNodeCatalog.from_store`.
        """
        from ..storage.catalog import MaterializedNodeCatalog
        from ..storage.filestore import BitmapFileStore
        from ..storage.manifest import DurableBitmapStore

        column = np.asarray(column)
        durable = bool(kwargs.get("durable", False))
        store_cls = (
            DurableBitmapStore if durable else BitmapFileStore
        )
        specs = []
        for shard_id, (lo, hi) in enumerate(
            shard_row_ranges(int(column.size), num_shards)
        ):
            shard_dir = Path(base_dir) / f"shard_{shard_id}"
            shard_dir.mkdir(parents=True, exist_ok=True)
            MaterializedNodeCatalog(
                hierarchy, column[lo:hi], store_cls(shard_dir)
            )
            specs.append(
                ShardSpec(
                    shard_id=shard_id,
                    store_dir=str(shard_dir),
                    row_lo=lo,
                    row_hi=hi,
                )
            )
        return cls(hierarchy, specs, **kwargs)

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """Number of shards."""
        return len(self._specs)

    @property
    def shard_specs(self) -> tuple[ShardSpec, ...]:
        """The shards' specs, in shard order."""
        return self._specs

    @property
    def num_rows(self) -> int:
        """Total rows across shards, ingested appends included."""
        return self._specs[-1].row_hi + self._appended_rows

    @property
    def appended_rows(self) -> int:
        """Rows appended via :meth:`ingest` since the fleet started
        (all owned by the last shard — appends extend its range)."""
        return self._appended_rows

    @property
    def total_workers(self) -> int:
        """Worker threads across all shard processes."""
        return self.num_shards * self._threads

    @property
    def worker_processes(self) -> tuple:
        """The live worker ``Process`` objects (test hook — chaos
        tests kill one to assert typed failure propagation)."""
        return tuple(handle[1] for handle in self._handles)

    @property
    def started(self) -> bool:
        """Whether the worker processes are running."""
        return bool(self._handles)

    @property
    def healthy(self) -> bool:
        """Whether the fleet is started with every worker alive.

        The gateway's replica-failover hook: a fleet that lost a
        worker (or was torn down) reads unhealthy and stops receiving
        batches.
        """
        return bool(self._handles) and all(
            process.is_alive()
            for _spec, process, _conn in self._handles
        )

    @property
    def prepared(self) -> bool:
        """Whether the fleet has a pinned cut and can serve batches."""
        return self._prepared

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn one worker process per shard and wait for each to
        reopen its store (raises
        :class:`~repro.errors.ShardFailedError` if any cannot)."""
        if self._handles:
            raise ShardError("workers already started")
        context = multiprocessing.get_context("spawn")
        hierarchy_payload = hierarchy_to_dict(self._hierarchy)
        try:
            for spec in self._specs:
                parent_conn, child_conn = context.Pipe()
                config = _WorkerConfig(
                    shard_id=spec.shard_id,
                    store_dir=spec.store_dir,
                    hierarchy_payload=hierarchy_payload,
                    threads=self._threads,
                    durable=self._durable,
                    fault_policy_kwargs=self._fault_policy_kwargs,
                    retry_max_attempts=self._retry_max_attempts,
                    expected_rows=spec.num_rows,
                )
                process = context.Process(
                    target=_shard_worker_main,
                    args=(child_conn, config),
                    name=f"hcs-shard-{spec.shard_id}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._handles.append(
                    (spec, process, parent_conn)
                )
            for handle in self._handles:
                self._recv(handle, "ready")
        except BaseException:
            self.close()
            raise

    def _require_started(self) -> None:
        if not self._handles:
            raise ShardError(
                "workers not running; call start() (or use the "
                "executor as a context manager) first"
            )

    def _recv(self, handle, expected_kind: str):
        """Receive one reply from a shard; never hangs.

        Polls the pipe with a deadline while watching process
        liveness, so a dead or wedged worker surfaces as a typed
        :class:`~repro.errors.ShardFailedError` instead of a silent
        partial answer or an indefinite block.
        """
        spec, process, conn = handle
        deadline = time.monotonic() + self._recv_timeout_s
        while True:
            try:
                if conn.poll(0.05):
                    message = conn.recv()
                    break
            except (EOFError, OSError):
                raise ShardFailedError(
                    spec.shard_id,
                    "result pipe closed before a reply arrived",
                ) from None
            if not process.is_alive():
                raise ShardFailedError(
                    spec.shard_id,
                    f"worker process exited with code "
                    f"{process.exitcode} before replying",
                )
            if time.monotonic() > deadline:
                raise ShardFailedError(
                    spec.shard_id,
                    f"no reply within {self._recv_timeout_s:.0f}s",
                )
        kind = message[0]
        if kind == "error":
            raise ShardFailedError(
                spec.shard_id, f"{message[2]}: {message[3]}"
            )
        if kind != expected_kind:
            raise ShardFailedError(
                spec.shard_id,
                f"expected {expected_kind!r} reply, got {kind!r}",
            )
        return message

    def _scatter_gather(
        self, command: tuple, expected_kind: str
    ) -> list:
        """Send one command to every shard, then gather all replies.

        Any shard failure tears the whole fleet down (close()) before
        re-raising — after a scatter has partially executed there is
        no consistent state to continue from.
        """
        self._require_started()
        try:
            for _spec, _process, conn in self._handles:
                conn.send(command)
            return [
                self._recv(handle, expected_kind)
                for handle in self._handles
            ]
        except ShardError:
            self.close()
            raise
        except (BrokenPipeError, OSError) as exc:
            self.close()
            raise ShardFailedError(
                -1, f"scatter failed: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    def prepare(
        self,
        workload: Iterable[RangeQuery] | None = None,
        budget_bytes_total: int | None = None,
        cut_node_ids: Sequence[int] | None = None,
        k: int = DEFAULT_SHARD_K,
    ) -> tuple[ShardCutInfo, ...]:
        """Have every shard select its cut and build its pool.

        Each shard receives a ``budget_bytes_total / num_shards``
        slice of the Case-3 budget and runs
        :func:`~repro.core.constrained.k_cut_selection` under it; with
        no budget, shards run the unconstrained Alg.-3 multi-query
        selection (:func:`~repro.core.multi.select_cut_multi`) and
        budget their pools to the selected cut's file bytes.  An
        explicit ``cut_node_ids`` (valid for every shard — the
        hierarchy is shared) skips selection.

        Args:
            workload: the queries to select cuts for (optional when
                ``cut_node_ids`` is given).
            budget_bytes_total: the global ``S_total`` to slice across
                shards, or ``None``.
            cut_node_ids: use this cut on every shard instead of
                selecting one.
            k: per-shard ``k`` for the budgeted k-Cut selection.

        Returns:
            One :class:`ShardCutInfo` per shard, in shard order.
        """
        queries = tuple(workload) if workload is not None else ()
        per_shard_budget = (
            int(budget_bytes_total) // self.num_shards
            if budget_bytes_total is not None
            else None
        )
        explicit_cut = (
            tuple(cut_node_ids)
            if cut_node_ids is not None
            else None
        )
        replies = self._scatter_gather(
            ("prepare", queries, per_shard_budget, explicit_cut, k),
            "prepared",
        )
        self._prepared = True
        self._last_prepare = {
            "workload": queries if workload is not None else None,
            "budget_bytes_total": budget_bytes_total,
            "cut_node_ids": explicit_cut,
            "k": k,
        }
        return tuple(
            ShardCutInfo(
                shard_id=reply[1],
                cut_node_ids=tuple(reply[2]),
                budget_bytes=reply[3],
            )
            for reply in replies
        )

    def run(
        self,
        queries: Iterable[RangeQuery],
        pin: bool = True,
    ) -> ShardedBatchReport:
        """Scatter a batch to every shard and merge the answers.

        Args:
            queries: the batch (a list or a
                :class:`~repro.workload.query.Workload`).
            pin: pin each shard's cut first (skipped for members
                already resident from a previous batch).

        Returns:
            A :class:`ShardedBatchReport` whose merged answers are
            bit-identical to a single-shard run over the whole column
            and whose accounting reconciles across the process
            boundaries.
        """
        batch = list(queries)
        if not self._prepared:
            raise ShardError("call prepare() before run()")
        started = time.perf_counter()
        replies = self._scatter_gather(
            ("run", tuple(batch), pin), "report"
        )
        wall = time.perf_counter() - started
        shard_reports = []
        try:
            for (spec, _process, _conn), reply in zip(
                self._handles, replies
            ):
                _kind, shard_id, report, resident_bytes = reply
                if shard_id != spec.shard_id or len(
                    report.outcomes
                ) != len(batch):
                    raise ShardFailedError(
                        spec.shard_id,
                        "reply does not match the scattered batch",
                    )
                # Appended rows extend the *last* shard's range: its
                # answers span base + delta rows after an ingest.
                row_hi = spec.row_hi
                if spec.shard_id == self._specs[-1].shard_id:
                    row_hi += self._appended_rows
                shard_reports.append(
                    ShardRunReport(
                        shard_id=shard_id,
                        row_lo=spec.row_lo,
                        row_hi=row_hi,
                        outcomes=report.outcomes,
                        pin_io=report.pin_io,
                        io=report.io,
                        wall_seconds=report.wall_seconds,
                        workers=report.workers,
                        resident_bytes=resident_bytes,
                    )
                )
        except ShardError:
            # A malformed reply is as fatal as a dead shard: tear the
            # fleet down so worker processes are reaped, not leaked.
            self.close()
            raise
        return ShardedBatchReport(
            outcomes=self._merge_outcomes(batch, shard_reports),
            shard_reports=tuple(shard_reports),
            pin_io=IOSnapshot.combine(
                report.pin_io for report in shard_reports
            ),
            io=IOSnapshot.combine(
                report.io for report in shard_reports
            ),
            wall_seconds=wall,
            workers=sum(
                report.workers for report in shard_reports
            ),
            num_rows=self.num_rows,
        )

    def ingest(self, values) -> "DeltaAppendResult":
        """Append a batch of rows to the column.

        Appended global rows extend the *tail* of the row space, which
        the last shard owns — so the batch routes to that one shard,
        whose worker commits it as a delta generation via
        :class:`~repro.storage.delta.DeltaAppender`.  Subsequent
        :meth:`run` answers are full-width over :attr:`num_rows`
        (appends included), merged on read.  Requires ``durable=True``
        shard stores: delta generations live in the manifest.

        Args:
            values: 1-D array of leaf ids for the appended rows.

        Returns:
            The last shard's
            :class:`~repro.storage.delta.DeltaAppendResult`.
        """
        self._require_started()
        if not self._durable:
            raise ShardError(
                "ingest requires durable=True shard stores (delta "
                "generations are manifest-committed)"
            )
        handle = self._handles[-1]
        spec, _process, conn = handle
        try:
            conn.send(("ingest", np.asarray(values)))
            reply = self._recv(handle, "ingested")
        except ShardError:
            self.close()
            raise
        except (BrokenPipeError, OSError) as exc:
            self.close()
            raise ShardFailedError(
                spec.shard_id, f"ingest failed: {exc}"
            ) from exc
        result = reply[2]
        self._appended_rows += result.num_rows
        return result

    def compact(
        self, max_deltas_per_run: int | None = None
    ) -> tuple["CompactionReport", ...]:
        """Fold delta generations shard-by-shard: every worker runs
        its own :class:`~repro.storage.compactor.Compactor` against
        its own store (and drops its pool's stale cached bases).

        Args:
            max_deltas_per_run: bound each shard's fold to its oldest
                N delta generations; ``None`` folds everything.

        Returns:
            One :class:`~repro.storage.compactor.CompactionReport`
            per shard, in shard order (no-op reports for shards with
            nothing to fold).
        """
        replies = self._scatter_gather(
            ("compact", max_deltas_per_run), "compacted"
        )
        return tuple(reply[2] for reply in replies)

    def _merge_outcomes(
        self,
        batch: list[RangeQuery],
        shard_reports: list[ShardRunReport],
    ) -> tuple[QueryOutcome, ...]:
        """Merge per-shard outcomes into full-column outcomes.

        Answers concatenate by row offset: each shard's set positions
        shift by its ``row_lo`` and one canonical
        :meth:`~repro.bitmap.wah.WahBitmap.from_positions` build over
        the union makes the merged words identical to a single-shard
        answer.  A failure on any shard makes the merged outcome a
        :class:`~repro.errors.QueryFailedError` carrying the shard id
        (IO and events of all shards, failed included, stay merged).
        """
        from ..core.executor import ExecutionResult

        merged: list[QueryOutcome] = []
        for index, query in enumerate(batch):
            parts = [
                report.outcomes[index] for report in shard_reports
            ]
            io = IOSnapshot.combine(part.io for part in parts)
            events = merge_event_streams(
                part.events for part in parts
            )
            wall = max(part.wall_seconds for part in parts)
            error: QueryFailedError | None = None
            for report, part in zip(shard_reports, parts):
                if part.error is not None:
                    error = QueryFailedError(
                        index,
                        part.error.error_type,
                        part.error.message,
                        shard_id=report.shard_id,
                    )
                    break
            if error is not None:
                merged.append(
                    QueryOutcome(
                        index=index,
                        result=None,
                        io=io,
                        events=events,
                        wall_seconds=wall,
                        error=error,
                    )
                )
                continue
            positions = np.concatenate(
                [
                    part.result.answer.to_positions()
                    + report.row_lo
                    for report, part in zip(shard_reports, parts)
                ]
            )
            answer = WahBitmap.from_positions(
                positions, self.num_rows
            )
            result = ExecutionResult(
                query=query,
                answer=answer,
                io_bytes=sum(
                    part.result.io_bytes for part in parts
                ),
                degraded_reads=tuple(
                    event
                    for part in parts
                    for event in part.result.degraded_reads
                ),
            )
            merged.append(
                QueryOutcome(
                    index=index,
                    result=result,
                    io=io,
                    events=events,
                    wall_seconds=wall,
                )
            )
        return tuple(merged)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop every worker (politely, then by terminate, then by
        kill) and release the pipes.  Idempotent.

        The escalation ladder guarantees no worker process outlives
        the fleet: a cooperative ``stop`` with a joint deadline, then
        ``terminate()`` (SIGTERM), then ``kill()`` (SIGKILL) for a
        worker wedged in uninterruptible state, each followed by a
        bounded join.
        """
        handles, self._handles = self._handles, []
        self._prepared = False
        for _spec, process, conn in handles:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + 5.0
        for _spec, process, conn in handles:
            process.join(
                timeout=max(0.1, deadline - time.monotonic())
            )
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
                process.join(timeout=5.0)
            conn.close()

    def restart(self) -> tuple[ShardCutInfo, ...]:
        """Rebuild the fleet: close, respawn workers, replay the last
        :meth:`prepare`.

        The gateway supervisor's repair hook: a fleet that raised
        :class:`~repro.errors.ShardError` (and tore itself down) is
        rebuilt from its on-disk shard stores with the same cut
        selection it served before.  Raises
        :class:`~repro.errors.ShardError` when there is no remembered
        ``prepare()`` to replay, or when rows were appended via
        :meth:`ingest` (worker-resident delta generations do not
        survive a respawn, so a restart would silently lose them).

        Returns:
            The replayed per-shard cut selections, in shard order.
        """
        if self._last_prepare is None:
            raise ShardError(
                "restart() needs a previous prepare() to replay"
            )
        if self._appended_rows:
            raise ShardError(
                f"cannot restart a fleet with {self._appended_rows} "
                f"ingested rows resident in worker memory"
            )
        remembered = self._last_prepare
        self.close()
        self.start()
        return self.prepare(
            workload=remembered["workload"],
            budget_bytes_total=remembered["budget_bytes_total"],
            cut_node_ids=remembered["cut_node_ids"],
            k=remembered["k"],
        )

    def __enter__(self) -> "ShardedExecutor":
        """Start the workers (if not already) and return self."""
        if not self._handles:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close the fleet."""
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardedExecutor(shards={self.num_shards}, "
            f"threads_per_shard={self._threads}, "
            f"rows={self.num_rows})"
        )
