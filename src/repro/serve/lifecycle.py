"""Replica lifecycle primitives for the self-healing gateway.

PR 8's failover was a one-way door: a replica that raised
:class:`~repro.errors.ShardError` was retired and reaped permanently,
so transient faults (the same class the chaos suite injects) slowly
drained the fleet to :class:`~repro.errors.AllReplicasFailedError`.
This module holds the pieces the gateway composes into a
*self-healing* edge instead:

* :class:`ReplicaState` — the four-state lifecycle machine
  (``ACTIVE → SUSPECTED → PROBATION → ACTIVE | DEAD``).
* :class:`ReplicaSlot` — one replica's mutable lifecycle record
  (state, probe bookkeeping, breaker) inside the gateway.
* :class:`RollingBreaker` — a per-replica circuit breaker over a
  rolling window of per-query outcomes; an open breaker feeds the
  ``SUSPECTED`` transition so a replica that *answers* but keeps
  erroring is taken out of rotation just like one that crashes.
* :func:`probe_backoff` — seeded exponential backoff between
  re-admission probes (deterministic given the supervisor's RNG).

Everything here is policy-free data + pure functions; the gateway's
supervisor task owns the transitions (see ``docs/gateway.md`` for the
operator-facing description of each state).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .gateway import Replica

__all__ = [
    "ReplicaSlot",
    "ReplicaState",
    "RollingBreaker",
    "probe_backoff",
]


class ReplicaState(str, Enum):
    """Where a replica sits in the self-healing lifecycle.

    The machine is ``ACTIVE → SUSPECTED → PROBATION → ACTIVE | DEAD``:

    * ``ACTIVE`` — in rotation; the gateway routes batches to it.
    * ``SUSPECTED`` — failed a batch (:class:`~repro.errors.
      ShardError`), failed a health scan, or tripped its circuit
      breaker.  Out of rotation; the supervisor will probe it after a
      seeded exponential backoff.
    * ``PROBATION`` — a probe is in flight: the supervisor revives the
      backend and replays a deterministic canary query, checking the
      answer bit-identical against a healthy peer's.
    * ``DEAD`` — the probe budget (``max_probe_attempts``) is
      exhausted (or re-admission is disabled); the replica is never
      routed to again.
    """

    ACTIVE = "active"
    SUSPECTED = "suspected"
    PROBATION = "probation"
    DEAD = "dead"


class RollingBreaker:
    """Per-replica circuit breaker over a rolling outcome window.

    Each served query contributes one ok/fail outcome; when the last
    ``window`` outcomes contain at least ``failures`` failures the
    breaker reads *open* and the gateway moves the replica to
    ``SUSPECTED`` (its queries keep erroring even though the fleet
    itself has not crashed).  Re-admission resets the window so a
    healed replica starts clean.

    Args:
        window: rolling outcomes retained (must be >= 1).
        failures: failures within the window that open the breaker
            (must be >= 1 and <= ``window``).
    """

    def __init__(self, window: int, failures: int):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not 1 <= failures <= window:
            raise ValueError(
                f"failures must be in [1, {window}], got {failures}"
            )
        self._outcomes: deque[bool] = deque(maxlen=window)
        self._failures_to_open = failures

    @property
    def window(self) -> int:
        """The configured rolling-window length."""
        return self._outcomes.maxlen or 0

    @property
    def failure_count(self) -> int:
        """Failures currently inside the rolling window."""
        return sum(1 for ok in self._outcomes if not ok)

    @property
    def open(self) -> bool:
        """Whether the window holds enough failures to trip."""
        return self.failure_count >= self._failures_to_open

    def record(self, ok: bool) -> bool:
        """Fold one per-query outcome in; return :attr:`open` after."""
        self._outcomes.append(ok)
        return self.open

    def reset(self) -> None:
        """Clear the window (used when a replica is re-admitted)."""
        self._outcomes.clear()

    def __repr__(self) -> str:
        return (
            f"RollingBreaker({self.failure_count}/"
            f"{self._failures_to_open} failures in "
            f"window={self.window}, open={self.open})"
        )


def probe_backoff(
    attempt: int,
    base_s: float,
    max_s: float,
    jitter: float,
    rng: random.Random,
) -> float:
    """Delay before re-admission probe number ``attempt`` (0-based).

    Classic capped exponential backoff with *seeded* jitter::

        min(max_s, base_s * 2**attempt) * (1 + jitter * rng.random())

    The jitter draws from the supervisor's own
    :class:`random.Random` (seeded from ``GatewayConfig.
    supervisor_seed``), so two runs with the same seed probe at the
    same offsets — chaos tests can replay the healing schedule.

    Args:
        attempt: probes already failed for this replica (0 for the
            first probe after suspicion).
        base_s: delay before the first probe.
        max_s: cap on the un-jittered delay.
        jitter: fractional jitter in ``[0, 1]`` added on top.
        rng: the supervisor's seeded RNG.
    """
    delay = min(max_s, base_s * (2.0 ** attempt))
    if jitter > 0:
        delay *= 1.0 + jitter * rng.random()
    return delay


@dataclass
class ReplicaSlot:
    """One replica's mutable lifecycle record inside the gateway.

    The gateway holds one slot per replica (keyed by ``replica_id``)
    and mutates it under its own lock; the supervisor task drives the
    state transitions.

    Attributes:
        replica: the replica this slot tracks.
        breaker: the replica's rolling circuit breaker.
        state: current :class:`ReplicaState`.
        probe_attempts: failed re-admission probes since suspicion.
        next_probe_at: event-loop time before which the supervisor
            must not probe (seeded backoff).
        last_error: ``type(exc).__name__`` of the fault that caused
            the most recent suspicion (``""`` when never suspected).
    """

    replica: "Replica"
    breaker: RollingBreaker
    state: ReplicaState = ReplicaState.ACTIVE
    probe_attempts: int = 0
    next_probe_at: float = 0.0
    last_error: str = ""
