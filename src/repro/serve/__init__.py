"""Concurrent query serving over a shared buffer pool.

The paper's Case-2/3 workloads are "many queries share one pinned cut"
— exactly the shape that parallelizes across queries.  This package
runs them that way, at two scales:

* :class:`BatchExecutor` fans a list of queries out over a
  ``ThreadPoolExecutor`` against a single
  :class:`~repro.storage.cache.BufferPool`, preserving the accounting
  contracts the serial path guarantees (per-query IO attribution,
  exact reconciliation with the shared accountant, deterministic
  per-query trace streams).
* :class:`ShardedExecutor` partitions the *rows* into shards served by
  worker processes (each with its own store, pool, cut, and local
  thread pool) and merges scatter-gather answers by row offset —
  the same contracts, held across process boundaries.
* :class:`Gateway` is the asyncio network front-end over either:
  concurrent request intake (in-process async API or TCP/JSON-lines),
  bounded micro-batching, priority-aware admission control with typed
  shedding and deadlines, SLO latency metrics, hedged requests, and a
  self-healing replica lifecycle (failover, circuit breaking, canary
  re-admission — see :mod:`repro.serve.lifecycle`).

See ``docs/serving.md`` for the threading and sharding models and
``docs/gateway.md`` for the gateway.
"""

from .batch import (
    BatchExecutor,
    BatchReport,
    QueryOutcome,
    merge_event_streams,
    reconcile_exactly,
)
from .gateway import (
    BatchReplica,
    Gateway,
    GatewayBatchRecord,
    GatewayConfig,
    GatewayHedgeRecord,
    GatewayStats,
    Replica,
    ShardedReplica,
)
from .lifecycle import ReplicaState, RollingBreaker
from .sharded import (
    ShardCutInfo,
    ShardRunReport,
    ShardSpec,
    ShardedBatchReport,
    ShardedExecutor,
    shard_row_ranges,
)

__all__ = [
    "BatchExecutor",
    "BatchReplica",
    "BatchReport",
    "Gateway",
    "GatewayBatchRecord",
    "GatewayConfig",
    "GatewayHedgeRecord",
    "GatewayStats",
    "QueryOutcome",
    "Replica",
    "ReplicaState",
    "RollingBreaker",
    "ShardCutInfo",
    "ShardRunReport",
    "ShardSpec",
    "ShardedBatchReport",
    "ShardedExecutor",
    "ShardedReplica",
    "merge_event_streams",
    "reconcile_exactly",
    "shard_row_ranges",
]
