"""Concurrent query serving over a shared buffer pool.

The paper's Case-2/3 workloads are "many queries share one pinned cut"
— exactly the shape that parallelizes across queries.  This package
runs them that way: :class:`BatchExecutor` fans a list of queries out
over a ``ThreadPoolExecutor`` against a single
:class:`~repro.storage.cache.BufferPool`, preserving the accounting
contracts the serial path guarantees (per-query IO attribution, exact
reconciliation with the shared accountant, deterministic per-query
trace streams).  See ``docs/serving.md`` for the threading model.
"""

from .batch import BatchExecutor, BatchReport, QueryOutcome

__all__ = ["BatchExecutor", "BatchReport", "QueryOutcome"]
