"""Fig. 3 — Case 1: H-CS vs exhaustively-found optimal/average/worst.

Single query on the TPC-H dataset, 100-leaf hierarchy.  The headline
result: H-CS returns exactly the exhaustive optimum, while a randomly
chosen ("average") cut performs almost as badly as the worst cut for
large ranges.
"""

from __future__ import annotations

import numpy as np

from ..core.baselines import (
    average_single_cut_cost,
    exhaustive_single_optimum,
    leaf_only_single_cost,
    worst_single_cut,
)
from ..core.single import hybrid_cut
from ..workload.generator import range_query_of_fraction
from .common import (
    DEFAULT_RUNS,
    ExperimentResult,
    average_over_runs,
    catalog_for,
)

__all__ = ["run"]


def run(
    dataset: str = "tpch",
    num_leaves: int = 100,
    range_fractions: tuple[float, ...] = (0.10, 0.50, 0.90),
    runs: int = DEFAULT_RUNS,
    base_seed: int = 0,
) -> ExperimentResult:
    """Average data read (MB) of each comparison line per range size."""
    catalog = catalog_for(dataset, num_leaves)
    result = ExperimentResult(
        title=(
            "Fig. 3: Case 1 - H-CS vs exhaustive / average / "
            "leaf-only / worst cuts"
        ),
        columns=[
            "range_pct",
            "exhaustive_mb",
            "hybrid_mb",
            "average_mb",
            "leaf_only_mb",
            "worst_mb",
        ],
        notes=[
            f"dataset={dataset} num_leaves={num_leaves} runs={runs}"
        ],
    )
    for fraction in range_fractions:

        def measure(seed: int) -> dict[str, float]:
            rng = np.random.default_rng(seed)
            query = range_query_of_fraction(
                catalog.hierarchy.num_leaves, fraction, rng
            )
            return {
                "exhaustive": exhaustive_single_optimum(
                    catalog, query
                ).cost,
                "hybrid": hybrid_cut(catalog, query).cost,
                "average": average_single_cut_cost(
                    catalog, query, seed=seed
                ),
                "leaf_only": leaf_only_single_cost(catalog, query),
                "worst": worst_single_cut(catalog, query).cost,
            }

        averages = average_over_runs(runs, base_seed, measure)
        result.add_row(
            range_pct=int(round(fraction * 100)),
            exhaustive_mb=averages["exhaustive"],
            hybrid_mb=averages["hybrid"],
            average_mb=averages["average"],
            leaf_only_mb=averages["leaf_only"],
            worst_mb=averages["worst"],
        )
    return result
