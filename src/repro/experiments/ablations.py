"""Ablations beyond the paper's figures (DESIGN.md §5).

Three design choices are quantified:

* **Hybrid vs pure strategies for resident members** — what the
  per-node hybrid choice buys over forcing every partial member to the
  inclusive or exclusive side (Cases 2 and 3).
* **Cost-model sensitivity** — whether the *selected cut* changes when
  the paper's complement-aware piecewise model is replaced by a naive
  "cost proportional to raw density" model.  The exclusive strategy's
  appeal rests on dense ancestors being cheap; a complement-blind model
  prices them at the maximum instead.
* **k-Cut replacement rule** — Alg. 5's lines 16-17 versus simply
  skipping conflicting nodes.
"""

from __future__ import annotations

import numpy as np

from ..core.constrained import k_cut_selection
from ..core.multi import select_cut_multi
from ..core.single import hybrid_cut
from ..core.workload_cost import (
    WorkloadNodeStats,
    case2_cut_cost,
    case3_cut_cost,
)
from ..storage.catalog import ModeledNodeCatalog
from ..storage.costmodel import CostModel
from ..workload.generator import fraction_workload, range_query_of_fraction
from .common import (
    DEFAULT_RUNS,
    ExperimentResult,
    average_over_runs,
    budget_for_fraction,
    catalog_for,
    hierarchy_for,
    leaf_probabilities_for,
)

__all__ = [
    "run_strategy_ablation",
    "run_costmodel_ablation",
    "run_kcut_replacement_ablation",
]


def run_strategy_ablation(
    dataset: str = "tpch",
    num_leaves: int = 100,
    num_queries: int = 15,
    range_fractions: tuple[float, ...] = (0.10, 0.50, 0.90),
    memory_fraction: float = 0.50,
    runs: int = DEFAULT_RUNS,
    base_seed: int = 0,
) -> ExperimentResult:
    """Hybrid vs forced-inclusive vs forced-exclusive member usage."""
    catalog = catalog_for(dataset, num_leaves)
    budget = budget_for_fraction(catalog, memory_fraction)
    result = ExperimentResult(
        title=(
            "Ablation: hybrid vs pure strategies for resident "
            "cut members"
        ),
        columns=[
            "range_pct",
            "case2_hybrid_mb",
            "case2_inclusive_mb",
            "case2_exclusive_mb",
            "case3_hybrid_mb",
            "case3_inclusive_mb",
            "case3_exclusive_mb",
        ],
        notes=[
            f"dataset={dataset} num_leaves={num_leaves} "
            f"queries={num_queries} memory="
            f"{int(round(memory_fraction * 100))}% runs={runs}"
        ],
    )
    for fraction in range_fractions:

        def measure(seed: int) -> dict[str, float]:
            workload = fraction_workload(
                catalog.hierarchy.num_leaves,
                fraction,
                num_queries,
                seed=seed,
            )
            # Selection runs under each forced pricing, but every
            # chosen cut is evaluated under the shared hybrid
            # semantics, so the comparison isolates the *selection*
            # effect of the forced strategy.
            hybrid_stats = WorkloadNodeStats(catalog, workload)
            metrics: dict[str, float] = {}
            for strategy in ("hybrid", "inclusive", "exclusive"):
                if strategy == "hybrid":
                    stats = hybrid_stats
                else:
                    stats = WorkloadNodeStats(
                        catalog, workload, strategy=strategy
                    )
                case2_cut = select_cut_multi(
                    catalog, workload, stats
                ).cut
                metrics[f"case2_{strategy}"] = case2_cut_cost(
                    hybrid_stats, case2_cut.node_ids
                )
                case3_cut = k_cut_selection(
                    catalog, workload, budget, 10, stats
                ).cut
                metrics[f"case3_{strategy}"] = case3_cut_cost(
                    hybrid_stats, case3_cut.node_ids
                )
            return metrics

        averages = average_over_runs(runs, base_seed, measure)
        result.add_row(
            range_pct=int(round(fraction * 100)),
            case2_hybrid_mb=averages["case2_hybrid"],
            case2_inclusive_mb=averages["case2_inclusive"],
            case2_exclusive_mb=averages["case2_exclusive"],
            case3_hybrid_mb=averages["case3_hybrid"],
            case3_inclusive_mb=averages["case3_inclusive"],
            case3_exclusive_mb=averages["case3_exclusive"],
        )
    return result


def run_costmodel_ablation(
    dataset: str = "tpch",
    num_leaves: int = 100,
    range_fractions: tuple[float, ...] = (0.10, 0.50, 0.90),
    runs: int = DEFAULT_RUNS,
    base_seed: int = 0,
) -> ExperimentResult:
    """Does complement-aware pricing change the selected cut?

    Compares the hybrid cut chosen under the paper model against the
    cut chosen under a complement-blind linear model (cost grows with
    raw density, dense ancestors are expensive), with both cuts finally
    *evaluated* under the paper model so the comparison is fair.
    """
    hierarchy = hierarchy_for(num_leaves)
    probabilities = leaf_probabilities_for(dataset, num_leaves)
    paper_model = CostModel.paper_2014()
    paper_catalog = ModeledNodeCatalog(
        hierarchy, probabilities, paper_model, 150_000_000
    )
    # Complement-blind: price raw density linearly up to the paper's
    # k3 ceiling (a density-1 root costs the maximum, not zero).
    blind_costs = np.array(
        [
            min(
                paper_model.a * paper_catalog.density(node.node_id)
                + paper_model.b,
                paper_model.k3,
            )
            for node in hierarchy
        ]
    )
    blind_catalog = _CostOverrideCatalog(paper_catalog, blind_costs)

    result = ExperimentResult(
        title="Ablation: complement-aware vs complement-blind pricing",
        columns=[
            "range_pct",
            "paper_model_mb",
            "blind_model_choice_mb",
            "penalty_pct",
            "cut_changed_fraction",
        ],
        notes=[
            f"dataset={dataset} num_leaves={num_leaves} runs={runs}",
            "both cuts re-evaluated under the paper model",
        ],
    )
    from ..core.workload_cost import single_query_cut_cost

    for fraction in range_fractions:

        def measure(seed: int) -> dict[str, float]:
            rng = np.random.default_rng(seed)
            query = range_query_of_fraction(
                num_leaves, fraction, rng
            )
            paper_choice = hybrid_cut(paper_catalog, query)
            blind_choice = hybrid_cut(blind_catalog, query)
            blind_under_paper = single_query_cut_cost(
                paper_catalog, query, blind_choice.cut.node_ids
            )
            penalty = (
                (blind_under_paper - paper_choice.cost)
                / max(paper_choice.cost, 1e-9)
                * 100.0
            )
            changed = float(
                paper_choice.cut.node_ids
                != blind_choice.cut.node_ids
            )
            return {
                "paper": paper_choice.cost,
                "blind": blind_under_paper,
                "penalty": penalty,
                "changed": changed,
            }

        averages = average_over_runs(runs, base_seed, measure)
        result.add_row(
            range_pct=int(round(fraction * 100)),
            paper_model_mb=averages["paper"],
            blind_model_choice_mb=averages["blind"],
            penalty_pct=averages["penalty"],
            cut_changed_fraction=averages["changed"],
        )
    return result


class _CostOverrideCatalog:
    """A catalog view with overridden read costs (same densities)."""

    def __init__(self, base: ModeledNodeCatalog, costs: np.ndarray):
        self._base = base
        self._costs = np.asarray(costs, dtype=float)
        hierarchy = base.hierarchy
        leaf_costs = np.array(
            [self._costs[node_id] for node_id in hierarchy.leaf_ids()]
        )
        self._leaf_prefix = np.concatenate(
            ([0.0], np.cumsum(leaf_costs))
        )

    @property
    def hierarchy(self):
        return self._base.hierarchy

    def node_span_arrays(self):
        return self._base.node_span_arrays()

    @property
    def leaf_cost_prefix(self):
        return self._leaf_prefix

    @property
    def num_rows(self) -> int:
        return self._base.num_rows

    def density(self, node_id: int) -> float:
        return self._base.density(node_id)

    def read_cost_mb(self, node_id: int) -> float:
        return float(self._costs[node_id])

    def size_mb(self, node_id: int) -> float:
        return float(self._costs[node_id])

    def read_cost_array(self) -> np.ndarray:
        return self._costs

    def size_array(self) -> np.ndarray:
        return self._costs

    def leaf_range_cost(self, lo: int, hi: int) -> float:
        if hi < lo:
            return 0.0
        return float(
            self._leaf_prefix[hi + 1] - self._leaf_prefix[lo]
        )

    def leaf_range_size(self, lo: int, hi: int) -> float:
        return self.leaf_range_cost(lo, hi)

    def subtree_leaf_cost(self, node_id: int) -> float:
        node = self.hierarchy.node(node_id)
        return self.leaf_range_cost(node.leaf_lo, node.leaf_hi)


def run_kcut_replacement_ablation(
    dataset: str = "tpch",
    num_leaves: int = 100,
    num_queries: int = 15,
    range_fraction: float = 0.50,
    memory_fractions: tuple[float, ...] = (
        0.10, 0.30, 0.50, 0.70, 0.90,
    ),
    k: int = 10,
    runs: int = DEFAULT_RUNS,
    base_seed: int = 0,
) -> ExperimentResult:
    """Alg. 5's replacement rule on vs off, across memory budgets."""
    catalog = catalog_for(dataset, num_leaves)
    result = ExperimentResult(
        title="Ablation: k-Cut replacement rule (Alg. 5 lines 16-17)",
        columns=[
            "memory_pct",
            "with_replacement_mb",
            "without_replacement_mb",
            "gain_pct",
            "polished_mb",
        ],
        notes=[
            f"dataset={dataset} num_leaves={num_leaves} "
            f"queries={num_queries} range="
            f"{int(round(range_fraction * 100))}% k={k} runs={runs}"
        ],
    )
    for memory_fraction in memory_fractions:
        budget = budget_for_fraction(catalog, memory_fraction)

        def measure(seed: int) -> dict[str, float]:
            workload = fraction_workload(
                catalog.hierarchy.num_leaves,
                range_fraction,
                num_queries,
                seed=seed,
            )
            stats = WorkloadNodeStats(catalog, workload)
            with_rule = k_cut_selection(
                catalog, workload, budget, k, stats
            ).cost
            without_rule = k_cut_selection(
                catalog,
                workload,
                budget,
                k,
                stats,
                enable_replacement=False,
            ).cost
            polished = k_cut_selection(
                catalog,
                workload,
                budget,
                k,
                stats,
                polish=True,
            ).cost
            gain = (
                (without_rule - with_rule)
                / max(without_rule, 1e-9)
                * 100.0
            )
            return {
                "with": with_rule,
                "without": without_rule,
                "gain": gain,
                "polished": polished,
            }

        averages = average_over_runs(runs, base_seed, measure)
        result.add_row(
            memory_pct=int(round(memory_fraction * 100)),
            with_replacement_mb=averages["with"],
            without_replacement_mb=averages["without"],
            gain_pct=averages["gain"],
            polished_mb=averages["polished"],
        )
    return result
