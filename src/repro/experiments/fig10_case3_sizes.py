"""Fig. 10 — Case 3 robustness: data read vs hierarchy size.

5 queries, 50% ranges, 90% memory availability; hierarchy sizes sweep
the paper's 20/50/100-leaf shapes.
"""

from __future__ import annotations

from ..core.baselines import (
    average_constrained_cut_cost,
    exhaustive_constrained_optimum,
    worst_constrained_cut,
)
from ..core.constrained import k_cut_selection
from ..core.workload_cost import WorkloadNodeStats
from ..workload.generator import fraction_workload
from .common import (
    DEFAULT_RUNS,
    PAPER_HIERARCHY_SIZES,
    ExperimentResult,
    average_over_runs,
    budget_for_fraction,
    catalog_for,
)

__all__ = ["run"]


def run(
    dataset: str = "tpch",
    hierarchy_sizes: tuple[int, ...] = PAPER_HIERARCHY_SIZES,
    num_queries: int = 5,
    range_fraction: float = 0.50,
    memory_fraction: float = 0.90,
    k: int = 10,
    runs: int = DEFAULT_RUNS,
    base_seed: int = 0,
) -> ExperimentResult:
    """Average Eq. 4 workload cost (MB) per hierarchy size."""
    result = ExperimentResult(
        title="Fig. 10: Case 3 - data read vs hierarchy size",
        columns=[
            "num_leaves",
            "exhaustive_mb",
            "k_cut_mb",
            "average_mb",
            "worst_mb",
        ],
        notes=[
            f"dataset={dataset} queries={num_queries} range="
            f"{int(round(range_fraction * 100))}% memory="
            f"{int(round(memory_fraction * 100))}% k={k} runs={runs}"
        ],
    )
    for num_leaves in hierarchy_sizes:
        catalog = catalog_for(dataset, num_leaves)
        budget = budget_for_fraction(catalog, memory_fraction)

        def measure(seed: int) -> dict[str, float]:
            workload = fraction_workload(
                catalog.hierarchy.num_leaves,
                range_fraction,
                num_queries,
                seed=seed,
            )
            stats = WorkloadNodeStats(catalog, workload)
            return {
                "exhaustive": exhaustive_constrained_optimum(
                    catalog, workload, budget, stats
                ).cost,
                "k_cut": k_cut_selection(
                    catalog, workload, budget, k, stats
                ).cost,
                "average": average_constrained_cut_cost(
                    catalog, workload, budget, seed=seed, stats=stats
                ),
                "worst": worst_constrained_cut(
                    catalog, workload, budget, stats
                ).cost,
            }

        averages = average_over_runs(runs, base_seed, measure)
        result.add_row(
            num_leaves=num_leaves,
            exhaustive_mb=averages["exhaustive"],
            k_cut_mb=averages["k_cut"],
            average_mb=averages["average"],
            worst_mb=averages["worst"],
        )
    return result
